"""Shared fixtures for the benchmark suites.

Benchmarks run at ``small`` scale (512x512) by default so the full suite
finishes in minutes; set ``REPRO_BENCH_SCALE=paper`` for Table 2's image
sizes.  All suites require a C compiler (they measure the native
backend, as the paper does) and are skipped without one.
"""

import os

import pytest

from repro.bench.harness import make_instance
from repro.codegen.build import compiler_available

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

requires_cc = pytest.mark.skipif(not compiler_available(),
                                 reason="no C compiler found")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def instances():
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = make_instance(name, SCALE)
        return cache[name]

    return get
