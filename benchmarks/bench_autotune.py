"""Figure 9 benchmark: autotuned vs default vs worst configurations.

The scatter itself is produced by ``python -m repro.bench.figure9``;
here pytest-benchmark measures the end points: the best configuration a
coarse model-restricted sweep finds, the harness default, and a bad
configuration — demonstrating the spread the autotuner navigates — plus
the stochastic wide-space search best (the OpenTuner axis).
"""

import pytest

from benchmarks.conftest import requires_cc
from repro import CompileOptions, compile_pipeline
from repro.autotune.tuner import TuneConfig, autotune
from repro.codegen.build import build_native

pytestmark = requires_cc

APP = "camera"


@pytest.fixture(scope="module")
def tuned(instances):
    instance = instances(APP)
    space = [TuneConfig((tx, ty), th)
             for tx in (16, 64, 256) for ty in (16, 64, 256)
             for th in (0.2, 0.5)]
    report = autotune(instance.app.outputs, instance.values,
                      instance.values, instance.inputs, space=space,
                      n_threads=1, repeats=1, name="bench_fig9")
    return instance, report


def _native_for(instance, config: TuneConfig, name: str):
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            config.options(), name=name).plan
    return build_native(plan, name)


def test_best_config(benchmark, tuned):
    instance, report = tuned
    best = report.best(parallel=False)
    pipe = _native_for(instance, best.config, "fig9_best")
    pipe(instance.values, instance.inputs)
    benchmark(pipe, instance.values, instance.inputs)


def test_worst_config(benchmark, tuned):
    instance, report = tuned
    worst = max(report.results, key=lambda r: r.time_single_ms)
    pipe = _native_for(instance, worst.config, "fig9_worst")
    pipe(instance.values, instance.inputs)
    benchmark(pipe, instance.values, instance.inputs)


def test_random_search_best(benchmark, tuned):
    from repro.autotune.random_search import random_search
    instance, _ = tuned
    report = random_search(instance.app.outputs, instance.values,
                           instance.values, instance.inputs, budget=10,
                           n_threads=1, name="fig9_rand")
    best = report.best()
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            best.config.options(), name="fig9_randbest").plan
    pipe = build_native(plan, "fig9_randbest")
    pipe(instance.values, instance.inputs)
    benchmark(pipe, instance.values, instance.inputs)
