"""Table 2 benchmark: PolyMage (opt+vec) on every application.

Regenerates the absolute-time column of Table 2 (at the configured
scale) via pytest-benchmark.  ``python -m repro.bench.table2`` prints the
full table including comparator speedups.
"""

import pytest

from benchmarks.conftest import requires_cc
from repro.bench.harness import APP_BUILDERS, build_variant

pytestmark = requires_cc

APPS = list(APP_BUILDERS)


@pytest.mark.parametrize("app", APPS)
def test_polymage_opt_vec(benchmark, instances, app):
    instance = instances(app)
    run = build_variant(instance, "opt+vec")
    run(1)  # warm up (paper protocol discards the first run)
    benchmark(run, 1)


@pytest.mark.parametrize("app", ["unsharp", "harris", "pyramid_blend"])
def test_opencv_like_baseline(benchmark, instances, app):
    """The OpenCV column of Table 2 (the three apps the paper reports)."""
    from repro.baselines import opencv_like
    instance = instances(app)
    imgs = list(instance.inputs.values())
    if app == "unsharp":
        benchmark(opencv_like.unsharp_like, imgs[0])
    elif app == "harris":
        benchmark(opencv_like.harris_like, imgs[0])
    else:
        levels = 4 if instance.scale == "paper" else 3
        benchmark(opencv_like.pyramid_blend_like, *imgs, levels)
