"""Figure 5 benchmark: tiled vs untiled execution of the 1-D chain.

Figure 5's property table is model-level (see
``python -m repro.bench.figure5``); this suite grounds it by executing
the chain with overlapped tiling against the unfused baseline, and
asserts the model's qualitative ordering.
"""

import numpy as np
import pytest

from benchmarks.conftest import requires_cc
from repro import CompileOptions, compile_pipeline
from repro.bench.figure5 import figure5_chain
from repro.codegen.build import build_native

pytestmark = requires_cc

N_SIZE = 1 << 20


@pytest.fixture(scope="module")
def chain():
    N, fin, stages = figure5_chain()
    values = {N: N_SIZE}
    rng = np.random.default_rng(0)
    inputs = {fin: rng.random(N_SIZE + 2, dtype=np.float32)}
    return N, fin, stages, values, inputs


def test_overlapped_tiled(benchmark, chain):
    N, fin, stages, values, inputs = chain
    plan = compile_pipeline([stages[-1]], values,
                            CompileOptions.optimized((4096,)),
                            name="fig5_tiled").plan
    pipe = build_native(plan, "fig5_tiled")
    pipe(values, inputs)
    benchmark(pipe, values, inputs)


def test_unfused(benchmark, chain):
    N, fin, stages, values, inputs = chain
    plan = compile_pipeline([stages[-1]], values, CompileOptions.base(),
                            name="fig5_base").plan
    pipe = build_native(plan, "fig5_base")
    pipe(values, inputs)
    benchmark(pipe, values, inputs)


def test_split_tiled_interpreter(benchmark, chain):
    """Split tiling, executed (extension): correct but needs full buffers
    for every stage — the storage cost the paper's analysis predicts."""
    from repro.runtime.split_executor import execute_plan_split
    N, fin, stages, values, inputs = chain
    plan = compile_pipeline([stages[-1]], values,
                            CompileOptions.optimized((4096,)),
                            name="fig5_split").plan
    out_split = execute_plan_split(plan, values, inputs)
    benchmark(execute_plan_split, plan, values, inputs)


def test_strategy_model_matches_paper_table(chain):
    """Figure 5 bottom-right: only overlapped tiling has parallelism,
    locality and zero communication; the price is bounded redundancy."""
    from repro.compiler.align_scale import compute_group_transforms
    from repro.compiler.alt_tiling import compare_strategies
    from repro.pipeline.graph import PipelineGraph
    from repro.pipeline.ir import PipelineIR

    N, fin, stages, values, inputs = chain
    ir = PipelineIR(PipelineGraph([stages[-1]]))
    transforms = compute_group_transforms(ir, stages, stages[-1])
    over, split, para = compare_strategies(ir, transforms, stages, 0,
                                           4096, values)
    assert over.parallel and over.cross_tile_live_values == 0
    assert over.redundancy > 0
    assert split.parallel and split.phases == 2
    assert split.redundancy == 0 and split.cross_tile_live_values > 0
    assert not para.parallel and para.phases == para.concurrent_tiles * \
        (para.phases // para.concurrent_tiles)
    assert para.concurrent_tiles == 1
