"""Figure 10 benchmark: the four PolyMage variants per application.

Measures base / base+vec / opt / opt+vec so the speedup bars of
Figure 10 can be recomputed from the pytest-benchmark report.  The
qualitative claims: opt+vec wins everywhere; vectorization pays off far
more under tiling than without (locality gates SIMD).
"""

import pytest

from benchmarks.conftest import requires_cc
from repro.bench.harness import VARIANTS, build_variant

pytestmark = requires_cc

#: Figure 10's six charts (unsharp is in Table 2 only)
FIGURE10_APPS = ("interpolate", "harris", "pyramid_blend", "bilateral",
                 "camera", "local_laplacian")


@pytest.mark.parametrize("app", FIGURE10_APPS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_variant(benchmark, instances, app, variant):
    instance = instances(app)
    run = build_variant(instance, variant)
    run(1)
    benchmark(run, 1)


@pytest.mark.parametrize("app", ("harris", "camera"))
@pytest.mark.parametrize("n_threads", (2, 4))
def test_opt_vec_threads(benchmark, instances, app, n_threads):
    """The thread axis of Figure 10 (bounded by this machine's cores)."""
    instance = instances(app)
    run = build_variant(instance, "opt+vec")
    run(n_threads)
    benchmark(run, n_threads)
