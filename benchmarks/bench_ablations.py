"""Ablation benchmarks: each optimization's individual contribution.

Covers the design decisions DESIGN.md lists: inlining, grouping,
tiling, tight-vs-naive tile shapes.  The storage ablation is a footprint
assertion (scratchpads must shrink memory drastically) since disabling
scratchpads alone would change parallel-execution semantics.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import requires_cc
from repro import CompileOptions, compile_pipeline
from repro.bench.harness import DEFAULT_TILES, make_instance
from repro.codegen.build import build_native

pytestmark = requires_cc

APP = "harris"


@pytest.fixture(scope="module")
def instance(instances):
    return instances(APP)


def _pipe(instance, options, name):
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            options, name=name).plan
    pipe = build_native(plan, name)
    pipe(instance.values, instance.inputs)
    return pipe


OPT = CompileOptions.optimized(DEFAULT_TILES[APP])

CONFIGS = {
    "full_opt": OPT,
    "no_inline": replace(OPT, inline=False),
    "no_grouping": replace(OPT, group=False),
    "no_tiling": CompileOptions.base(),
    "naive_overlap": replace(OPT, tight_overlap=False),
}


@pytest.mark.parametrize("config", list(CONFIGS))
def test_ablation(benchmark, instance, config):
    pipe = _pipe(instance, CONFIGS[config], f"ablb_{config}")
    benchmark(pipe, instance.values, instance.inputs)


def test_storage_footprint_reduction(instance):
    """Section 3.6: scratchpads shrink intermediate storage dramatically."""
    from repro.compiler.storage import storage_footprint
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            OPT).plan
    fp = storage_footprint(plan, instance.values)
    fused = fp["full_bytes"] + fp["scratch_bytes"]
    assert fp["unfused_bytes"] > 3 * fused
