"""Whole-pipeline static analyses over the PipelineIR.

Currently home to the value-range analysis (:mod:`repro.analysis.ranges`)
that powers interval-driven precision narrowing in the code generator and
the RV5xx verify family that audits it.
"""

from repro.analysis.ranges import (
    ValueInterval, RangeAnalysis, analyze_ranges, narrowing_decisions,
)

__all__ = [
    "RangeAnalysis",
    "ValueInterval",
    "analyze_ranges",
    "narrowing_decisions",
]
