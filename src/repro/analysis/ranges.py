"""Whole-pipeline value-range analysis (forward abstract interpretation).

Propagates a per-stage *value* interval through the stage DAG: input
images contribute their dtype ranges (or user-supplied tighter ranges),
parameters contribute their compile-time estimates, and each stage's
cases are abstractly evaluated over its estimate-concretised domain box
(seeded from :mod:`repro.poly.interval`).  ``Select``/case splits widen
by hulling both branches, division and modulo are guarded against
zero-crossing divisors, and upsample/downsample access forms are
value-transparent (a value range does not depend on *where* a producer
is read, only on *what* it stores).

The derived ranges drive two consumers:

* :func:`narrowing_decisions` — the precision-narrowing pass behind
  ``CompileOptions.narrow``, which assigns each non-output stage the
  narrowest C storage type its proven range fits (see
  :mod:`repro.codegen.cgen`); and
* the RV4xx/RV5xx verifier checks, which re-derive ranges independently
  (:mod:`repro.verify.rangecheck`) and audit the pass.

All interval endpoints are exact: integral ranges keep Python ints
(arbitrary precision), non-integral ranges use floats with ``±inf`` as
the unbounded ends.  The lattice top is ``(-inf, +inf, non-integral)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import (
    BinOp, Call, Cast, Literal, Reference, Select, UnOp,
)
from repro.lang.image import Image
from repro.lang.types import (
    Char, DType, Double, Float, Int, Short, UChar, UShort,
)

_INF = math.inf

#: exactly representable integer magnitude bound of an IEEE-754 float32
F32_EXACT_INT = 1 << 24


@dataclass(frozen=True)
class ValueInterval:
    """An inclusive value range ``[lo, hi]`` with an integrality flag.

    ``integral=True`` asserts every value the abstracted computation can
    produce is a mathematical integer (regardless of the storage type it
    flows through); endpoints are then exact Python ints.  Non-integral
    ranges use float endpoints, ``±inf`` marking unbounded ends.
    """

    lo: int | float
    hi: int | float
    integral: bool = False

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty value interval [{self.lo}, {self.hi}]")
        if self.integral:
            if not (_is_int(self.lo) and _is_int(self.hi)):
                raise ValueError("integral interval needs integer endpoints")
            object.__setattr__(self, "lo", int(self.lo))
            object.__setattr__(self, "hi", int(self.hi))

    # -- constructors -----------------------------------------------------
    @staticmethod
    def top() -> "ValueInterval":
        return TOP

    @staticmethod
    def point(value: int | float) -> "ValueInterval":
        if isinstance(value, int):
            return ValueInterval(value, value, True)
        return ValueInterval(float(value), float(value), False)

    @staticmethod
    def of_dtype(dtype: DType) -> "ValueInterval":
        """The full representable range of a DSL scalar type."""
        if dtype.is_float:
            return TOP
        info = np.iinfo(dtype.np_dtype)
        return ValueInterval(int(info.min), int(info.max), True)

    # -- structure --------------------------------------------------------
    @property
    def is_finite(self) -> bool:
        return not (math.isinf(self.lo) or math.isinf(self.hi))

    def hull(self, other: "ValueInterval") -> "ValueInterval":
        return ValueInterval(min(self.lo, other.lo), max(self.hi, other.hi),
                             self.integral and other.integral)

    def contains(self, other: "ValueInterval") -> bool:
        """``other`` lies inside ``self`` (integrality may only tighten)."""
        if self.lo > other.lo or other.hi > self.hi:
            return False
        return other.integral or not self.integral

    def fits(self, dtype: DType) -> bool:
        """Every value of this range is exactly representable in ``dtype``."""
        if dtype is Double:
            return True
        if dtype is Float:
            return (self.integral and self.is_finite
                    and max(abs(self.lo), abs(self.hi)) <= F32_EXACT_INT)
        if not (self.integral and self.is_finite):
            return False
        info = np.iinfo(dtype.np_dtype)
        return info.min <= self.lo and self.hi <= info.max

    def __repr__(self) -> str:
        kind = "int" if self.integral else "real"
        lo = f"{self.lo}" if _is_int(self.lo) else f"{self.lo:.6g}"
        hi = f"{self.hi}" if _is_int(self.hi) else f"{self.hi:.6g}"
        return f"[{lo}, {hi}] {kind}"


TOP = ValueInterval(-_INF, _INF, False)


def _is_int(v) -> bool:
    return isinstance(v, int) or (isinstance(v, float) and v.is_integer())


def _mul(a, b):
    """Endpoint product with the interval convention ``0 * inf == 0``."""
    if a == 0 or b == 0:
        return 0
    return a * b


# ---------------------------------------------------------------------------
# Abstract interpretation
# ---------------------------------------------------------------------------

class RangeAnalysis:
    """Forward value-range propagation over a :class:`PipelineIR`.

    ``input_ranges`` optionally overrides the seeded range per input
    image (keyed by :class:`Image` or image name); defaults are the full
    dtype range for integer images and TOP for float images.
    """

    def __init__(self, ir, estimates: Mapping[Parameter, int],
                 input_ranges=None):
        self.ir = ir
        self.estimates = dict(estimates)
        self.producer_ranges: dict = {}
        for image in ir.graph.inputs:
            self.producer_ranges[image] = self._seed_image(
                image, input_ranges)
        self.stage_ranges: dict = {}

    @classmethod
    def run(cls, ir, estimates, input_ranges=None) -> "RangeAnalysis":
        analysis = cls(ir, estimates, input_ranges)
        for stage_ir in ir.ordered():
            r = analysis.stage_range(stage_ir)
            analysis.stage_ranges[stage_ir.stage] = r
            analysis.producer_ranges[stage_ir.stage] = r
        return analysis

    @staticmethod
    def _seed_image(image, input_ranges) -> ValueInterval:
        if input_ranges:
            override = input_ranges.get(image, input_ranges.get(image.name))
            if override is not None:
                if isinstance(override, ValueInterval):
                    return override
                lo, hi = override
                if _is_int(lo) and _is_int(hi):
                    return ValueInterval(int(lo), int(hi), True)
                return ValueInterval(float(lo), float(hi), False)
        return ValueInterval.of_dtype(image.dtype)

    # -- per-stage transfer function --------------------------------------
    def stage_range(self, stage_ir) -> ValueInterval:
        stage = stage_ir.stage
        if stage_ir.is_accumulator or stage_ir.is_self_referential:
            # reductions fold in-place and time-iterated stages read their
            # own previous values: a single forward pass cannot bound
            # either, so both take their declared type's full range
            return ValueInterval.of_dtype(stage.dtype)
        # uncovered domain points stay at the calloc/memset zero
        result = ValueInterval.point(0)
        for case in stage_ir.cases:
            env = self._case_env(stage_ir, case)
            if env is None:
                continue  # empty under the estimates
            r = self.expr_range(case.expression, env)
            result = result.hull(self._store_cast(r, stage.dtype))
        return result

    def _case_env(self, stage_ir, case) -> dict | None:
        """Variable/parameter environment for one case, or ``None`` when
        the case box is empty under the estimates."""
        box = case.box.concretize(self.estimates)
        if box is None:
            box = stage_ir.domain.concretize(self.estimates)
            if box is None:
                return None
        env: dict = {}
        for var, ivl in zip(stage_ir.variables, box):
            env[var] = ValueInterval(ivl.lo, ivl.hi, True)
        for param, value in self.estimates.items():
            env[param] = ValueInterval.point(int(value))
        return env

    @staticmethod
    def _store_cast(r: ValueInterval, dtype: DType) -> ValueInterval:
        """Range after the store-side cast to the stage's declared type."""
        if dtype.is_float:
            if dtype is Float and not r.fits(Float) and r.is_finite:
                # float32 rounding can move an endpoint by half an ulp;
                # pad by one relative epsilon each side
                pad = max(abs(r.lo), abs(r.hi)) * 2.0 ** -23
                return ValueInterval(r.lo - pad, r.hi + pad, False)
            return r
        if r.fits(dtype):
            return ValueInterval(int(r.lo), int(r.hi), True)
        # out-of-range integer conversion (or a non-integral value being
        # truncated): the result is only known to be representable
        return ValueInterval.of_dtype(dtype)

    # -- expression transfer function --------------------------------------
    def expr_range(self, expr, env: Mapping) -> ValueInterval:
        """Abstract value of ``expr`` under a variable/parameter env."""
        rec = lambda e: self.expr_range(e, env)  # noqa: E731

        if isinstance(expr, Literal):
            if isinstance(expr.value, bool):
                return TOP
            return ValueInterval.point(expr.value)
        if isinstance(expr, (Variable, Parameter)):
            return env.get(expr, TOP)
        if isinstance(expr, UnOp):
            r = rec(expr.operand)
            return ValueInterval(-r.hi, -r.lo, r.integral)
        if isinstance(expr, Cast):
            return self._cast_range(rec(expr.operand), expr.dtype)
        if isinstance(expr, Select):
            # widening: ignore the condition, hull both branches
            return rec(expr.true_expr).hull(rec(expr.false_expr))
        if isinstance(expr, Reference):
            producer = expr.function
            if producer in self.producer_ranges:
                return self.producer_ranges[producer]
            if isinstance(producer, Image):
                return ValueInterval.of_dtype(producer.dtype)
            # self-reference (producer not yet finalised)
            return ValueInterval.of_dtype(producer.dtype)
        if isinstance(expr, BinOp):
            return self._binop_range(expr.op, rec(expr.left),
                                     rec(expr.right))
        if isinstance(expr, Call):
            return self._call_range(expr.name, [rec(a) for a in expr.args])
        return TOP

    @staticmethod
    def _cast_range(r: ValueInterval, dtype: DType) -> ValueInterval:
        if dtype.is_float:
            if dtype is Float and not r.fits(Float) and r.is_finite:
                pad = max(abs(r.lo), abs(r.hi)) * 2.0 ** -23
                return ValueInterval(r.lo - pad, r.hi + pad, False)
            return r
        if r.fits(dtype):
            return ValueInterval(int(r.lo), int(r.hi), True)
        if r.integral and r.is_finite:
            # integral but out of range: wraparound, only the
            # representable set is known
            return ValueInterval.of_dtype(dtype)
        if r.is_finite:
            # trunc-toward-zero endpoints, then the fit rule
            t = ValueInterval(math.trunc(r.lo), math.trunc(r.hi), True)
            return t if t.fits(dtype) else ValueInterval.of_dtype(dtype)
        return ValueInterval.of_dtype(dtype)

    @staticmethod
    def _binop_range(op: str, left: ValueInterval,
                     right: ValueInterval) -> ValueInterval:
        integral = left.integral and right.integral
        if op == "+":
            return ValueInterval(left.lo + right.lo, left.hi + right.hi,
                                 integral)
        if op == "-":
            return ValueInterval(left.lo - right.hi, left.hi - right.lo,
                                 integral)
        if op == "*":
            corners = [_mul(a, b) for a in (left.lo, left.hi)
                       for b in (right.lo, right.hi)]
            return ValueInterval(min(corners), max(corners), integral)
        if op == "/":
            # true division in both backends (C casts int operands to
            # double); guarded against divisors that may reach zero
            if right.lo <= 0 <= right.hi or not right.is_finite \
                    or not left.is_finite:
                return TOP
            corners = [a / d for a in (left.lo, left.hi)
                       for d in (right.lo, right.hi)]
            return ValueInterval(min(corners), max(corners), False)
        if op == "//":
            # flooring division (fdiv / np.floor_divide); the quotient is
            # monotone in both operands once the divisor has one sign, so
            # corners bound it
            if right.lo <= 0 <= right.hi or not right.is_finite \
                    or not left.is_finite:
                return TOP
            corners = [math.floor(a / d) for a in (left.lo, left.hi)
                       for d in (right.lo, right.hi)]
            return ValueInterval(min(corners), max(corners), True)
        if op == "%":
            # Python/NumPy sign semantics (pmod in the C prelude):
            # result in [0, m) for m > 0 and (m, 0] for m < 0
            if not right.is_finite:
                return TOP
            if right.lo > 0:
                hi = right.hi - 1 if integral else float(right.hi)
                return ValueInterval(0, hi, integral)
            if right.hi < 0:
                lo = right.lo + 1 if integral else float(right.lo)
                return ValueInterval(lo, 0, integral)
            return TOP
        return TOP

    @staticmethod
    def _call_range(name: str, args: list) -> ValueInterval:
        integral = all(a.integral for a in args)
        if name == "min":
            return ValueInterval(min(a.lo for a in args),
                                 min(a.hi for a in args), integral)
        if name == "max":
            return ValueInterval(max(a.lo for a in args),
                                 max(a.hi for a in args), integral)
        a = args[0]
        if name == "abs":
            if a.lo >= 0:
                return a
            if a.hi <= 0:
                return ValueInterval(-a.hi, -a.lo, a.integral)
            return ValueInterval(0, max(-a.lo, a.hi), a.integral)
        if name in ("floor", "ceil"):
            f = math.floor if name == "floor" else math.ceil
            lo = f(a.lo) if not math.isinf(a.lo) else a.lo
            hi = f(a.hi) if not math.isinf(a.hi) else a.hi
            return ValueInterval(lo, hi, not (math.isinf(lo)
                                              or math.isinf(hi)))
        if name == "sqrt":
            if a.hi < 0:
                return TOP
            lo = math.sqrt(max(0, a.lo))
            hi = math.sqrt(a.hi) if not math.isinf(a.hi) else _INF
            return ValueInterval(lo, hi, False)
        if name == "exp":
            try:
                lo = math.exp(a.lo) if not math.isinf(a.lo) else (
                    0.0 if a.lo < 0 else _INF)
                hi = math.exp(a.hi) if not math.isinf(a.hi) else _INF
            except OverflowError:
                return ValueInterval(0.0, _INF, False)
            return ValueInterval(lo, hi, False)
        if name == "log":
            if a.lo <= 0:
                return TOP
            hi = math.log(a.hi) if not math.isinf(a.hi) else _INF
            return ValueInterval(math.log(a.lo), hi, False)
        if name == "atan":
            lo = math.atan(a.lo) if not math.isinf(a.lo) else -math.pi / 2
            hi = math.atan(a.hi) if not math.isinf(a.hi) else math.pi / 2
            return ValueInterval(lo, hi, False)
        if name in ("sin", "cos"):
            return ValueInterval(-1.0, 1.0, False)
        return TOP  # tan, pow: unbounded / sign-dependent


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_ranges(plan, input_ranges=None) -> dict:
    """Per-stage value ranges of a compiled plan (keyed by stage)."""
    analysis = RangeAnalysis.run(plan.ir, plan.estimates, input_ranges)
    return dict(analysis.stage_ranges)


#: integer narrowing targets in preference order (smallest first,
#: unsigned before signed at equal width)
_INT_TARGETS = (UChar, Char, UShort, Short)

#: declared integer types eligible for sub-``int`` storage narrowing.
#: All of these (and the targets) promote to ``int`` in C arithmetic,
#: so re-widening a narrowed load reproduces the original computation
#: exactly.  ``Long``/``ULong``/``UInt`` are excluded: narrowing them
#: would change their consumers' arithmetic type.
_NARROWABLE_INTS = (Int, Short, UShort, Char, UChar)


def narrow_target(dtype: DType, r: ValueInterval) -> DType | None:
    """Narrowest safe storage type for a stage of type ``dtype`` whose
    value range is proven to be ``r``, or ``None`` when nothing narrower
    is provably safe."""
    if dtype in _NARROWABLE_INTS:
        if not (r.integral and r.is_finite):
            return None
        for target in _INT_TARGETS:
            if target.np_dtype.itemsize >= dtype.np_dtype.itemsize:
                continue
            if r.fits(target):
                return target
        return None
    if dtype is Double and r.fits(Float):
        return Float
    return None


def narrowing_decisions(plan, ranges: Mapping) -> dict:
    """Map each narrowable stage to its narrowed storage :class:`DType`.

    Outputs keep their declared type (caller-visible ABI), and
    accumulators/self-referential stages keep theirs (their in-flight
    partial values are not bounded by the final range).
    """
    decisions: dict = {}
    for stage_ir in plan.ir.ordered():
        if (stage_ir.is_output or stage_ir.is_accumulator
                or stage_ir.is_self_referential):
            continue
        r = ranges.get(stage_ir.stage)
        if r is None:
            continue
        target = narrow_target(stage_ir.stage.dtype, r)
        if target is not None:
            decisions[stage_ir.stage] = target
    return decisions
