"""Concrete integer interval arithmetic.

Used for region propagation through access functions: given the box a
consumer tile evaluates, the compiler/runtime computes the box each
producer must cover by pushing intervals through the (affine or sampled)
access forms.  This is the workhorse behind overlapped-tile shapes,
scratchpad sizing and static bounds checking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping

from repro.poly.affine import AccessForm, AffExpr


@dataclass(frozen=True)
class IntInterval:
    """A non-empty inclusive integer range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- structure --------------------------------------------------------
    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains(self, other: "IntInterval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "IntInterval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    # -- set-ish operations -----------------------------------------------
    def intersect(self, other: "IntInterval") -> "IntInterval | None":
        """Intersection, or ``None`` when the ranges are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return IntInterval(lo, hi)

    def hull(self, other: "IntInterval") -> "IntInterval":
        return IntInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expand(self, left: int, right: int) -> "IntInterval":
        return IntInterval(self.lo - left, self.hi + right)

    def clamp_to(self, other: "IntInterval") -> "IntInterval | None":
        return self.intersect(other)

    # -- arithmetic -------------------------------------------------------
    def shift(self, delta: int) -> "IntInterval":
        return IntInterval(self.lo + delta, self.hi + delta)

    def scale(self, factor: Fraction | int) -> "IntInterval":
        """Multiply by a rational; result is the integer hull."""
        f = Fraction(factor)
        a = self.lo * f
        b = self.hi * f
        lo, hi = (a, b) if a <= b else (b, a)
        return IntInterval(math.floor(lo), math.ceil(hi))

    def floordiv(self, divisor: int) -> "IntInterval":
        """Elementwise flooring division (Python ``//`` semantics).

        Monotone increasing in the dividend for a positive divisor,
        decreasing for a negative one — the endpoints swap accordingly.
        """
        if divisor == 0:
            raise ValueError("divisor must be non-zero")
        if divisor < 0:
            return IntInterval(self.hi // divisor, self.lo // divisor)
        return IntInterval(self.lo // divisor, self.hi // divisor)

    def __add__(self, other: "IntInterval") -> "IntInterval":
        return IntInterval(self.lo + other.lo, self.hi + other.hi)

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def evaluate_affine(aff: AffExpr,
                    env: Mapping[Hashable, "IntInterval | int"]) -> IntInterval:
    """Evaluate an affine expression over an interval environment.

    Symbols bound to ints are treated as degenerate intervals.  The result
    is the integer hull of the exact rational range.
    """
    # Fast path: every coefficient (and the constant) is an integer —
    # overwhelmingly the common case — so the whole evaluation stays in
    # machine integers instead of Fraction arithmetic.
    if aff.const.denominator == 1 and \
            all(c.denominator == 1 for _, c in aff.terms):
        ilo = ihi = aff.const.numerator
        for sym, coeff in aff.terms:
            try:
                value = env[sym]
            except KeyError:
                raise KeyError(
                    f"no interval bound for symbol {sym!r}") from None
            c = coeff.numerator
            if isinstance(value, int):
                ilo += c * value
                ihi += c * value
            elif c >= 0:
                ilo += c * value.lo
                ihi += c * value.hi
            else:
                ilo += c * value.hi
                ihi += c * value.lo
        return IntInterval(ilo, ihi)

    lo = hi = aff.const
    for sym, coeff in aff.terms:
        try:
            value = env[sym]
        except KeyError:
            raise KeyError(f"no interval bound for symbol {sym!r}") from None
        if isinstance(value, int):
            value = IntInterval(value, value)
        if coeff >= 0:
            lo += coeff * value.lo
            hi += coeff * value.hi
        else:
            lo += coeff * value.hi
            hi += coeff * value.lo
    return IntInterval(math.floor(lo), math.ceil(hi))


def evaluate_access(form: AccessForm,
                    env: Mapping[Hashable, "IntInterval | int"]) -> IntInterval:
    """Range of ``floor(aff / divisor)`` over an interval environment."""
    base = evaluate_affine(form.aff, env)
    if form.divisor == 1:
        return base
    return base.floordiv(form.divisor)


def evaluate_expr(expr,
                  env: Mapping[Hashable, "IntInterval | int"]
                  ) -> "IntInterval | None":
    """Conservative integer range of a general DSL expression tree.

    This is the interval-propagation workhorse behind fast-path codegen
    (:mod:`repro.codegen.opt`): where :func:`evaluate_affine` only
    handles affine forms, this walks arbitrary index expressions — the
    boundary-clamping ``min``/``max`` compositions, flooring ``//`` by a
    non-zero constant of either sign, ``%`` (DSL/NumPy semantics: the
    result takes the divisor's sign) and ``Select`` hulls — and returns
    the integer
    hull of the value range, or ``None`` when the expression falls
    outside the supported fragment (data-dependent loads, float
    arithmetic, symbols missing from ``env``).

    ``env`` maps :class:`~repro.lang.constructs.Variable` and
    :class:`~repro.lang.constructs.Parameter` objects to intervals (or
    ints, treated as degenerate intervals).
    """
    from repro.lang.expr import (
        BinOp, Call, Cast, Literal, Reference, Select, UnOp,
    )
    from repro.lang.constructs import Parameter, Variable

    def rec(e) -> IntInterval | None:
        if isinstance(e, Literal):
            if isinstance(e.value, bool) or not isinstance(e.value, int):
                return None
            return IntInterval(e.value, e.value)
        if isinstance(e, (Variable, Parameter)):
            value = env.get(e)
            if value is None:
                return None
            if isinstance(value, int):
                return IntInterval(value, value)
            return value
        if isinstance(e, UnOp):
            r = rec(e.operand)
            return None if r is None else IntInterval(-r.hi, -r.lo)
        if isinstance(e, Cast):
            if e.dtype.is_float:
                return None
            return rec(e.operand)
        if isinstance(e, BinOp):
            left = rec(e.left)
            if left is None:
                return None
            if e.op in ("//", "%"):
                right = e.right
                if not (isinstance(right, Literal)
                        and isinstance(right.value, int)
                        and right.value != 0):
                    return None
                m = right.value
                if e.op == "%":
                    # Python/NumPy sign semantics: the result takes the
                    # divisor's sign — [0, m) for m > 0, (m, 0] for m < 0
                    return (IntInterval(0, m - 1) if m > 0
                            else IntInterval(m + 1, 0))
                return left.floordiv(m)
            right = rec(e.right)
            if right is None:
                return None
            if e.op == "+":
                return left + right
            if e.op == "-":
                return IntInterval(left.lo - right.hi, left.hi - right.lo)
            if e.op == "*":
                products = [a * b for a in (left.lo, left.hi)
                            for b in (right.lo, right.hi)]
                return IntInterval(min(products), max(products))
            return None
        if isinstance(e, Call):
            if e.name not in ("min", "max"):
                return None
            ranges = [rec(a) for a in e.args]
            if any(r is None for r in ranges):
                return None
            if e.name == "min":
                return IntInterval(min(r.lo for r in ranges),
                                   min(r.hi for r in ranges))
            return IntInterval(max(r.lo for r in ranges),
                               max(r.hi for r in ranges))
        if isinstance(e, Select):
            t = rec(e.true_expr)
            f = rec(e.false_expr)
            if t is None or f is None:
                return None
            return t.hull(f)
        if isinstance(e, Reference):
            return None
        return None

    return rec(expr)
