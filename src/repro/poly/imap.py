"""Schedules as affine maps (paper Section 3.1).

A stage's schedule is a parametric relation from its domain to a
multi-dimensional time stamp.  For this compiler's purposes a schedule is
fully described by:

* a *level* — the leading time dimension, the stage's level in a
  topological sort of the pipeline graph;
* per spatial dimension, a :class:`ScheduleDim` carrying the domain
  variable together with the *scaling* factor and *alignment offset*
  introduced by Section 3.3's transformations.  The scaled coordinate of a
  point ``x`` along that dimension is ``scale * x + offset``.

The identity schedule (scale 1, offset 0, domain order) is the paper's
"initial schedule"; alignment/scaling rewrite it in place before grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction

from repro.lang.constructs import Variable


@dataclass(frozen=True)
class ScheduleDim:
    """One spatial dimension of a schedule: ``time = scale * var + offset``."""

    variable: Variable
    scale: Fraction = Fraction(1)
    offset: Fraction = Fraction(0)

    def apply(self, value: Fraction | int) -> Fraction:
        return self.scale * value + self.offset

    def __repr__(self) -> str:
        return f"{self.scale}*{self.variable.name} + {self.offset}"


@dataclass(frozen=True)
class Schedule:
    """A level plus one :class:`ScheduleDim` per spatial dimension.

    The full time stamp of a domain point ``(x0, ..., xn)`` is
    ``(level, s0*x0 + o0, ..., sn*xn + on)`` — dimension order follows the
    stage's domain order after alignment.
    """

    level: int
    dims: tuple[ScheduleDim, ...]

    @staticmethod
    def initial(level: int, variables) -> "Schedule":
        return Schedule(level, tuple(ScheduleDim(v) for v in variables))

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def dim_for(self, var: Variable) -> ScheduleDim:
        for dim in self.dims:
            if dim.variable is var:
                return dim
        raise KeyError(f"variable {var.name!r} not in schedule")

    def dim_position(self, var: Variable) -> int:
        for i, dim in enumerate(self.dims):
            if dim.variable is var:
                return i
        raise KeyError(f"variable {var.name!r} not in schedule")

    def with_level(self, level: int) -> "Schedule":
        return replace(self, level=level)

    def with_dim(self, index: int, dim: ScheduleDim) -> "Schedule":
        """Return a copy with dimension ``index`` replaced."""
        dims = list(self.dims)
        dims[index] = dim
        return replace(self, dims=tuple(dims))

    def scaled(self, index: int, scale: Fraction, offset: Fraction) -> "Schedule":
        dim = self.dims[index]
        return self.with_dim(index, ScheduleDim(dim.variable, scale, offset))

    def relation_str(self, name: str) -> str:
        """Human-readable relation, e.g. ``Ix: (x, y) -> (0, x, y)``."""
        domain = ", ".join(d.variable.name for d in self.dims)
        image = [str(self.level)]
        for dim in self.dims:
            part = dim.variable.name
            if dim.scale != 1:
                part = f"{dim.scale}*{part}"
            if dim.offset != 0:
                part = f"{part} + {dim.offset}"
            image.append(part)
        return f"{name}: ({domain}) -> ({', '.join(image)})"

    def __repr__(self) -> str:
        return self.relation_str("schedule")
