"""Parametric integer sets, specialised to the boxes the DSL produces.

Function domains in the language are products of intervals whose bounds
are affine in parameters, optionally tightened per-:class:`Case` by bound
constraints (``x >= 1 & x <= R``).  :class:`ParametricBox` represents such
a set as, per dimension, a list of lower-bound and upper-bound affine
expressions over parameters — their max/min at concretisation time gives
the exact box, mirroring how isl-generated loop bounds carry ``max``/
``min`` of affine forms (cf. the ``max(1, 32*Ti)`` bounds in the paper's
Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping, Sequence

from repro.lang.constructs import Interval, Parameter, Variable
from repro.lang.expr import (
    BoolExpr, CondAnd, Condition, CondNot, CondOr, TrueCond,
)
from repro.poly.affine import AffExpr, NotAffineError, to_affine
from repro.poly.interval import IntInterval


@dataclass(frozen=True)
class DimBounds:
    """Bounds of one dimension: ``max(lowers) <= x <= min(uppers)``."""

    lowers: tuple[AffExpr, ...]
    uppers: tuple[AffExpr, ...]

    def concretize(self, param_env: Mapping[Hashable, int]) -> IntInterval | None:
        """Evaluate to a concrete interval; ``None`` when empty."""
        lo = max(math.ceil(b.evaluate(param_env)) for b in self.lowers)
        hi = min(math.floor(b.evaluate(param_env)) for b in self.uppers)
        if lo > hi:
            return None
        return IntInterval(lo, hi)

    def add_lower(self, bound: AffExpr) -> "DimBounds":
        return DimBounds(self.lowers + (bound,), self.uppers)

    def add_upper(self, bound: AffExpr) -> "DimBounds":
        return DimBounds(self.lowers, self.uppers + (bound,))


class ParametricBox:
    """A product of per-dimension :class:`DimBounds` over named variables."""

    def __init__(self, variables: Sequence[Variable],
                 bounds: Sequence[DimBounds]):
        if len(variables) != len(bounds):
            raise ValueError("one DimBounds required per variable")
        self.variables = tuple(variables)
        self.bounds = tuple(bounds)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def from_intervals(variables: Sequence[Variable],
                       intervals: Sequence[Interval]) -> "ParametricBox":
        """Build from DSL intervals, validating bounds are parameter-affine."""
        dims = []
        for var, ivl in zip(variables, intervals):
            try:
                lo = to_affine(ivl.lower, params_only=True)
                hi = to_affine(ivl.upper, params_only=True)
            except NotAffineError as exc:
                raise ValueError(
                    f"interval bounds for {var.name!r} must be affine in "
                    f"parameters and constants: {exc}") from exc
            dims.append(DimBounds((lo,), (hi,)))
        return ParametricBox(variables, dims)

    @staticmethod
    def from_extents(variables: Sequence[Variable],
                     extents: Sequence) -> "ParametricBox":
        """Image-style box ``[0, extent - 1]`` per dimension."""
        dims = []
        for var, extent in zip(variables, extents):
            hi = to_affine(extent, params_only=True).shift(-1)
            dims.append(DimBounds((AffExpr.constant(0),), (hi,)))
        return ParametricBox(variables, dims)

    # -- structure --------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.variables)

    def dim_index(self, var: Variable) -> int:
        for i, v in enumerate(self.variables):
            if v is var:
                return i
        raise KeyError(f"variable {var.name!r} is not a dimension")

    # -- operations -------------------------------------------------------
    def concretize(self, param_env: Mapping[Hashable, int]
                   ) -> tuple[IntInterval, ...] | None:
        """Evaluate to concrete intervals; ``None`` if any dim is empty."""
        out = []
        for dim in self.bounds:
            interval = dim.concretize(param_env)
            if interval is None:
                return None
            out.append(interval)
        return tuple(out)

    def size_estimate(self, param_env: Mapping[Hashable, int]) -> int:
        """Number of points under concrete parameter values (0 if empty)."""
        box = self.concretize(param_env)
        if box is None:
            return 0
        total = 1
        for interval in box:
            total *= interval.size
        return total

    def tighten(self, per_var_bounds: Mapping[Variable,
                                              tuple[list[AffExpr], list[AffExpr]]]
                ) -> "ParametricBox":
        """Intersect with extra lower/upper bounds keyed by variable."""
        dims = list(self.bounds)
        for var, (lowers, uppers) in per_var_bounds.items():
            try:
                idx = self.dim_index(var)
            except KeyError:
                continue
            dim = dims[idx]
            for bound in lowers:
                dim = dim.add_lower(bound)
            for bound in uppers:
                dim = dim.add_upper(bound)
            dims[idx] = dim
        return ParametricBox(self.variables, dims)

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{v.name}: [{'|'.join(map(repr, d.lowers))}, "
            f"{'|'.join(map(repr, d.uppers))}]"
            for v, d in zip(self.variables, self.bounds))
        return f"ParametricBox({dims})"


# ---------------------------------------------------------------------------
# Condition analysis
# ---------------------------------------------------------------------------

@dataclass
class SplitCondition:
    """A condition split into per-variable bound constraints and a residue.

    ``bounds`` maps each variable to ``(lower_bounds, upper_bounds)`` lists
    of parameter-affine expressions.  ``residual`` collects the conjuncts
    the box representation cannot absorb (disjunctions, multi-variable or
    data-dependent comparisons); they must still be evaluated point-wise at
    execution time.
    """

    bounds: dict[Variable, tuple[list[AffExpr], list[AffExpr]]]
    residual: list[BoolExpr]

    @property
    def is_pure_bounds(self) -> bool:
        return not self.residual


def split_condition(cond: BoolExpr) -> SplitCondition:
    """Separate bound constraints of a conjunction from everything else."""
    bounds: dict[Variable, tuple[list[AffExpr], list[AffExpr]]] = {}
    residual: list[BoolExpr] = []

    def add_bound(var: Variable, kind: str, bound: AffExpr) -> None:
        entry = bounds.setdefault(var, ([], []))
        if kind == "lower":
            entry[0].append(bound)
        else:
            entry[1].append(bound)

    for term in cond.conjuncts():
        if isinstance(term, TrueCond):
            continue
        if not isinstance(term, Condition):
            residual.append(term)
            continue
        normalized = _normalize_comparison(term)
        if normalized is None:
            residual.append(term)
            continue
        for var, kind, bound in normalized:
            add_bound(var, kind, bound)
    return SplitCondition(bounds, residual)


def _normalize_comparison(cond: Condition):
    """Turn ``lhs op rhs`` into bounds on a single variable, if possible.

    Returns a list of ``(variable, 'lower'|'upper', parameter-affine bound)``
    tuples, or ``None`` when the comparison is not a single-variable bound
    constraint.
    """
    try:
        diff = to_affine(cond.lhs) - to_affine(cond.rhs)
    except NotAffineError:
        return None
    variables = diff.variables()
    if len(variables) != 1:
        return None
    var = variables[0]
    coeff = diff.coefficient(var)
    rest = diff.drop(var)  # diff == coeff*var + rest
    # coeff*var + rest  op  0   =>   var  op'  -rest/coeff
    bound = rest.scale(Fraction(-1) / coeff)
    op = cond.op
    if coeff < 0:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                "==": "==", "!=": "!="}
        op = flip[op]
    if op == "==":
        return [(var, "lower", bound), (var, "upper", bound)]
    if op == "!=":
        return None
    # Strict comparisons on integers: nudge by an epsilon smaller than any
    # rational gap our coefficients can produce, so that the ceil/floor at
    # concretisation time lands on the right integer for both integral and
    # fractional bounds (var < 2 -> var <= 1, var < 5/2 -> var <= 2).  The
    # denominator is kept small enough that the C code generator can scale
    # bounds to exact integer arithmetic without overflowing 64 bits.
    epsilon = Fraction(1, 1 << 14)
    if op == "<":
        return [(var, "upper", bound.shift(-epsilon))]
    if op == "<=":
        return [(var, "upper", bound)]
    if op == ">":
        return [(var, "lower", bound.shift(epsilon))]
    if op == ">=":
        return [(var, "lower", bound)]
    raise AssertionError(f"unhandled comparison {op}")
