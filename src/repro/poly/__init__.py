"""A small polyhedral layer built from scratch (isl substitute).

Provides exactly the slice of polyhedral machinery PolyMage uses: affine
expressions over variables and parameters (:mod:`repro.poly.affine`),
parametric box-shaped integer sets with condition tightening
(:mod:`repro.poly.iset`), interval propagation through access functions
(:mod:`repro.poly.interval`), and schedules as affine maps
(:mod:`repro.poly.imap`).
"""

from repro.poly.affine import (
    AccessForm, AffExpr, NotAffineError, analyze_access, to_affine,
)
from repro.poly.imap import Schedule, ScheduleDim
from repro.poly.interval import IntInterval, evaluate_access, evaluate_affine
from repro.poly.iset import (
    DimBounds, ParametricBox, SplitCondition, split_condition,
)

__all__ = [
    "AccessForm", "AffExpr", "DimBounds", "IntInterval", "NotAffineError",
    "ParametricBox", "Schedule", "ScheduleDim", "SplitCondition",
    "analyze_access", "evaluate_access", "evaluate_affine",
    "split_condition", "to_affine",
]
