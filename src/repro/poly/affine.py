"""Affine expressions over DSL symbols — the algebraic core of the compiler.

An :class:`AffExpr` is a linear combination of symbols (DSL
:class:`~repro.lang.constructs.Variable` and
:class:`~repro.lang.constructs.Parameter` objects) with rational
coefficients plus a rational constant.  The compiler extracts these from
DSL expression trees (:func:`to_affine`) to represent domains, schedules,
access functions and dependence vectors, playing the role the integer set
library's ``aff`` plays in the original implementation.

Accesses with integer (floor) division — the up-sampling pattern
``g(x // 2)`` — are captured by :class:`AccessForm` with a divisor, since a
single floor of an affine expression is all the language's sampling
patterns need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Hashable, Iterable, Mapping

from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import BinOp, Cast, Expr, Literal, UnOp


class NotAffineError(Exception):
    """Raised when an expression is not affine in symbols and constants."""


def _as_fraction(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        frac = Fraction(value).limit_denominator(1 << 24)
        if float(frac) != value:
            raise NotAffineError(f"non-rational coefficient: {value!r}")
        return frac
    raise NotAffineError(f"cannot treat {value!r} as a rational constant")


@dataclass(frozen=True)
class AffExpr:
    """``sum(coeff[s] * s for s in terms) + const`` with rational numbers."""

    terms: tuple[tuple[Hashable, Fraction], ...] = ()
    const: Fraction = Fraction(0)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def constant(value) -> "AffExpr":
        return AffExpr((), _as_fraction(value))

    @staticmethod
    def symbol(sym: Hashable, coeff=1) -> "AffExpr":
        """The affine expression ``coeff * sym``."""
        c = _as_fraction(coeff)
        if c == 0:
            return AffExpr()
        return AffExpr(((sym, c),), Fraction(0))

    @staticmethod
    def from_terms(terms: Mapping[Hashable, Fraction], const) -> "AffExpr":
        cleaned = tuple(sorted(
            ((s, c) for s, c in terms.items() if c != 0),
            key=lambda item: id(item[0])))
        return AffExpr(cleaned, _as_fraction(const))

    def _term_map(self) -> dict[Hashable, Fraction]:
        return dict(self.terms)

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "AffExpr | int | Fraction") -> "AffExpr":
        if not isinstance(other, AffExpr):
            other = AffExpr.constant(other)
        terms = self._term_map()
        for sym, coeff in other.terms:
            terms[sym] = terms.get(sym, Fraction(0)) + coeff
        return AffExpr.from_terms(terms, self.const + other.const)

    def __sub__(self, other: "AffExpr | int | Fraction") -> "AffExpr":
        if not isinstance(other, AffExpr):
            other = AffExpr.constant(other)
        return self + other.scale(-1)

    def scale(self, factor) -> "AffExpr":
        f = _as_fraction(factor)
        return AffExpr.from_terms(
            {s: c * f for s, c in self.terms}, self.const * f)

    def shift(self, delta) -> "AffExpr":
        return AffExpr(self.terms, self.const + _as_fraction(delta))

    # -- queries ----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coefficient(self, sym: Hashable) -> Fraction:
        for s, c in self.terms:
            if s is sym:
                return c
        return Fraction(0)

    def symbols(self) -> tuple[Hashable, ...]:
        return tuple(s for s, _ in self.terms)

    def variables(self) -> tuple[Variable, ...]:
        return tuple(s for s, _ in self.terms if isinstance(s, Variable))

    def parameters(self) -> tuple[Parameter, ...]:
        return tuple(s for s, _ in self.terms if isinstance(s, Parameter))

    def drop(self, sym: Hashable) -> "AffExpr":
        """Remove ``sym``'s term (i.e. set its coefficient to zero)."""
        return AffExpr(tuple((s, c) for s, c in self.terms if s is not sym),
                       self.const)

    def substitute(self, env: Mapping[Hashable, "AffExpr"]) -> "AffExpr":
        """Replace symbols by affine expressions."""
        out = AffExpr.constant(self.const)
        for sym, coeff in self.terms:
            repl = env.get(sym)
            if repl is None:
                out = out + AffExpr.symbol(sym, coeff)
            else:
                out = out + repl.scale(coeff)
        return out

    def evaluate(self, env: Mapping[Hashable, int]) -> Fraction:
        """Evaluate with concrete integer symbol values."""
        total = self.const
        for sym, coeff in self.terms:
            if sym not in env:
                raise KeyError(f"no value bound for symbol {sym!r}")
            total += coeff * env[sym]
        return total

    def evaluate_int(self, env: Mapping[Hashable, int]) -> int:
        """Evaluate and require an integral result."""
        value = self.evaluate(env)
        if value.denominator != 1:
            raise ValueError(f"expected integral value, got {value}")
        return int(value)

    def __repr__(self) -> str:
        parts = []
        for sym, coeff in self.terms:
            name = getattr(sym, "name", repr(sym))
            if coeff == 1:
                parts.append(name)
            else:
                parts.append(f"{coeff}*{name}")
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


ZERO = AffExpr()
ONE = AffExpr.constant(1)


def to_affine(expr: Expr, params_only: bool = False) -> AffExpr:
    """Convert a DSL expression into an :class:`AffExpr`.

    Raises :class:`NotAffineError` when the expression involves function
    references, non-linear arithmetic, floor division or math calls.  With
    ``params_only`` set, DSL variables are also rejected — used for
    validating interval bounds and image extents.
    """
    if isinstance(expr, Literal):
        return AffExpr.constant(expr.value)
    if isinstance(expr, Parameter):
        return AffExpr.symbol(expr)
    if isinstance(expr, Variable):
        if params_only:
            raise NotAffineError(
                f"variable {expr.name!r} not allowed in this context")
        return AffExpr.symbol(expr)
    if isinstance(expr, UnOp):
        return to_affine(expr.operand, params_only).scale(-1)
    if isinstance(expr, Cast):
        return to_affine(expr.operand, params_only)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return (to_affine(expr.left, params_only)
                    + to_affine(expr.right, params_only))
        if expr.op == "-":
            return (to_affine(expr.left, params_only)
                    - to_affine(expr.right, params_only))
        if expr.op == "*":
            left = to_affine(expr.left, params_only)
            right = to_affine(expr.right, params_only)
            if left.is_constant:
                return right.scale(left.const)
            if right.is_constant:
                return left.scale(right.const)
            raise NotAffineError("product of two non-constant expressions")
        if expr.op == "/":
            right = to_affine(expr.right, params_only)
            if right.is_constant and right.const != 0:
                return to_affine(expr.left, params_only).scale(1 / right.const)
            raise NotAffineError("division by a non-constant expression")
        raise NotAffineError(f"operator {expr.op!r} is not affine")
    raise NotAffineError(f"{expr!r} is not an affine expression")


@dataclass(frozen=True)
class AccessForm:
    """Canonical form of one index expression of a function access.

    Represents ``floor(aff / divisor)``; ``divisor == 1`` means a plain
    affine index.  ``None`` results from :func:`analyze_access` signal
    data-dependent or otherwise non-affine indices (e.g. ``f(g(x, y))``),
    which the compiler does not analyse — matching the paper, such
    accesses block grouping but still execute correctly.
    """

    aff: AffExpr
    divisor: int = 1

    def __post_init__(self):
        if self.divisor < 1:
            raise ValueError("divisor must be a positive integer")

    @property
    def is_plain_affine(self) -> bool:
        return self.divisor == 1

    def variables(self) -> tuple[Variable, ...]:
        return self.aff.variables()

    def __repr__(self) -> str:
        if self.divisor == 1:
            return f"AccessForm({self.aff!r})"
        return f"AccessForm(({self.aff!r}) // {self.divisor})"


def analyze_access(expr: Expr) -> AccessForm | None:
    """Classify one access index expression.

    Returns an :class:`AccessForm` for affine and singly-sampled indices —
    one floor division by a positive integer constant, optionally combined
    with integer-constant shifts, using the identity
    ``floor(a / m) + c == floor((a + m * c) / m)`` — or ``None`` for
    anything else (data-dependent indices, nested sampling, reflections of
    sampled indices, ...).
    """
    try:
        return AccessForm(to_affine(expr))
    except NotAffineError:
        pass
    return _analyze_sampled(expr)


def _constant_int(expr: Expr) -> int | None:
    try:
        aff = to_affine(expr)
    except NotAffineError:
        return None
    if not aff.is_constant or aff.const.denominator != 1:
        return None
    return int(aff.const)


def _analyze_sampled(expr: Expr) -> AccessForm | None:
    if isinstance(expr, BinOp) and expr.op == "//":
        try:
            numerator = to_affine(expr.left)
            denominator = to_affine(expr.right)
        except NotAffineError:
            return None
        if not denominator.is_constant:
            return None
        div = denominator.const
        if div.denominator != 1 or div <= 0:
            return None
        return AccessForm(numerator, int(div))
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        # fold integer-constant shifts into the floor's numerator
        left_const = _constant_int(expr.left)
        right_const = _constant_int(expr.right)
        if right_const is not None:
            inner = _analyze_sampled(expr.left)
            if inner is None or inner.divisor == 1:
                return None
            shift = right_const if expr.op == "+" else -right_const
            return AccessForm(inner.aff.shift(inner.divisor * shift),
                              inner.divisor)
        if left_const is not None and expr.op == "+":
            inner = _analyze_sampled(expr.right)
            if inner is None or inner.divisor == 1:
                return None
            return AccessForm(inner.aff.shift(inner.divisor * left_const),
                              inner.divisor)
    return None
