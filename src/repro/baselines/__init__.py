"""Comparator implementations: the OpenCV-style routine library."""

from repro.baselines import opencv_like

__all__ = ["opencv_like"]
