"""OpenCV-style baseline: optimized routines, no cross-routine fusion.

The paper's Table 2 compares against compositions of OpenCV library
calls.  This module substitutes a small routine library with the defining
property the comparison measures: each routine is internally vectorized
and efficient, but every call reads and writes full-size buffers, so no
locality is exploited *across* routines.  Compositions exist for the
three benchmarks the paper reports OpenCV numbers for (Unsharp Mask,
Harris Corner, Pyramid Blending).
"""

from __future__ import annotations

import numpy as np


# ---------------------------------------------------------------------------
# Routine library (each call = one "library routine": full buffers in/out)
# ---------------------------------------------------------------------------

def sep_filter2d(src: np.ndarray, kx: np.ndarray, ky: np.ndarray
                 ) -> np.ndarray:
    """Separable 2-D correlation over the trailing two axes (zero pad)."""
    kx = np.asarray(kx, dtype=np.float32)
    ky = np.asarray(ky, dtype=np.float32)
    tmp = np.zeros_like(src)
    rx = len(kx) // 2
    n = src.shape[-2]
    for i, w in enumerate(kx):
        off = i - rx
        lo, hi = max(0, -off), min(n, n - off)
        tmp[..., lo:hi, :] += w * src[..., lo + off:hi + off, :]
    out = np.zeros_like(src)
    ry = len(ky) // 2
    m = src.shape[-1]
    for j, w in enumerate(ky):
        off = j - ry
        lo, hi = max(0, -off), min(m, m - off)
        out[..., lo:hi] += w * tmp[..., lo + off:hi + off]
    return out


def gaussian_blur5(src: np.ndarray) -> np.ndarray:
    k = np.array([1, 4, 6, 4, 1], np.float32) / 16.0
    return sep_filter2d(src, k, k)


def sobel(src: np.ndarray, axis: int) -> np.ndarray:
    """Sobel derivative along ``axis`` (0 = rows, 1 = columns)."""
    deriv = np.array([-1, 0, 1], np.float32)
    smooth = np.array([1, 2, 1], np.float32)
    if axis == 0:
        return sep_filter2d(src, deriv, smooth)
    return sep_filter2d(src, smooth, deriv)


def box_filter3(src: np.ndarray) -> np.ndarray:
    k = np.ones(3, np.float32)
    return sep_filter2d(src, k, k)


def multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def add_weighted(a: np.ndarray, alpha: float, b: np.ndarray,
                 beta: float) -> np.ndarray:
    return alpha * a + beta * b


def threshold_mix(src: np.ndarray, blurred: np.ndarray, sharpened:
                  np.ndarray, thresh: float) -> np.ndarray:
    return np.where(np.abs(src - blurred) < thresh, src, sharpened)


def pyr_down(src: np.ndarray) -> np.ndarray:
    blurred = sep_filter2d(src, np.array([1, 2, 1], np.float32) / 4.0,
                           np.array([1, 2, 1], np.float32) / 4.0)
    return blurred[..., ::2, ::2].copy()


def pyr_up(src: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Upsample by averaging the four nearest coarse cells."""
    S, T = shape
    xs = np.arange(S)
    ys = np.arange(T)
    x0, x1 = xs // 2, np.minimum((xs + 1) // 2, src.shape[-2] - 1)
    y0, y1 = ys // 2, np.minimum((ys + 1) // 2, src.shape[-1] - 1)
    return 0.25 * (src[..., x0[:, None], y0[None, :]]
                   + src[..., x1[:, None], y0[None, :]]
                   + src[..., x0[:, None], y1[None, :]]
                   + src[..., x1[:, None], y1[None, :]])


# ---------------------------------------------------------------------------
# Benchmark compositions (Table 2's OpenCV column)
# ---------------------------------------------------------------------------

def unsharp_like(image: np.ndarray, weight: float = 3.0,
                 thresh: float = 0.001) -> np.ndarray:
    """GaussianBlur -> addWeighted -> threshold select."""
    blurred = gaussian_blur5(image)
    sharpened = add_weighted(image, 1.0 + weight, blurred, -weight)
    return threshold_mix(image, blurred, sharpened, thresh)


def harris_like(image: np.ndarray, k: float = 0.04) -> np.ndarray:
    """Sobel derivatives -> products -> box sums -> corner response."""
    ix = sobel(image, 1) / 12.0 * 3.0
    iy = sobel(image, 0) / 12.0 * 3.0
    ixx = multiply(ix, ix)
    iyy = multiply(iy, iy)
    ixy = multiply(ix, iy)
    sxx = box_filter3(ixx)
    syy = box_filter3(iyy)
    sxy = box_filter3(ixy)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace


def pyramid_blend_like(a: np.ndarray, b: np.ndarray, mask: np.ndarray,
                       levels: int = 4) -> np.ndarray:
    """pyrDown/pyrUp Laplacian blending, one routine call per step."""
    ga, gb, gm = [a], [b], [mask]
    for _ in range(levels - 1):
        ga.append(pyr_down(ga[-1]))
        gb.append(pyr_down(gb[-1]))
        gm.append(pyr_down(gm[-1]))
    la = [ga[l] - pyr_up(ga[l + 1], ga[l].shape[-2:])
          for l in range(levels - 1)] + [ga[-1]]
    lb = [gb[l] - pyr_up(gb[l + 1], gb[l].shape[-2:])
          for l in range(levels - 1)] + [gb[-1]]
    blend = [gm[l][None] * la[l] + (1 - gm[l][None]) * lb[l]
             for l in range(levels)]
    out = blend[-1]
    for l in range(levels - 2, -1, -1):
        out = blend[l] + pyr_up(out, blend[l].shape[-2:])
    return out
