"""The compile farm: fan configuration builds out over worker processes.

The paper's autotuner explores a model-restricted space of ~147
configurations per pipeline; almost all the sweep's wall-clock goes into
the middle end plus gcc, both embarrassingly parallel across
configurations.  This module runs those compile jobs on a
``ProcessPoolExecutor`` while the caller keeps *timing* strictly
serialized on the parent process, so measurements are never contended by
each other.

Each task carries everything a worker needs (live-out stages, estimates,
``CompileOptions``) — the DSL graph pickles cleanly.  Workers compile
into the shared :class:`~repro.codegen.build.CompileCache`, whose atomic
publish makes concurrent builds of the same key safe, and return a
:class:`CompileRecord` holding the (re-pickled) plan plus build
provenance.  Because pickling copies the object graph, plans coming back
from a worker contain *fresh* ``Parameter``/``Image`` objects — use
:func:`rebind_values` to re-key the caller's identity-keyed mappings by
name before executing such a plan.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.compiler.options import CompileOptions
from repro.compiler.plan import PipelinePlan, compile_plan


@dataclass(frozen=True)
class CompileTask:
    """One configuration to compile, self-contained and picklable."""

    index: int
    outputs: tuple
    estimates: dict
    options: CompileOptions
    backend: str = "native"
    cache_dir: str | None = None
    vectorize: bool = True
    #: build with in-library per-group timers (native backend only)
    instrument: bool = False
    #: optional :class:`~repro.schedule.ScheduleHints` constraining the
    #: grouping loop for every configuration (frozen, pickles cleanly)
    hints: object = None


@dataclass
class CompileRecord:
    """What one compile job produced (or why it failed)."""

    index: int
    plan: PipelinePlan | None = None
    n_groups: int = 0
    compile_s: float = 0.0
    plan_s: float = 0.0
    cache_hit: bool | None = None
    info: object = None  # repro.codegen.build.BuildInfo for native builds
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _short_reason(prefix: str, exc: BaseException) -> str:
    text = " ".join(str(exc).split())
    if len(text) > 240:
        text = text[:240] + "..."
    return f"{prefix}: {type(exc).__name__}: {text}" if text else \
        f"{prefix}: {type(exc).__name__}"


def compile_one(task: CompileTask) -> CompileRecord:
    """Run the middle end (and the C compiler, for the native backend).

    Never raises for per-configuration failures — the record carries the
    reason instead, so one broken configuration cannot abort a sweep.
    """
    t0 = time.perf_counter()
    # hints stay a keyword-only extra so an unhinted sweep calls
    # compile_plan with its historical 3-arg shape
    kwargs = {"hints": task.hints} if task.hints is not None else {}
    try:
        plan = compile_plan(list(task.outputs), task.estimates, task.options,
                            **kwargs)
    except Exception as exc:
        return CompileRecord(task.index, error=_short_reason("plan", exc))
    record = CompileRecord(task.index, plan=plan,
                           n_groups=len(plan.group_plans),
                           plan_s=time.perf_counter() - t0)
    if task.backend == "native":
        from repro.codegen.build import BuildError, compile_artifact
        try:
            info = compile_artifact(plan, vectorize=task.vectorize,
                                    instrument=task.instrument,
                                    cache_dir=task.cache_dir)
        except BuildError as exc:
            return CompileRecord(task.index,
                                 error=_short_reason("build", exc))
        record.compile_s = info.compile_s
        record.cache_hit = info.cache_hit
        record.info = info
    return record


def run_compile_farm(tasks: Sequence[CompileTask],
                     n_workers: int = 1) -> Iterator[CompileRecord]:
    """Yield a :class:`CompileRecord` per task, as each build finishes.

    ``n_workers <= 1`` compiles in-process (no pool, deterministic
    order).  With more workers, records are yielded in completion order —
    the caller can start timing a finished configuration while others are
    still compiling.  Falls back to the serial path if worker processes
    cannot be spawned in this environment.
    """
    if n_workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield compile_one(task)
        return
    try:
        pool = ProcessPoolExecutor(max_workers=min(n_workers, len(tasks)))
    except (OSError, PermissionError, ValueError):
        for task in tasks:
            yield compile_one(task)
        return
    with pool:
        pending = {pool.submit(compile_one, task) for task in tasks}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()


def rebind_values(plan: PipelinePlan, param_values: Mapping,
                  inputs: Mapping) -> tuple[dict, dict]:
    """Re-key identity-keyed mappings onto a (possibly pickled) plan.

    ``Parameter`` and ``Image`` hash by identity; a plan that crossed a
    process boundary holds fresh copies, so the caller's mappings are
    matched up by name.  Names missing from the mappings are simply left
    out — downstream validation reports them.
    """
    params_by_name = {p.name: v for p, v in param_values.items()}
    inputs_by_name = {img.name: arr for img, arr in inputs.items()}
    params = {p: params_by_name[p.name] for p in plan.estimates
              if p.name in params_by_name}
    images = {img: inputs_by_name[img.name]
              for img in plan.ir.graph.inputs
              if img.name in inputs_by_name}
    return params, images
