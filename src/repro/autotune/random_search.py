"""Stochastic configuration search — the OpenTuner stand-in.

The paper compares its model-restricted sweep against Halide schedules
found by OpenTuner's stochastic search over a much larger space.  This
module reproduces that axis: configurations are sampled at random from a
*wide* space (arbitrary power-of-two tiles from 4 to 1024, continuous
thresholds, inlining and grouping toggles) under a fixed evaluation
budget, and the best-so-far trajectory is recorded.  With equal budgets
the restricted model-driven sweep reliably finds better points — the
paper's Section 5 argument that "only a small subset of the space
matters in practice".

The whole budget is sampled up-front (so a seed fully determines the
candidate list), which also lets ``n_workers > 1`` fan the compile jobs
out over the same process farm the model-driven tuner uses; timing stays
serialized on the parent either way.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.autotune.farm import (
    CompileTask, rebind_values, run_compile_farm,
)
from repro.compiler.options import CompileOptions


@dataclass(frozen=True)
class RandomConfig:
    """One sampled point of the wide space."""

    tile_sizes: tuple[int, ...]
    overlap_threshold: float
    inline: bool
    group: bool
    specialize: bool = True

    def options(self) -> CompileOptions:
        return CompileOptions(tile_sizes=self.tile_sizes,
                              overlap_threshold=self.overlap_threshold,
                              inline=self.inline, group=self.group,
                              tile=self.group,
                              specialize=self.specialize,
                              simd=self.specialize)

    def __str__(self) -> str:
        tiles = "x".join(map(str, self.tile_sizes))
        return (f"tiles={tiles} othresh={self.overlap_threshold:.2f} "
                f"inline={self.inline} group={self.group} "
                f"specialize={self.specialize}")

    def to_dict(self) -> dict:
        return {"tile_sizes": list(self.tile_sizes),
                "overlap_threshold": self.overlap_threshold,
                "inline": self.inline, "group": self.group,
                "specialize": self.specialize}


@dataclass
class SearchResult:
    """One evaluated random configuration and its time."""
    config: RandomConfig
    time_ms: float
    compile_s: float = 0.0
    cache_hit: bool | None = None


@dataclass
class SearchReport:
    """All evaluations of one random-search run."""
    results: list[SearchResult] = field(default_factory=list)
    skipped: list[tuple[RandomConfig, str]] = field(default_factory=list)
    elapsed_s: float = 0.0
    n_workers: int = 1

    def best(self) -> SearchResult:
        if not self.results:
            raise ValueError("no configuration evaluated successfully")
        return min(self.results, key=lambda r: r.time_ms)

    def trajectory(self) -> list[float]:
        """Best-so-far time after each evaluation."""
        out, best = [], float("inf")
        for r in self.results:
            best = min(best, r.time_ms)
            out.append(best)
        return out

    def to_dict(self) -> dict:
        return {"n_workers": self.n_workers,
                "elapsed_s": self.elapsed_s,
                "results": [{**r.config.to_dict(), "time_ms": r.time_ms,
                             "compile_s": r.compile_s,
                             "cache_hit": r.cache_hit}
                            for r in self.results],
                "skipped": [{**c.to_dict(), "reason": reason}
                            for c, reason in self.skipped]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path


def sample_config(rng: np.random.Generator, n_dims: int) -> RandomConfig:
    """Draw one configuration from the wide space."""
    tiles = tuple(int(2 ** rng.integers(2, 11)) for _ in range(n_dims))
    threshold = float(rng.uniform(0.05, 1.0))
    inline = bool(rng.integers(0, 2))
    group = bool(rng.integers(0, 4) > 0)  # mostly grouped, sometimes not
    # mostly specialized — the off branch keeps the search honest about
    # whether the fast path actually pays on this machine
    specialize = bool(rng.integers(0, 4) > 0)
    return RandomConfig(tiles, threshold, inline, group, specialize)


def random_search(outputs, estimates: Mapping, param_values: Mapping,
                  inputs: Mapping, *,
                  budget: int = 30,
                  n_dims: int = 2,
                  backend: str = "native",
                  n_threads: int = 4,
                  seed: int = 0,
                  name: str = "rand",
                  n_workers: int = 1,
                  cache_dir: str | Path | None = None) -> SearchReport:
    """Evaluate ``budget`` random configurations; return all timings.

    Configurations that fail to compile are skipped and recorded with
    their failure reason in ``report.skipped``.
    """
    rng = np.random.default_rng(seed)
    candidates = [sample_config(rng, n_dims) for _ in range(budget)]
    n_workers = max(1, n_workers)
    report = SearchReport(n_workers=n_workers)
    start = time.perf_counter()
    estimates = dict(estimates)
    tasks = [CompileTask(i, tuple(outputs), estimates, config.options(),
                         backend=backend,
                         cache_dir=str(cache_dir) if cache_dir else None)
             for i, config in enumerate(candidates)]

    measured: list[tuple[int, SearchResult]] = []
    skipped: list[tuple[int, RandomConfig, str]] = []
    for record in run_compile_farm(tasks, n_workers):
        config = candidates[record.index]
        if not record.ok:
            skipped.append((record.index, config, record.error))
            continue
        plan = record.plan
        params, images = rebind_values(plan, param_values, inputs)
        try:
            if backend == "native":
                from repro.codegen.build import load_native
                pipe = load_native(plan, f"{name}_{record.index}",
                                   record.info)

                def run():
                    return pipe(params, images, n_threads=n_threads)
            else:
                from repro.runtime.executor import execute_plan

                def run():
                    return execute_plan(plan, params, images,
                                        n_threads=n_threads)
            run()  # warm up
            t0 = time.perf_counter()
            run()
            elapsed = (time.perf_counter() - t0) * 1000.0
        except Exception as exc:
            skipped.append((record.index, config, f"run: {exc}"))
            continue
        measured.append((record.index,
                         SearchResult(config, elapsed,
                                      compile_s=record.compile_s,
                                      cache_hit=record.cache_hit)))

    report.results = [r for _, r in sorted(measured, key=lambda t: t[0])]
    report.skipped = [(c, reason) for _, c, reason
                      in sorted(skipped, key=lambda t: t[0])]
    report.elapsed_s = time.perf_counter() - start
    return report
