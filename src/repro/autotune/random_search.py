"""Stochastic configuration search — the OpenTuner stand-in.

The paper compares its model-restricted sweep against Halide schedules
found by OpenTuner's stochastic search over a much larger space.  This
module reproduces that axis: configurations are sampled at random from a
*wide* space (arbitrary power-of-two tiles from 4 to 1024, continuous
thresholds, inlining and grouping toggles) under a fixed evaluation
budget, and the best-so-far trajectory is recorded.  With equal budgets
the restricted model-driven sweep reliably finds better points — the
paper's Section 5 argument that "only a small subset of the space
matters in practice".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan


@dataclass(frozen=True)
class RandomConfig:
    """One sampled point of the wide space."""

    tile_sizes: tuple[int, ...]
    overlap_threshold: float
    inline: bool
    group: bool

    def options(self) -> CompileOptions:
        return CompileOptions(tile_sizes=self.tile_sizes,
                              overlap_threshold=self.overlap_threshold,
                              inline=self.inline, group=self.group,
                              tile=self.group)

    def __str__(self) -> str:
        tiles = "x".join(map(str, self.tile_sizes))
        return (f"tiles={tiles} othresh={self.overlap_threshold:.2f} "
                f"inline={self.inline} group={self.group}")


@dataclass
class SearchResult:
    """One evaluated random configuration and its time."""
    config: RandomConfig
    time_ms: float


@dataclass
class SearchReport:
    """All evaluations of one random-search run."""
    results: list[SearchResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def best(self) -> SearchResult:
        if not self.results:
            raise ValueError("no configuration evaluated successfully")
        return min(self.results, key=lambda r: r.time_ms)

    def trajectory(self) -> list[float]:
        """Best-so-far time after each evaluation."""
        out, best = [], float("inf")
        for r in self.results:
            best = min(best, r.time_ms)
            out.append(best)
        return out


def sample_config(rng: np.random.Generator, n_dims: int) -> RandomConfig:
    """Draw one configuration from the wide space."""
    tiles = tuple(int(2 ** rng.integers(2, 11)) for _ in range(n_dims))
    threshold = float(rng.uniform(0.05, 1.0))
    inline = bool(rng.integers(0, 2))
    group = bool(rng.integers(0, 4) > 0)  # mostly grouped, sometimes not
    return RandomConfig(tiles, threshold, inline, group)


def random_search(outputs, estimates: Mapping, param_values: Mapping,
                  inputs: Mapping, *,
                  budget: int = 30,
                  n_dims: int = 2,
                  backend: str = "native",
                  n_threads: int = 4,
                  seed: int = 0,
                  name: str = "rand") -> SearchReport:
    """Evaluate ``budget`` random configurations; return all timings."""
    rng = np.random.default_rng(seed)
    report = SearchReport()
    start = time.perf_counter()
    for i in range(budget):
        config = sample_config(rng, n_dims)
        try:
            plan = compile_plan(outputs, estimates, config.options())
            if backend == "native":
                from repro.codegen.build import build_native
                pipe = build_native(plan, f"{name}_{i}")

                def run():
                    return pipe(param_values, inputs, n_threads=n_threads)
            else:
                from repro.runtime.executor import execute_plan

                def run():
                    return execute_plan(plan, param_values, inputs,
                                        n_threads=n_threads)
            run()  # warm up
            t0 = time.perf_counter()
            run()
            elapsed = (time.perf_counter() - t0) * 1000.0
        except Exception:
            continue
        report.results.append(SearchResult(config, elapsed))
    report.elapsed_s = time.perf_counter() - start
    return report
