"""Model-driven autotuning (paper Section 3.8, Figure 9).

The optimizer reduces the schedule space to tile sizes and the overlap
threshold; the autotuner exhaustively times that small space — seven tile
sizes per tiled dimension and three thresholds, i.e. 147 configurations
for the two-tilable-dimension pipelines of the paper — and reports every
configuration's single-thread and multi-thread time (the data behind
Figure 9's scatter plots) plus the best configuration.

With ``n_workers > 1`` the compile half of the sweep (middle end + gcc)
fans out over a process pool (:mod:`repro.autotune.farm`) while every
timing run stays serialized on the parent, so measurements are never
contended by each other.  Each configuration's compile time and
compile-cache hit/miss are recorded alongside its run times in the
:class:`TuningReport`, which serializes to JSON for the bench harnesses.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.autotune.farm import (
    CompileRecord, CompileTask, rebind_values, run_compile_farm,
)
from repro.compiler.options import (
    OVERLAP_THRESHOLD_CHOICES, TILE_SIZE_CHOICES, CompileOptions,
)


@dataclass(frozen=True)
class TuneConfig:
    """One point of the autotuning space."""

    tile_sizes: tuple[int, ...]
    overlap_threshold: float
    specialize: bool = True
    narrow: bool = False

    def options(self) -> CompileOptions:
        base = CompileOptions.optimized(self.tile_sizes,
                                        self.overlap_threshold)
        if not self.specialize:
            base = base.with_specialize(False, simd=False)
        if self.narrow:
            base = base.with_narrow(True)
        return base

    def __str__(self) -> str:
        tiles = "x".join(map(str, self.tile_sizes))
        out = f"tiles={tiles} othresh={self.overlap_threshold}"
        if not self.specialize:
            out += " specialize=False"
        if self.narrow:
            out += " narrow"
        return out

    def to_dict(self) -> dict:
        return {"tile_sizes": list(self.tile_sizes),
                "overlap_threshold": self.overlap_threshold,
                "specialize": self.specialize,
                "narrow": self.narrow}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TuneConfig":
        return cls(tuple(data["tile_sizes"]), data["overlap_threshold"],
                   bool(data.get("specialize", True)),
                   bool(data.get("narrow", False)))


@dataclass
class TuneResult:
    """Measured times for one configuration (Figure 9's data points).

    Times are the best (minimum) of the repeats, as the paper selects;
    the standard deviations expose run-to-run noise.  ``profile`` is the
    per-group native stats summary (group seconds and tile counts) when
    the sweep ran with ``profile=True``.
    """

    config: TuneConfig
    time_single_ms: float
    time_parallel_ms: float
    n_groups: int
    compile_s: float = 0.0
    cache_hit: bool | None = None
    time_single_std_ms: float = 0.0
    time_parallel_std_ms: float = 0.0
    profile: dict | None = None

    def to_dict(self) -> dict:
        return {**self.config.to_dict(),
                "time_single_ms": self.time_single_ms,
                "time_parallel_ms": self.time_parallel_ms,
                "time_single_std_ms": self.time_single_std_ms,
                "time_parallel_std_ms": self.time_parallel_std_ms,
                "n_groups": self.n_groups,
                "compile_s": self.compile_s,
                "cache_hit": self.cache_hit,
                "profile": self.profile}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TuneResult":
        return cls(TuneConfig.from_dict(data),
                   data["time_single_ms"], data["time_parallel_ms"],
                   data["n_groups"], data.get("compile_s", 0.0),
                   data.get("cache_hit"),
                   data.get("time_single_std_ms", 0.0),
                   data.get("time_parallel_std_ms", 0.0),
                   data.get("profile"))


@dataclass
class SkippedConfig:
    """A configuration that failed to compile, with the reason recorded."""

    config: TuneConfig
    reason: str

    def to_dict(self) -> dict:
        return {**self.config.to_dict(), "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SkippedConfig":
        return cls(TuneConfig.from_dict(data), data["reason"])


@dataclass
class TuningReport:
    """All measurements from one autotuning run."""

    results: list[TuneResult] = field(default_factory=list)
    skipped: list[SkippedConfig] = field(default_factory=list)
    elapsed_s: float = 0.0
    backend: str = "native"
    n_workers: int = 1
    n_threads: int = 0

    def best(self, parallel: bool = True) -> TuneResult:
        """The fastest configuration (by parallel or single-thread time)."""
        if not self.results:
            raise ValueError("no configurations were measured")
        key = ((lambda r: r.time_parallel_ms) if parallel
               else (lambda r: r.time_single_ms))
        return min(self.results, key=key)

    def scatter(self) -> list[tuple[float, float]]:
        """(1-thread ms, n-thread ms) pairs — the Figure 9 axes."""
        return [(r.time_single_ms, r.time_parallel_ms)
                for r in self.results]

    # -- cache observability ----------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if r.cache_hit is False)

    @property
    def all_cache_hits(self) -> bool:
        return bool(self.results) and all(r.cache_hit for r in self.results)

    @property
    def total_compile_s(self) -> float:
        return sum(r.compile_s for r in self.results)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        best = None
        if self.results:
            best = self.best(parallel=True).to_dict()
        return {"backend": self.backend,
                "n_workers": self.n_workers,
                "n_threads": self.n_threads,
                "elapsed_s": self.elapsed_s,
                "cache": {"hits": self.cache_hits,
                          "misses": self.cache_misses},
                "total_compile_s": self.total_compile_s,
                "best": best,
                "results": [r.to_dict() for r in self.results],
                "skipped": [s.to_dict() for s in self.skipped]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping) -> "TuningReport":
        return cls(
            results=[TuneResult.from_dict(r) for r in data.get("results", [])],
            skipped=[SkippedConfig.from_dict(s)
                     for s in data.get("skipped", [])],
            elapsed_s=data.get("elapsed_s", 0.0),
            backend=data.get("backend", "native"),
            n_workers=data.get("n_workers", 1),
            n_threads=data.get("n_threads", 0))

    @classmethod
    def from_json(cls, text: str) -> "TuningReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "TuningReport":
        return cls.from_json(Path(path).read_text())


def default_space(n_dims: int,
                  tile_choices: Sequence[int] = TILE_SIZE_CHOICES,
                  thresholds: Sequence[float] = OVERLAP_THRESHOLD_CHOICES,
                  specialize_choices: Sequence[bool] = (True,)
                  ) -> list[TuneConfig]:
    """The paper's restricted space: |tile_choices|^n_dims * |thresholds|.

    ``specialize_choices=(True, False)`` doubles the space with the
    fast-path knob, for machines where specialization might not pay.
    """
    out = []
    for tiles in itertools.product(tile_choices, repeat=n_dims):
        for th in thresholds:
            for sp in specialize_choices:
                out.append(TuneConfig(tiles, th, sp))
    return out


def _time_call(fn: Callable[[], object],
               repeats: int) -> tuple[float, float]:
    """(best ms, std ms) over ``repeats`` runs after one warm-up."""
    import statistics
    fn()  # warm up (the paper discards the first run)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1000.0)
    std = statistics.pstdev(times) if len(times) > 1 else 0.0
    return min(times), std


def _measure(record: CompileRecord, config: TuneConfig, param_values,
             inputs, backend: str, n_threads: int, repeats: int,
             name: str) -> TuneResult:
    """Time one compiled configuration (always on the calling process)."""
    plan = record.plan
    params, images = rebind_values(plan, param_values, inputs)
    pipe = None
    if backend == "native":
        from repro.codegen.build import load_native
        pipe = load_native(plan, f"{name}_{record.index}", record.info)

        def run(n: int):
            return pipe(params, images, n_threads=n)
    else:
        from repro.runtime.executor import execute_plan

        def run(n: int):
            return execute_plan(plan, params, images, n_threads=n)

    single, single_std = _time_call(lambda: run(1), repeats)
    parallel, parallel_std = _time_call(lambda: run(n_threads), repeats)
    # per-group profile of the last (parallel) run, for instrumented builds
    profile = None
    if pipe is not None and pipe.last_stats is not None:
        profile = pipe.last_stats.as_dict()
    return TuneResult(config, single, parallel, record.n_groups,
                      compile_s=record.compile_s,
                      cache_hit=record.cache_hit,
                      time_single_std_ms=single_std,
                      time_parallel_std_ms=parallel_std,
                      profile=profile)


def autotune(outputs, estimates: Mapping, param_values: Mapping,
             inputs: Mapping, *,
             space: Iterable[TuneConfig] | None = None,
             n_dims: int = 2,
             backend: str = "native",
             n_threads: int = 4,
             repeats: int = 2,
             name: str = "tuned",
             n_workers: int = 1,
             cache_dir: str | Path | None = None,
             profile: bool = False,
             verify: bool = True,
             hints=None,
             store: str | None = None,
             store_root: str | Path | None = None) -> TuningReport:
    """Time every configuration of the (restricted) space.

    ``backend`` is ``"native"`` (generated C, as the paper measures) or
    ``"interp"`` (NumPy interpreter, for environments without a C
    compiler).  Configurations whose compilation fails are skipped and
    recorded, with the failure reason, in ``report.skipped``.

    ``n_workers > 1`` compiles configurations concurrently in worker
    processes; timing always runs one-at-a-time on the calling process,
    and the returned report is ordered and selected identically to a
    serial sweep.

    ``profile=True`` (native backend) builds every configuration with
    in-library per-group timers and attaches the per-group seconds /
    tile counts of the measured run to each :class:`TuneResult` — note
    the timers add a small overhead to the reported times.

    ``verify=True`` (the default) runs the static plan verifier
    (:mod:`repro.verify`) on every successfully compiled configuration
    before timing it; configurations with error-severity findings are
    never run — they join ``report.skipped`` with the diagnostic codes
    as the reason.  Configurations with ``narrow=True`` additionally get
    the RV5xx range-audit checks, so an unsound narrowing decision is
    caught before it can produce (fast) wrong answers.

    ``hints`` is an optional :class:`~repro.schedule.ScheduleHints`
    applied to *every* configuration of the sweep; hinted plans still go
    through the same verifier gate (including the RV6xx hint audit).

    ``store="ro"|"rw"`` consults the persistent schedule store
    (:mod:`repro.schedule`).  When the store already holds a tuned
    winner for this pipeline on this machine (under the same hints),
    only that winning configuration is re-measured — every other
    configuration of the space is reported as
    ``SkippedConfig(config, "store_hit")``, so the sweep accounting
    stays complete (``len(results) + len(skipped)`` still covers the
    whole space).  With ``"rw"`` the sweep's winner (measurements and
    artifact coordinates included) is published back to the store.
    ``store_root`` overrides the store directory (default:
    ``<cache root>/schedules``).
    """
    if store not in (None, "ro", "rw"):
        raise ValueError(f"store must be None, 'ro' or 'rw', got {store!r}")
    if hints is not None and hints.is_empty():
        hints = None
    space = list(space) if space is not None else default_space(n_dims)
    n_workers = max(1, n_workers)
    report = TuningReport(backend=backend, n_workers=n_workers,
                          n_threads=n_threads)
    start = time.perf_counter()
    estimates = dict(estimates)
    measured: list[tuple[int, TuneResult]] = []
    skipped: list[tuple[int, SkippedConfig]] = []
    hints_doc = hints.to_dict() if hints is not None else None

    sched_store = digest = fingerprint = None
    stored_entry = None
    if store is not None:
        from repro.codegen.build import _schedule_store, get_cache
        from repro.schedule.store import machine_fingerprint, pipeline_digest
        sched_store = _schedule_store(get_cache(cache_dir), cache_dir,
                                      store_root)
        digest = pipeline_digest(list(outputs), estimates)
        fingerprint = machine_fingerprint()
        stored_entry = sched_store.lookup(digest, fingerprint)
        # only a *tuned* entry under the same hints short-circuits a sweep
        if stored_entry is not None and (
                stored_entry.tune_result is None
                or (stored_entry.hints or None) != hints_doc):
            stored_entry = None

    sweep = list(enumerate(space))
    if stored_entry is not None:
        winner = TuneConfig.from_dict(stored_entry.tune_result)
        sweep = [(i, c) for i, c in sweep if c == winner]
        skipped.extend((i, SkippedConfig(c, "store_hit"))
                       for i, c in enumerate(space) if c != winner)
        if not sweep:
            # stored winner from outside the requested space: measure it
            # anyway — it is the best known schedule for this pipeline
            sweep = [(len(space), winner)]

    tasks = []
    for i, config in sweep:
        try:
            options = config.options()
        except Exception as exc:
            skipped.append((i, SkippedConfig(config, f"options: {exc}")))
            continue
        tasks.append(CompileTask(i, tuple(outputs), estimates, options,
                                 backend=backend,
                                 cache_dir=str(cache_dir) if cache_dir
                                 else None,
                                 instrument=profile and backend == "native",
                                 hints=hints))
    configs = dict(sweep)
    infos: dict[int, object] = {}
    for record in run_compile_farm(tasks, n_workers):
        config = configs[record.index]
        infos[record.index] = record.info
        if not record.ok:
            skipped.append((record.index,
                            SkippedConfig(config, record.error)))
            continue
        if verify and record.plan is not None:
            from repro.verify import verify_plan
            v_report = verify_plan(record.plan)
            if not v_report.ok:
                summary = "; ".join(
                    f"{d.code} {d.message}" for d in v_report.errors[:3])
                if len(v_report.errors) > 3:
                    summary += f" (+{len(v_report.errors) - 3} more)"
                skipped.append((record.index,
                                SkippedConfig(config, f"verify: {summary}")))
                continue
        measured.append((record.index,
                         _measure(record, config, param_values, inputs,
                                  backend, n_threads, repeats, name)))

    report.results = [r for _, r in sorted(measured, key=lambda t: t[0])]
    report.skipped = [s for _, s in sorted(skipped, key=lambda t: t[0])]
    report.elapsed_s = time.perf_counter() - start

    if store == "rw" and report.results:
        from repro.schedule.store import StoredSchedule
        best = report.best(parallel=True)
        best_index = next(i for i, r in measured if r is best)
        info = infos.get(best_index)
        artifact = None
        if info is not None:
            artifact = {"key": info.key, "vectorize": True,
                        "instrument": profile and backend == "native"}
        sched_store.publish(StoredSchedule(
            pipeline=digest, fingerprint=fingerprint,
            options=best.config.options().to_dict(), hints=hints_doc,
            tune_result=best.to_dict(), artifact=artifact))
    return report
