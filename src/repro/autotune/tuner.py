"""Model-driven autotuning (paper Section 3.8, Figure 9).

The optimizer reduces the schedule space to tile sizes and the overlap
threshold; the autotuner exhaustively times that small space — seven tile
sizes per tiled dimension and three thresholds, i.e. 147 configurations
for the two-tilable-dimension pipelines of the paper — and reports every
configuration's single-thread and multi-thread time (the data behind
Figure 9's scatter plots) plus the best configuration.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.compiler.options import (
    OVERLAP_THRESHOLD_CHOICES, TILE_SIZE_CHOICES, CompileOptions,
)
from repro.compiler.plan import compile_plan


@dataclass(frozen=True)
class TuneConfig:
    """One point of the autotuning space."""

    tile_sizes: tuple[int, ...]
    overlap_threshold: float

    def options(self) -> CompileOptions:
        return CompileOptions.optimized(self.tile_sizes,
                                        self.overlap_threshold)

    def __str__(self) -> str:
        tiles = "x".join(map(str, self.tile_sizes))
        return f"tiles={tiles} othresh={self.overlap_threshold}"


@dataclass
class TuneResult:
    """Measured times for one configuration (Figure 9's data points)."""

    config: TuneConfig
    time_single_ms: float
    time_parallel_ms: float
    n_groups: int


@dataclass
class TuningReport:
    """All measurements from one autotuning run."""

    results: list[TuneResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def best(self, parallel: bool = True) -> TuneResult:
        """The fastest configuration (by parallel or single-thread time)."""
        if not self.results:
            raise ValueError("no configurations were measured")
        key = ((lambda r: r.time_parallel_ms) if parallel
               else (lambda r: r.time_single_ms))
        return min(self.results, key=key)

    def scatter(self) -> list[tuple[float, float]]:
        """(1-thread ms, n-thread ms) pairs — the Figure 9 axes."""
        return [(r.time_single_ms, r.time_parallel_ms)
                for r in self.results]


def default_space(n_dims: int,
                  tile_choices: Sequence[int] = TILE_SIZE_CHOICES,
                  thresholds: Sequence[float] = OVERLAP_THRESHOLD_CHOICES
                  ) -> list[TuneConfig]:
    """The paper's restricted space: |tile_choices|^n_dims * |thresholds|."""
    out = []
    for tiles in itertools.product(tile_choices, repeat=n_dims):
        for th in thresholds:
            out.append(TuneConfig(tiles, th))
    return out


def _time_call(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up (the paper discards the first run)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0


def autotune(outputs, estimates: Mapping, param_values: Mapping,
             inputs: Mapping, *,
             space: Iterable[TuneConfig] | None = None,
             n_dims: int = 2,
             backend: str = "native",
             n_threads: int = 4,
             repeats: int = 2,
             name: str = "tuned") -> TuningReport:
    """Time every configuration of the (restricted) space.

    ``backend`` is ``"native"`` (generated C, as the paper measures) or
    ``"interp"`` (NumPy interpreter, for environments without a C
    compiler).  Configurations whose compilation fails are skipped.
    """
    if space is None:
        space = default_space(n_dims)
    report = TuningReport()
    start = time.perf_counter()
    for i, config in enumerate(space):
        try:
            plan = compile_plan(outputs, estimates, config.options())
        except Exception:
            continue
        if backend == "native":
            from repro.codegen.build import build_native
            pipe = build_native(plan, f"{name}_{i}")

            def run():
                return pipe(param_values, inputs, n_threads=n_threads)

            def run_single():
                return pipe(param_values, inputs, n_threads=1)
        else:
            from repro.runtime.executor import execute_plan

            def run():
                return execute_plan(plan, param_values, inputs,
                                    n_threads=n_threads)

            def run_single():
                return execute_plan(plan, param_values, inputs, n_threads=1)

        single = _time_call(run_single, repeats)
        parallel = _time_call(run, repeats)
        report.results.append(TuneResult(config, single, parallel,
                                         len(plan.group_plans)))
    report.elapsed_s = time.perf_counter() - start
    return report
