"""Autotuning (paper Section 3.8): the model-restricted sweep and the
stochastic wide-space baseline used for the OpenTuner comparison."""

from repro.autotune.random_search import (
    RandomConfig, SearchReport, SearchResult, random_search, sample_config,
)
from repro.autotune.tuner import (
    TuneConfig, TuneResult, TuningReport, autotune, default_space,
)

__all__ = ["RandomConfig", "SearchReport", "SearchResult", "TuneConfig",
           "TuneResult", "TuningReport", "autotune", "default_space",
           "random_search", "sample_config"]
