"""Autotuning (paper Section 3.8): the model-restricted sweep and the
stochastic wide-space baseline used for the OpenTuner comparison.

Both sweeps share the process-pool compile farm in
:mod:`repro.autotune.farm`: pass ``n_workers > 1`` to compile
configurations concurrently while timing stays serialized."""

from repro.autotune.farm import (
    CompileRecord, CompileTask, compile_one, rebind_values,
    run_compile_farm,
)
from repro.autotune.random_search import (
    RandomConfig, SearchReport, SearchResult, random_search, sample_config,
)
from repro.autotune.tuner import (
    SkippedConfig, TuneConfig, TuneResult, TuningReport, autotune,
    default_space,
)

__all__ = ["CompileRecord", "CompileTask", "RandomConfig", "SearchReport",
           "SearchResult", "SkippedConfig", "TuneConfig", "TuneResult",
           "TuningReport", "autotune", "compile_one", "default_space",
           "random_search", "rebind_values", "run_compile_farm",
           "sample_config"]
