"""Synthetic input data generators (see :mod:`repro.data.synth`)."""

from repro.data.synth import bayer_raw, multifocus_pair, rgb_image, smooth_image

__all__ = ["bayer_raw", "multifocus_pair", "rgb_image", "smooth_image"]
