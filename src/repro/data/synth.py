"""Synthetic input generation (substitute for the paper's photographs).

The paper's experiments measure throughput on fixed-size images; content
does not affect the code paths except through data-dependent accesses
(LUTs, histograms), which synthetic data exercises just as well.  Each
generator returns float32/uint8/uint16 arrays shaped like the paper's
inputs: RGB photos, multi-focus pairs with masks for pyramid blending,
and Bayer-mosaic RAW frames for the camera pipeline.
"""

from __future__ import annotations

import numpy as np


def smooth_image(rows: int, cols: int, rng: np.random.Generator,
                 octaves: int = 4) -> np.ndarray:
    """A smooth random field in [0, 1] — photograph-like statistics."""
    out = np.zeros((rows, cols), dtype=np.float32)
    amplitude = 1.0
    for o in range(octaves):
        step = max(1, min(rows, cols) >> (octaves - o))
        coarse = rng.random((rows // step + 2, cols // step + 2))
        ix = np.arange(rows) / step
        iy = np.arange(cols) / step
        x0 = ix.astype(int)
        y0 = iy.astype(int)
        fx = (ix - x0)[:, None]
        fy = (iy - y0)[None, :]
        c00 = coarse[np.ix_(x0, y0)]
        c10 = coarse[np.ix_(x0 + 1, y0)]
        c01 = coarse[np.ix_(x0, y0 + 1)]
        c11 = coarse[np.ix_(x0 + 1, y0 + 1)]
        layer = (c00 * (1 - fx) * (1 - fy) + c10 * fx * (1 - fy)
                 + c01 * (1 - fx) * fy + c11 * fx * fy)
        out += (amplitude * layer).astype(np.float32)
        amplitude *= 0.5
    out -= out.min()
    peak = out.max()
    if peak > 0:
        out /= peak
    return out


def rgb_image(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """A (3, rows, cols) float32 RGB image in [0, 1]."""
    return np.stack([smooth_image(rows, cols, rng) for _ in range(3)])


def multifocus_pair(rows: int, cols: int, rng: np.random.Generator
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two images sharp in complementary halves, plus the blend mask.

    Mirrors the paper's pyramid-blending inputs (Figure 8): each input has
    one half out of focus; the mask selects the sharp half.
    """
    sharp = rgb_image(rows, cols, rng)
    blurred = sharp.copy()
    blurred[:, :, 1:-1] = (blurred[:, :, :-2] + blurred[:, :, 1:-1]
                           + blurred[:, :, 2:]) / 3.0
    left = sharp.copy()
    left[:, :, cols // 2:] = blurred[:, :, cols // 2:]
    right = blurred.copy()
    right[:, :, cols // 2:] = sharp[:, :, cols // 2:]
    mask = np.zeros((rows, cols), dtype=np.float32)
    mask[:, :cols // 2] = 1.0
    return left, right, mask


def bayer_raw(rows: int, cols: int, rng: np.random.Generator,
              bits: int = 10) -> np.ndarray:
    """A (rows, cols) uint16 GRBG Bayer mosaic, as a camera sensor emits."""
    rgb = rgb_image(rows, cols, rng)
    scale = float((1 << bits) - 1)
    raw = np.zeros((rows, cols), dtype=np.float32)
    raw[0::2, 0::2] = rgb[1, 0::2, 0::2]  # G on red rows
    raw[0::2, 1::2] = rgb[0, 0::2, 1::2]  # R
    raw[1::2, 0::2] = rgb[2, 1::2, 0::2]  # B
    raw[1::2, 1::2] = rgb[1, 1::2, 1::2]  # G on blue rows
    noisy = raw + rng.normal(0, 0.003, raw.shape).astype(np.float32)
    return np.clip(noisy * scale, 0, scale).astype(np.uint16)
