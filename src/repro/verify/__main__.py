"""Command-line plan verifier: ``python -m repro.verify [apps...]``.

Compiles each named benchmark application (or all of them with
``--all``), runs the full static verifier over the resulting plan and
prints the report.  ``--strict`` exits non-zero when any error-severity
diagnostic fires; ``--json DIR`` writes one ``<app>.json`` report per
app (or ``--json -`` streams a single JSON array to stdout) for CI
artifact collection.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import ALL_APPS
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.verify import code_table, verify_plan
from repro.verify.diagnostics import IGNORE, SEVERITY_ORDER


def _parse_overrides(pairs: list[str]) -> dict[str, str]:
    overrides = {}
    for pair in pairs:
        code, sep, severity = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"--severity expects CODE=LEVEL, got {pair!r}")
        if severity not in (*SEVERITY_ORDER, IGNORE):
            raise SystemExit(
                f"unknown severity {severity!r} in {pair!r} (expected "
                f"{', '.join((*SEVERITY_ORDER, IGNORE))})")
        overrides[code.strip()] = severity
    return overrides


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="statically verify compiled pipeline plans")
    parser.add_argument("apps", nargs="*", metavar="APP",
                        help=f"benchmark name(s): {', '.join(ALL_APPS)}")
    parser.add_argument("--all", action="store_true",
                        help="verify every benchmark application")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any error diagnostic fires")
    parser.add_argument("--json", metavar="DIR|-", default=None,
                        help="write per-app JSON reports into DIR "
                             "('-' prints a JSON array to stdout)")
    parser.add_argument("--narrow", action="store_true",
                        help="compile with precision narrowing enabled "
                             "so the RV5xx checks audit real narrowing "
                             "decisions")
    parser.add_argument("--lint-c", action="store_true",
                        help="also generate instrumented C and lint it "
                             "for un-atomic shared writes (slower)")
    parser.add_argument("--severity", action="append", default=[],
                        metavar="CODE=LEVEL",
                        help="override a code's severity (level: info, "
                             "warning, error, ignore); repeatable")
    parser.add_argument("--size", type=int, default=None, metavar="N",
                        help="compile under small estimates of size N "
                             "instead of the paper-scale defaults")
    parser.add_argument("--codes", action="store_true",
                        help="print the diagnostic code table and exit")
    args = parser.parse_args(argv)

    if args.codes:
        print(code_table())
        return 0

    names = list(ALL_APPS) if args.all else args.apps
    if not names:
        parser.error("name at least one app (or pass --all)")
    unknown = [n for n in names if n not in ALL_APPS]
    if unknown:
        parser.error(f"unknown app(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(ALL_APPS)})")
    overrides = _parse_overrides(args.severity)

    reports = []
    failed = False
    for name in names:
        spec = ALL_APPS[name]()
        estimates = (spec.small_estimates(args.size) if args.size
                     else spec.default_estimates)
        options = CompileOptions(narrow=args.narrow)
        plan = compile_plan(spec.outputs, estimates, options)
        report = verify_plan(plan, lint_c=args.lint_c,
                             severity_overrides=overrides, name=name)
        reports.append(report)
        if not report.ok:
            failed = True
        print(report.render())

    if args.json == "-":
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    elif args.json:
        out = Path(args.json)
        out.mkdir(parents=True, exist_ok=True)
        for report in reports:
            report.save(out / f"{report.pipeline}.json")
        print(f"wrote {len(reports)} report(s) to {out}/")

    return 1 if (args.strict and failed) else 0


if __name__ == "__main__":
    sys.exit(main())
