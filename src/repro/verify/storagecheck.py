"""Storage coverage checks (``RV2xx``).

Proves, for a sample of concrete tiles under the compile-time estimates,
that the storage mapping actually covers what the backends touch:

* ``RV201`` — each scratchpad's static allocation (the parametric box the
  C generator sizes at codegen time) contains the stage's per-tile
  evaluation region;
* ``RV202`` — every in-group read lands inside the producer's per-tile
  evaluation region, i.e. reads are covered by writes;
* ``RV203`` — no value consumed outside its group (or a pipeline output)
  is mapped to tile-local scratch.

The per-tile regions are recomputed here from the halos and access forms
with exact rational arithmetic (:mod:`repro.poly` primitives) — the same
quantities the generated C derives with ``cdiv``/``fdiv`` — independent
of ``repro.compiler.tiling.compute_tile_regions``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.compiler.storage import SCRATCH
from repro.poly.interval import IntInterval, evaluate_access
from repro.verify.diagnostics import Emitter
from repro.verify.legality import PlanFacts

#: (stage, group_plan) -> static per-dimension scratch extents
ScratchSizeFn = Callable[[object, GroupPlan], tuple[int, ...]]


def _default_scratch_sizes(plan: PipelinePlan) -> ScratchSizeFn:
    """The C generator's own static sizing — the claim under test."""
    from repro.codegen.cgen import CGenerator
    gen = CGenerator(plan)
    return gen._scratch_size


def sample_tiles(space: tuple[IntInterval, ...],
                 tile_sizes: tuple[int, ...]) -> list[tuple[IntInterval, ...]]:
    """First / middle / last tile of the group's tile space (diagonal)."""
    picks: list[list[int]] = []
    for d, ivl in enumerate(space):
        tau = tile_sizes[d]
        first, last = ivl.lo // tau, ivl.hi // tau
        mid = (first + last) // 2
        picks.append(sorted({first, mid, last}))
    n = max(len(p) for p in picks)
    tiles = []
    for k in range(n):
        box = []
        for d, p in enumerate(picks):
            t = p[min(k, len(p) - 1)]
            tau = tile_sizes[d]
            box.append(IntInterval(t * tau, (t + 1) * tau - 1))
        tiles.append(tuple(box))
    return tiles


def _halo_region(plan: PipelinePlan, gp: GroupPlan, stage,
                 tile_box: tuple[IntInterval, ...],
                 dom: tuple[IntInterval, ...]
                 ) -> tuple[IntInterval, ...] | None:
    transforms = gp.transforms
    assert transforms is not None
    t = transforms[stage]
    halo = gp.group.halos[stage]
    dims = []
    for d in range(plan.ir[stage].ndim):
        g = t.dim_map[d]
        scale = t.scales[d]
        left, right = halo.left[g], halo.right[g]
        # ceil((t_lo - left) / scale), floor((t_hi + right) / scale) in
        # pure integer arithmetic (all quantities are exact rationals).
        num = (tile_box[g].lo * left.denominator - left.numerator) \
            * scale.denominator
        den = left.denominator * scale.numerator
        lo = -((-num) // den)
        num = (tile_box[g].hi * right.denominator + right.numerator) \
            * scale.denominator
        den = right.denominator * scale.numerator
        hi = num // den
        lo = max(lo, dom[d].lo)
        hi = min(hi, dom[d].hi)
        if lo > hi:
            return None
        dims.append(IntInterval(lo, hi))
    return tuple(dims)


def _owned_region(plan: PipelinePlan, gp: GroupPlan, stage,
                  tile_box: tuple[IntInterval, ...],
                  dom: tuple[IntInterval, ...]
                  ) -> tuple[IntInterval, ...] | None:
    region = _halo_region(plan, gp, stage, tile_box, dom)
    if region is None:
        return None
    transforms = gp.transforms
    assert transforms is not None
    t = transforms[stage]
    dims = []
    for d in range(plan.ir[stage].ndim):
        g = t.dim_map[d]
        scale = t.scales[d]
        sn, sd = scale.numerator, scale.denominator
        lo = max(region[d].lo, -((-tile_box[g].lo * sd) // sn))
        hi = min(region[d].hi, (tile_box[g].hi * sd) // sn)
        if lo > hi:
            return None
        dims.append(IntInterval(lo, hi))
    return tuple(dims)


def halo_region(plan: PipelinePlan, gp: GroupPlan, stage,
                tile_box: tuple[IntInterval, ...],
                env: Mapping[Hashable, int]
                ) -> tuple[IntInterval, ...] | None:
    """The halo-extended region the C backend evaluates for one tile.

    Per stage dimension ``d`` on group dim ``g`` with scale ``s``:
    ``[max(dom_lo, ceil((t_lo - left_g) / s)),
       min(dom_hi, floor((t_hi + right_g) / s))]`` — ``None`` when empty.
    """
    dom = plan.ir[stage].domain.concretize(env)
    if dom is None:
        return None
    return _halo_region(plan, gp, stage, tile_box, dom)


def owned_region(plan: PipelinePlan, gp: GroupPlan, stage,
                 tile_box: tuple[IntInterval, ...],
                 env: Mapping[Hashable, int]
                 ) -> tuple[IntInterval, ...] | None:
    """The sub-region a tile owns (writes to the full buffer)."""
    dom = plan.ir[stage].domain.concretize(env)
    if dom is None:
        return None
    return _owned_region(plan, gp, stage, tile_box, dom)


def _read_buckets(plan: PipelinePlan, gp: GroupPlan, members: set):
    """Hull buckets of in-group reads, built once per group.

    All taps of one access sharing (variable, coefficient, divisor) per
    producer dimension differ only in their constant; the read hull over
    the bucket is exactly [eval(min-const).lo, eval(max-const).hi]
    (evaluation is monotone in the constant).  This keeps RV202 at two
    access evaluations per bucket per tile instead of one per tap.
    """
    buckets: list = []
    counted = 0
    member_ids = {id(s) for s in members}
    for consumer in gp.ordered_stages:
        consumer_ir = plan.ir[consumer]
        per_pair: dict = {}
        for access in consumer_ir.accesses:
            producer = access.producer
            if id(producer) not in member_ids or producer is consumer:
                continue
            forms = access.forms
            if None in forms:  # non-affine access, nothing to prove here
                continue
            counted += 1
            pair = per_pair.get(id(producer))
            if pair is None:
                pair = per_pair[id(producer)] = (producer, {})
            for d, form in enumerate(forms):
                terms = form.aff.terms
                if len(terms) == 1:  # the overwhelmingly common shape
                    s0, c0 = terms[0]
                    sig = (d, form.divisor, id(s0),
                           c0.numerator, c0.denominator)
                else:
                    sig = (d, form.divisor,
                           tuple((id(s), c.numerator, c.denominator)
                                 for s, c in terms))
                entry = pair[1].get(sig)
                b = form.aff.const
                bn, bd = b.numerator, b.denominator
                if entry is None:
                    pair[1][sig] = [d, form, form, bn, bd, bn, bd]
                else:
                    # cross-multiplied integer compares of the constants
                    if bn * entry[4] < entry[3] * bd:
                        entry[1], entry[3], entry[4] = form, bn, bd
                    if bn * entry[6] > entry[5] * bd:
                        entry[2], entry[5], entry[6] = form, bn, bd
        for producer, sigs in per_pair.values():
            for d, fmin, fmax, *_consts in sigs.values():
                buckets.append((consumer, producer, d, fmin, fmax))
    return buckets, counted


def storage_diagnostics(plan: PipelinePlan, emit: Emitter,
                        checked: dict[str, int],
                        env: Mapping[Hashable, int] | None = None,
                        scratch_sizes: ScratchSizeFn | None = None,
                        facts: PlanFacts | None = None) -> None:
    """Run the ``RV2xx`` checks; ``scratch_sizes`` is injectable so the
    mutation tests can model an under-allocating code generator."""
    env = dict(env if env is not None else plan.estimates)
    if facts is None:
        facts = PlanFacts(plan, env)
    sizes_fn: ScratchSizeFn | None = None

    for stage, decision in plan.storage.items():
        if decision.kind != SCRATCH:
            continue
        group = plan.grouping.group_of(stage)
        members = set(group.stages)
        if plan.ir[stage].is_output:
            emit.emit("RV203",
                      f"pipeline output {stage.name} is mapped to tile-local "
                      "scratch; its values would be discarded",
                      stage=stage.name,
                      hint="outputs must live in full buffers")
        escapees = [c.name for c in plan.ir.graph.consumers(stage)
                    if c not in members]
        if escapees:
            emit.emit("RV203",
                      f"{stage.name} is scratch-mapped but consumed outside "
                      f"its group by {', '.join(sorted(escapees))}",
                      stage=stage.name, related=tuple(sorted(escapees)),
                      hint="a tile-local scratchpad is gone once the tile "
                           "finishes; the consumer would read another "
                           "tile's data or garbage")

    for gi, gp in enumerate(plan.group_plans):
        if not gp.is_tiled:
            continue
        if any(s not in gp.group.halos or s not in gp.transforms
               for s in gp.ordered_stages):
            continue  # RV004 already reported by the legality pass
        space = facts.tile_space(gp)
        if space is None:
            continue
        members = set(gp.ordered_stages)
        liveouts = facts.liveouts(gp)
        # stages evaluated into a (halo-sized) scratchpad by the C backend
        liveout_local = {s for s in liveouts
                         if any(c in members
                                for c in plan.ir.graph.consumers(s))}
        scratch_like = {s for s in gp.ordered_stages
                        if plan.storage[s].kind == SCRATCH
                        or s in liveout_local}
        doms = {s: facts.dom(s) for s in gp.ordered_stages}
        if any(doms[s] is None for s in gp.ordered_stages):
            continue
        buckets, n_accesses = _read_buckets(plan, gp, members)
        # static allocations are tile-independent; size them once
        allocs: dict = {}
        for stage in gp.ordered_stages:
            if stage in scratch_like:
                if sizes_fn is None:
                    sizes_fn = scratch_sizes or _default_scratch_sizes(plan)
                allocs[stage] = sizes_fn(stage, gp)

        for tile_box in sample_tiles(space, gp.tile_sizes):
            checked["tiles"] = checked.get("tiles", 0) + 1
            checked["accesses"] = checked.get("accesses", 0) + n_accesses
            evaluated: dict = {}
            for stage in gp.ordered_stages:
                if stage in scratch_like:
                    evaluated[stage] = _halo_region(plan, gp, stage,
                                                    tile_box, doms[stage])
                else:
                    evaluated[stage] = _owned_region(plan, gp, stage,
                                                     tile_box, doms[stage])

            # RV201: static allocation covers the evaluation region.
            for stage, alloc in allocs.items():
                region = evaluated.get(stage)
                if region is None:
                    continue
                for d, ivl in enumerate(region):
                    checked["scratch_dims"] = \
                        checked.get("scratch_dims", 0) + 1
                    if ivl.size > alloc[d]:
                        emit.emit(
                            "RV201",
                            f"scratchpad of {stage.name} allocates "
                            f"{alloc[d]} cells along dim {d} but tile "
                            f"{tile_box} needs {ivl.size} ({ivl})",
                            stage=stage.name, group=gi,
                            hint="the static size must cover tile + halo "
                                 "after inverse scaling")

            # RV202: every in-group read is covered by producer writes.
            read_envs: dict = {}
            for consumer, producer, d, fmin, fmax in buckets:
                consumer_region = evaluated.get(consumer)
                if consumer_region is None:
                    continue
                read_env = read_envs.get(consumer)
                if read_env is None:
                    read_env = dict(env)
                    read_env.update(zip(plan.ir[consumer].variables,
                                        consumer_region))
                    read_envs[consumer] = read_env
                try:
                    lo_ivl = evaluate_access(fmin, read_env)
                    hi_ivl = (lo_ivl if fmax is fmin
                              else evaluate_access(fmax, read_env))
                except KeyError:
                    continue
                needed = IntInterval(lo_ivl.lo, hi_ivl.hi)
                needed = needed.intersect(doms[producer][d])
                if needed is None:
                    continue
                written = evaluated.get(producer)
                have = None if written is None else written[d]
                if have is None or not have.contains(needed):
                    emit.emit(
                        "RV202",
                        f"{consumer.name} reads {producer.name} "
                        f"dim {d} over {needed} in tile "
                        f"{tile_box}, but the producer only computes "
                        f"{have if have is not None else 'nothing'}",
                        stage=consumer.name,
                        related=(producer.name,), group=gi,
                        hint="the producer's halo/region is too "
                             "small for this access")
