"""DSL lint pass (``RV4xx``) over a :class:`PipelineIR`.

Flags constructs that are legal but usually wrong, before any schedule is
even considered:

* ``RV401`` — a stage domain or case box that is empty under the
  parameter estimates (dead code that silently computes nothing);
* ``RV402`` — non-affine accesses, which fall outside the polyhedral
  model and force conservative treatment everywhere downstream;
* ``RV403`` — name shadowing between parameters, variables and stages,
  which makes generated code and diagnostics ambiguous;
* ``RV404`` — overlapping pure-bounds case conditions, where the result
  depends on case evaluation order;
* ``RV405`` — a float-valued expression assigned to a non-float stage
  without an explicit ``Cast`` (implicit narrowing truncates).  The
  value-range analysis vouches for expressions that are provably
  integral and in-range (e.g. ``Floor``/``Ceil`` results): truncating
  those cannot change any value, so they do not warn.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.analysis.ranges import RangeAnalysis
from repro.codegen.cgen import _is_float_expr
from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import Cast
from repro.pipeline.ir import PipelineIR
from repro.verify.diagnostics import Emitter


def _stage_parameters(stage_ir) -> set[Parameter]:
    """Every Parameter appearing in a stage's bounds or expressions."""
    params: set[Parameter] = set()
    for bounds in stage_ir.domain.bounds:
        for aff in (*bounds.lowers, *bounds.uppers):
            params.update(aff.parameters())
    stack = []
    if stage_ir.accumulate is not None:
        stack.append(stage_ir.accumulate.value)
        stack.extend(stage_ir.accumulate.target.args)
    for case in stage_ir.cases:
        stack.append(case.expression)
    # inlined pre-order walk (the generator protocol is measurable here)
    while stack:
        node = stack.pop()
        if isinstance(node, Parameter):
            params.add(node)
        stack.extend(node.children())
    return params


def _boxes_intersect(a, b) -> bool:
    return all(x.intersect(y) is not None for x, y in zip(a, b))


def lint_diagnostics(ir: PipelineIR, emit: Emitter,
                     checked: dict[str, int],
                     env: Mapping[Hashable, int] | None = None,
                     facts=None) -> None:
    """Run the ``RV4xx`` checks over every stage of the IR."""
    env = dict(env or {})

    # RV403: name collisions across namespaces.  Duplicate *stage* names
    # are rejected at graph construction; here we care about parameters
    # and loop variables aliasing each other or a stage.
    stage_names = {s.name for s in ir.graph.stages}
    stage_names.update(img.name for img in ir.graph.inputs)
    seen_params: dict[str, Parameter] = {}
    reported: set[tuple[str, str]] = set()
    ordered = list(ir.ordered())
    for stage_ir in ordered:
        checked["stages"] = checked.get("stages", 0) + 1
        for var in stage_ir.variables:
            if var.name in stage_names and \
                    ("var-stage", var.name) not in reported:
                reported.add(("var-stage", var.name))
                emit.emit("RV403",
                          f"variable {var.name!r} of stage "
                          f"{stage_ir.name} shadows a stage/image of the "
                          "same name",
                          stage=stage_ir.name,
                          hint="rename the variable; generated loop "
                               "indices and buffer names would collide")
        for param in _stage_parameters(stage_ir):
            prior = seen_params.setdefault(param.name, param)
            if prior is not param and \
                    ("param-param", param.name) not in reported:
                reported.add(("param-param", param.name))
                emit.emit("RV403",
                          f"two distinct parameters are both named "
                          f"{param.name!r}",
                          stage=stage_ir.name,
                          hint="they bind independently at execution "
                               "time; give them distinct names")
            if any(param.name == v.name for v in stage_ir.variables) and \
                    ("param-var", param.name) not in reported:
                reported.add(("param-var", param.name))
                emit.emit("RV403",
                          f"parameter {param.name!r} shadows a domain "
                          f"variable of stage {stage_ir.name}",
                          stage=stage_ir.name)

    ranges: RangeAnalysis | None = None  # built lazily for RV405
    for stage_ir in ordered:
        name = stage_ir.name

        # RV401: dead stage / dead case under the estimates.
        if env:
            dom = facts.dom(stage_ir.stage) if facts is not None \
                else stage_ir.domain.concretize(env)
            if dom is None:
                emit.emit("RV401",
                          f"stage {name} has an empty domain under the "
                          f"estimates; it computes nothing",
                          stage=name,
                          hint="check the bound expressions (or the "
                               "estimates) for an inverted interval")
            elif len(stage_ir.cases) > 1:
                for i, case in enumerate(stage_ir.cases):
                    checked["cases"] = checked.get("cases", 0) + 1
                    if case.box.concretize(env) is None:
                        emit.emit("RV401",
                                  f"case {i} of stage {name} is dead: its "
                                  "condition box is empty under the "
                                  "estimates",
                                  stage=name,
                                  hint="a boundary condition that can "
                                       "never hold usually means an "
                                       "off-by-one in the guard")

        # RV402: non-affine accesses.
        for access in stage_ir.accesses:
            checked["accesses"] = checked.get("accesses", 0) + 1
            if not access.is_affine:
                bad = [d for d, f in enumerate(access.forms) if f is None]
                emit.emit("RV402",
                          f"{name} accesses "
                          f"{access.producer.name} with non-affine "
                          f"indices (dims {', '.join(map(str, bad))})",
                          stage=name, related=(access.producer.name,),
                          hint="the access is excluded from dependence "
                               "analysis, bounds checking and grouping")

        # RV404: overlapping pure-bounds cases (order-dependent result).
        if env and len(stage_ir.cases) > 1:
            pure = [(i, case.box.concretize(env))
                    for i, case in enumerate(stage_ir.cases)
                    if case.split.is_pure_bounds]
            pure = [(i, box) for i, box in pure if box is not None]
            for a in range(len(pure)):
                for b in range(a + 1, len(pure)):
                    ia, box_a = pure[a]
                    ib, box_b = pure[b]
                    if _boxes_intersect(box_a, box_b):
                        emit.emit(
                            "RV404",
                            f"cases {ia} and {ib} of stage {name} overlap; "
                            "the earlier case wins wherever both hold",
                            stage=name,
                            hint="make the guards disjoint (or rely on "
                                 "ordering deliberately and document it)")

        # RV405: implicit float -> integer narrowing.  Only warn when
        # the truncation can actually change a value: an expression the
        # range analysis proves integral and in-range for the stage's
        # dtype is stored unchanged, Cast or no Cast.
        if not stage_ir.stage.dtype.is_float:
            candidates = [(c.expression, c) for c in stage_ir.cases]
            if stage_ir.accumulate is not None:
                # in-flight partials are unbounded by the final range;
                # no proof of safety is available for reductions
                candidates.append((stage_ir.accumulate.value, None))
            for expr, case in candidates:
                if isinstance(expr, Cast) or not _is_float_expr(expr):
                    continue
                if env and case is not None:
                    if ranges is None:
                        ranges = RangeAnalysis.run(ir, env)
                    case_env = ranges._case_env(stage_ir, case)
                    if case_env is not None:
                        r = ranges.expr_range(expr, case_env)
                        if r.integral and r.fits(stage_ir.stage.dtype):
                            continue  # provably value-preserving
                emit.emit(
                    "RV405",
                    f"stage {name} has dtype "
                    f"{stage_ir.stage.dtype.name} but computes a "
                    "floating-point expression without an explicit "
                    "Cast",
                    stage=name,
                    hint="the backends truncate implicitly; wrap the "
                         "expression in Cast(dtype, ...) to make the "
                         "narrowing visible")
                break
