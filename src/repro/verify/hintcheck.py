"""RV6xx: audit of scheduling hints against the final plan.

The grouping loop *consumes* :class:`~repro.schedule.ScheduleHints`; this
checker re-derives, from the finished plan alone, whether every directive
was sound and actually honoured — so a compiler bug that silently drops
or violates a hint (or a stale hint file naming stages that no longer
exist) cannot certify itself.

Codes:

* ``RV601`` — a hint names a stage the plan does not contain
* ``RV602`` — hints contradict each other (force vs forbid, inline vs
  force, conflicting tile overrides within one final group)
* ``RV603`` — a ``force_group`` set did not end up co-located
* ``RV604`` — a ``forbid_group`` pair shares a final group
* ``RV605`` — a ``tile_override`` was not applied to its group
* ``RV606`` — an ``inline`` hint was not applied

The check is a no-op (no counters) on unhinted plans.
"""

from __future__ import annotations

from repro.compiler.plan import PipelinePlan
from repro.verify.diagnostics import Emitter


def hint_diagnostics(plan: PipelinePlan, emit: Emitter,
                     checked: dict[str, int]) -> None:
    hints = plan.hints
    if hints is None or hints.is_empty():
        return

    stage_names = {s.name for s in plan.ir.stages}
    inlined = set(plan.inlined_names)
    known = stage_names | inlined

    n_directives = (len(hints.force_group) + len(hints.forbid_group)
                    + len(hints.tile_override) + len(hints.inline))
    checked["hint_directives"] = n_directives
    checked["hint_stages"] = len(hints.stage_names())

    # RV601: stale names ---------------------------------------------------
    for name in sorted(hints.stage_names() - known):
        emit.emit("RV601",
                  f"hint references stage {name!r}, which the pipeline "
                  f"does not contain",
                  stage=name,
                  hint="the hint set is stale for this pipeline: drop "
                       "the directive or update it to current stage "
                       "names")

    # RV602: internal contradictions --------------------------------------
    for problem in hints.contradictions():
        emit.emit("RV602", problem,
                  hint="contradictory directives cannot all be honoured; "
                       "remove one side")

    # membership: stage name -> group index, from the final plan only
    group_of: dict[str, int] = {}
    for i, gp in enumerate(plan.group_plans):
        for stage in gp.ordered_stages:
            group_of[stage.name] = i

    # RV603: unsatisfied force_group --------------------------------------
    for force in hints.force_group:
        members = sorted(force & known)
        if len(members) < 2:
            continue  # RV601 already covers missing names
        folded = sorted(force & inlined)
        if folded:
            emit.emit("RV603",
                      f"force_group {sorted(force)} cannot be satisfied: "
                      f"stage(s) {folded} were inlined away",
                      stage=folded[0], related=tuple(members),
                      hint="an inlined stage has no group; drop it from "
                           "the force set or suppress its inlining")
            continue
        indices = {group_of[name] for name in members if name in group_of}
        if len(indices) > 1:
            emit.emit("RV603",
                      f"force_group {sorted(force)} spans "
                      f"{len(indices)} final groups "
                      f"{sorted(indices)} — the forced merge was "
                      f"rejected (illegal or contradicted)",
                      stage=members[0], related=tuple(members),
                      group=min(indices),
                      hint="see explain(): a hint-forced merge still "
                           "needs legal alignment/scaling and constant "
                           "halos")

    # RV604: violated forbid_group ----------------------------------------
    for forbid in hints.forbid_group:
        by_group: dict[int, list[str]] = {}
        for name in sorted(forbid & stage_names):
            if name in group_of:
                by_group.setdefault(group_of[name], []).append(name)
        for gi, names in sorted(by_group.items()):
            if len(names) >= 2:
                emit.emit("RV604",
                          f"forbid_group {sorted(forbid)} violated: "
                          f"stages {names} share final group {gi}",
                          stage=names[0], related=tuple(names), group=gi,
                          hint="the grouping loop must reject merges "
                               "co-locating forbidden stages; this plan "
                               "was not produced under these hints")

    # RV605: unapplied tile overrides -------------------------------------
    for name, sizes in hints.tile_override:
        if name not in group_of:
            continue  # stale (RV601) or inlined (no group to tile)
        gi = group_of[name]
        gp = plan.group_plans[gi]
        ndim = len(gp.tile_sizes)
        if ndim == 0:
            emit.emit("RV605",
                      f"tile_override {name}:"
                      f"{'x'.join(str(s) for s in sizes)} targets an "
                      f"untiled group {gi}",
                      stage=name, group=gi,
                      hint="untiled groups (accumulators, "
                           "self-referential stages, tile=False) have "
                           "no tile sizes to override")
            continue
        expected = tuple(sizes[d % len(sizes)] for d in range(ndim))
        if gp.tile_sizes != expected:
            emit.emit("RV605",
                      f"tile_override {name}:"
                      f"{'x'.join(str(s) for s in sizes)} not applied: "
                      f"group {gi} is tiled "
                      f"{'x'.join(str(t) for t in gp.tile_sizes)}",
                      stage=name, group=gi,
                      hint="conflicting overrides within one group are "
                           "left unapplied; give the group's stages one "
                           "consistent override")

    # RV606: unapplied inline hints ---------------------------------------
    for name in sorted(hints.inline):
        if name in inlined:
            continue
        if name not in stage_names:
            continue  # RV601 already covers unknown names
        emit.emit("RV606",
                  f"inline hint for stage {name!r} was not applied",
                  stage=name,
                  hint="only single-case point-wise non-output stages "
                       "whose case region covers every consumer access "
                       "can be inlined; the stage fails those criteria")
