"""Static plan verification and DSL lint for compiled pipelines.

The verifier re-derives — independently of the compiler phases that made
the decisions — the facts a :class:`~repro.compiler.plan.PipelinePlan`
assumes: schedule legality under overlapped tiling (``RV0xx``), static
bounds (``RV1xx``), storage coverage (``RV2xx``), parallel-race freedom
(``RV3xx``) and DSL hygiene (``RV4xx``).  Entry points:

* :func:`verify_plan` / :func:`verify_or_raise` on a compiled plan,
* ``CompiledPipeline.verify()`` on the user-facing API object,
* ``compile_plan(..., check="warn"|"strict")`` inside the middle end,
* ``python -m repro.verify <app>`` from the command line.
"""

from repro.verify.core import CHECKS, verify_or_raise, verify_plan
from repro.verify.diagnostics import (
    CODES, Diagnostic, VerifyError, VerifyReport, code_table, severity_of,
)
from repro.verify.races import lint_generated_c

__all__ = [
    "CHECKS", "CODES", "Diagnostic", "VerifyError", "VerifyReport",
    "code_table", "lint_generated_c", "severity_of", "verify_or_raise",
    "verify_plan",
]
