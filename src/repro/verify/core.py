"""The verification driver: run every checker over a compiled plan.

:func:`verify_plan` is the single entry point the API, the autotuner and
the CLI all use.  It is intentionally *post hoc*: it receives a finished
:class:`~repro.compiler.plan.PipelinePlan` and re-derives, from the raw
IR and :mod:`repro.poly` primitives, the facts the plan's schedule and
storage mapping silently assume — so a bug in grouping, alignment,
tiling or storage cannot certify itself.
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, Mapping

from repro.compiler.plan import PipelinePlan
from repro.pipeline.boundscheck import collect_bounds_violations
from repro.verify.diagnostics import Emitter, VerifyError, VerifyReport
from repro.verify.hintcheck import hint_diagnostics
from repro.verify.legality import PlanFacts, legality_diagnostics
from repro.verify.lint import lint_diagnostics
from repro.verify.races import lint_c_source, race_diagnostics
from repro.verify.rangecheck import NarrowScratchBytesFn, range_diagnostics
from repro.verify.storagecheck import ScratchSizeFn, storage_diagnostics

#: the default checker set, in report order
CHECKS = ("legality", "bounds", "storage", "races", "lint", "ranges",
          "hints")


def _bounds_check(plan: PipelinePlan, emit: Emitter,
                  checked: dict[str, int],
                  env: Mapping[Hashable, int]) -> None:
    """Fold static bounds violations into the report as ``RV101``."""
    violations = collect_bounds_violations(plan.ir, dict(env))
    checked["bounds_accesses"] = sum(
        len(s.accesses) for s in plan.ir.ordered())
    for v in violations:
        emit.emit("RV101", str(v), stage=v.consumer,
                  related=(v.producer,),
                  hint="shrink the access or widen the producer domain; "
                       "the backends would read unallocated memory")


def verify_plan(plan: PipelinePlan, *,
                param_env: Mapping[Hashable, int] | None = None,
                checks: tuple[str, ...] | None = None,
                lint_c: bool = False,
                severity_overrides: Mapping[str, str] | None = None,
                scratch_sizes: ScratchSizeFn | None = None,
                narrow_scratch_bytes: NarrowScratchBytesFn | None = None,
                name: str | None = None) -> VerifyReport:
    """Statically verify a compiled plan; never raises on findings.

    ``param_env`` defaults to the plan's compile-time estimates.
    ``checks`` selects a subset of :data:`CHECKS`.  ``lint_c`` (off by
    default, it costs a codegen run) additionally generates the
    instrumented C and lints it for un-atomic shared writes.
    ``scratch_sizes`` and ``narrow_scratch_bytes`` override the
    scratchpad sizing claims under test (used by the mutation tests to
    model a broken code generator).
    """
    env = dict(param_env if param_env is not None else plan.estimates)
    selected = CHECKS if checks is None else tuple(checks)
    unknown = set(selected) - set(CHECKS)
    if unknown:
        raise ValueError(f"unknown verify checks: {sorted(unknown)}")
    if name is None:
        name = "+".join(sorted(o.name for o in plan.ir.graph.outputs))

    start = time.perf_counter()
    emit = Emitter(severity_overrides)
    checked: dict[str, int] = {}
    # facts the checkers derive independently of the compiler but share
    # with each other (concretized domains, tile spaces, live-out sets)
    facts = PlanFacts(plan, env)

    runners: dict[str, Callable[[], None]] = {
        "legality": lambda: legality_diagnostics(plan, emit, checked,
                                                 facts=facts),
        "bounds": lambda: _bounds_check(plan, emit, checked, env),
        "storage": lambda: storage_diagnostics(
            plan, emit, checked, env=env, scratch_sizes=scratch_sizes,
            facts=facts),
        "races": lambda: race_diagnostics(plan, emit, checked, env=env,
                                          facts=facts),
        "lint": lambda: lint_diagnostics(plan.ir, emit, checked, env=env,
                                         facts=facts),
        "ranges": lambda: range_diagnostics(
            plan, emit, checked, env=env,
            narrow_scratch_bytes=narrow_scratch_bytes, facts=facts),
        "hints": lambda: hint_diagnostics(plan, emit, checked),
    }
    for check in CHECKS:
        if check in selected:
            runners[check]()

    if lint_c:
        from repro.codegen.cgen import generate_c
        source = generate_c(plan, instrument=True)
        lint_c_source(source, emit, checked)

    return VerifyReport(
        pipeline=name,
        diagnostics=emit.diagnostics,
        checked=checked,
        elapsed_s=time.perf_counter() - start,
    )


def verify_or_raise(plan: PipelinePlan, **kwargs) -> VerifyReport:
    """Like :func:`verify_plan` but raises :class:`VerifyError` on errors."""
    report = verify_plan(plan, **kwargs)
    if not report.ok:
        raise VerifyError(report)
    return report
