"""Parallel race detection (``RV3xx``).

The inter-tile loop of every tiled group runs under ``#pragma omp for``;
its legality rests on two facts this module proves independently:

* tiles *partition* each live-out's index space — with ownership defined
  by rational containment (``scale * x`` inside the tile's group range),
  adjacent tiles must neither own the same cell (``RV301``, a write
  race) nor leave an in-domain cell unowned (``RV303``, a cell the
  parallel loop never writes);
* shared mutable state in the generated C (the ``static`` stats
  accumulators of ``instrument`` mode) is only written under
  ``#pragma omp atomic`` inside parallel regions (``RV302``) —
  :func:`lint_generated_c` scans the emitted source directly.
"""

from __future__ import annotations

import re
from typing import Hashable, Mapping

from repro.compiler.plan import PipelinePlan
from repro.verify.diagnostics import Diagnostic, Emitter
from repro.verify.legality import PlanFacts

#: boundaries examined per stage dimension (first few, middle, last)
_MAX_BOUNDARIES = 8


def _sample_boundaries(first_tile: int, last_tile: int) -> list[int]:
    """Interior tile indices whose lower edge forms a boundary."""
    interior = range(first_tile + 1, last_tile + 1)
    n = len(interior)
    if n <= _MAX_BOUNDARIES:
        return list(interior)
    picks = {interior[0], interior[1], interior[n // 2],
             interior[-2], interior[-1]}
    step = max(1, n // _MAX_BOUNDARIES)
    picks.update(interior[::step])
    return sorted(picks)[:_MAX_BOUNDARIES]


def race_diagnostics(plan: PipelinePlan, emit: Emitter,
                     checked: dict[str, int],
                     env: Mapping[Hashable, int] | None = None,
                     facts: PlanFacts | None = None) -> None:
    """Run the tile-ownership checks over every tiled group."""
    env = dict(env if env is not None else plan.estimates)
    if facts is None:
        facts = PlanFacts(plan, env)
    for gi, gp in enumerate(plan.group_plans):
        if not gp.is_tiled:
            continue
        transforms = gp.transforms
        assert transforms is not None
        if any(s not in transforms for s in gp.ordered_stages):
            continue  # RV004 already reported
        space = facts.tile_space(gp)
        for stage in facts.liveouts(gp):
            t = transforms[stage]
            dom = facts.dom(stage)
            if dom is None:
                continue
            for d in range(plan.ir[stage].ndim):
                g = t.dim_map[d]
                scale = t.scales[d]
                if scale <= 0:
                    emit.emit("RV301",
                              f"live-out {stage.name} has non-positive "
                              f"scale {scale} along dim {d}; tile ownership "
                              "is ill-defined",
                              stage=stage.name, group=gi,
                              hint="scales must be positive rationals")
                    continue
                if space is None:
                    continue
                tau = gp.tile_sizes[g]
                first = space[g].lo // tau
                last = space[g].hi // tau
                sn, sd = scale.numerator, scale.denominator
                for tile in _sample_boundaries(first, last):
                    boundary = tile * tau
                    checked["boundaries"] = checked.get("boundaries", 0) + 1
                    prev_hi = ((boundary - 1) * sd) // sn
                    next_lo = -((-boundary * sd) // sn)
                    if prev_hi >= next_lo:
                        cells = [x for x in (next_lo, prev_hi)
                                 if x in dom[d]]
                        if cells:
                            emit.emit(
                                "RV301",
                                f"tiles T={tile - 1} and T={tile} both own "
                                f"{stage.name} cells [{next_lo}, {prev_hi}] "
                                f"along dim {d}",
                                stage=stage.name, group=gi,
                                hint="two OpenMP tile iterations write the "
                                     "same full-buffer cell concurrently")
                    elif next_lo > prev_hi + 1:
                        lost = [x for x in range(prev_hi + 1, next_lo)
                                if x in dom[d]]
                        if lost:
                            emit.emit(
                                "RV303",
                                f"cells {lost[0]}..{lost[-1]} of "
                                f"{stage.name} dim {d} fall between tiles "
                                f"T={tile - 1} and T={tile} and are never "
                                "written",
                                stage=stage.name, group=gi,
                                hint="the scaled coordinate lands strictly "
                                     "between integer tile ranges; such a "
                                     "stage must not be a tiled live-out")


# ---------------------------------------------------------------------------
# Generated-C lint
# ---------------------------------------------------------------------------

_STATIC_DECL = re.compile(r"^\s*static\s+[A-Za-z_][\w ]*?\b(\w+)\s*\[")
#: pointer-valued statics (e.g. the persistent arena slot table): no
#: bracket in the declarator, ``*`` in the type
_STATIC_PTR_DECL = re.compile(
    r"^\s*static\s+[A-Za-z_][\w ]*?\*+\s*(\w+)\s*[=;]")
_PARALLEL = re.compile(r"#pragma\s+omp\s+parallel\b")
_ATOMIC = re.compile(r"#pragma\s+omp\s+atomic\b")
#: bracket indices that select a per-thread slot — such writes are
#: thread-private by construction, not races
_THREAD_INDEX = re.compile(
    r"^\s*(?:\(long\)\s*)?(?:_?tid|omp_get_thread_num\s*\(\s*\))\s*$")


def _write_pattern(names: set[str]) -> re.Pattern | None:
    if not names:
        return None
    alt = "|".join(re.escape(n) for n in sorted(names))
    return re.compile(
        rf"\b({alt})\s*\[([^\]]*)\]\s*(\+\+|--|[-+*/|&^]?=[^=])"
        rf"|(\+\+|--)\s*({alt})\s*\[")


def lint_c_source(source: str, emit: Emitter,
                  checked: dict[str, int]) -> None:
    """Scan generated C for un-atomic writes to shared statics (RV302).

    Tracks both array statics (the instrument-mode accumulators) and
    pointer statics (the persistent arena slot table).  Writes whose
    index is the thread id (``_tid`` / ``omp_get_thread_num()``) are
    per-thread slots, not shared cells, and are allowed.
    """
    shared: set[str] = set()
    for line in source.splitlines():
        m = _STATIC_DECL.match(line) or _STATIC_PTR_DECL.match(line)
        if m:
            shared.add(m.group(1))
    writes = _write_pattern(shared)
    if writes is None:
        return

    depth = 0
    pending_parallel = False
    parallel_depths: list[int] = []
    prev_code = ""
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        checked["c_lines"] = checked.get("c_lines", 0) + 1
        if _PARALLEL.search(stripped):
            pending_parallel = True
            prev_code = stripped
            continue
        opens = line.count("{")
        if pending_parallel and opens:
            parallel_depths.append(depth)
            pending_parallel = False
        in_parallel = bool(parallel_depths)
        match = writes.search(line) if in_parallel \
            and not stripped.startswith("#") else None
        if match is not None and match.group(2) is not None \
                and _THREAD_INDEX.match(match.group(2)):
            match = None  # per-thread slot write
        if match is not None:
            if not _ATOMIC.search(prev_code):
                emit.emit(
                    "RV302",
                    f"line {lineno}: write to shared static "
                    f"{match.group(0).split('[')[0].strip()!r} "
                    "inside a parallel region without '#pragma omp atomic'",
                    hint="every tile iteration may execute this "
                         "concurrently; guard the update or make it "
                         "thread-local")
        depth += opens - line.count("}")
        while parallel_depths and depth <= parallel_depths[-1]:
            parallel_depths.pop()
        if stripped:
            prev_code = stripped


def lint_generated_c(source: str,
                     severity_overrides: Mapping[str, str] | None = None
                     ) -> list[Diagnostic]:
    """Public entry point: lint one generated C translation unit."""
    emit = Emitter(severity_overrides)
    lint_c_source(source, emit, {})
    return emit.diagnostics
