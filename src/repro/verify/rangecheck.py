"""Value-range audit checks (``RV5xx``).

Audits the range analysis and the precision-narrowing pass behind
``CompileOptions.narrow``:

* ``RV501`` — an integer stage was narrowed without a proof that every
  value it can produce fits the narrowed type (overflow risk);
* ``RV502`` — a double stage was narrowed to ``float`` without a proof
  that every value is exactly representable (precision-loss risk);
* ``RV503`` — a range the plan *claims* (``plan.value_ranges``) does not
  contain the range this checker derives — the two derivations disagree;
* ``RV504`` — a narrowed scratchpad's claimed byte allocation is smaller
  than what sampled tiles actually need under the narrowed item size.

Following the verifier's post-hoc doctrine, the per-stage ranges are
re-derived here by a *separate* abstract evaluator over the raw IR — the
arithmetic is deliberately duplicated rather than imported from
:mod:`repro.analysis.ranges`, so a bug in the compiler-side analysis
cannot certify itself.  Both evaluators implement the same abstract
semantics (store-side casts, zero-crossing divisor guards, ``Select``
widening, float32 endpoint padding); any divergence surfaces as RV503.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.compiler.storage import SCRATCH
from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import (
    BinOp, Call, Cast, Literal, Reference, Select, UnOp,
)
from repro.lang.types import (
    Char, Double, Float, Int, Short, UChar, UShort,
)
from repro.verify.diagnostics import Emitter
from repro.verify.legality import PlanFacts
from repro.verify.storagecheck import _halo_region, sample_tiles

#: (stage, group_plan) -> claimed scratch allocation in *bytes* under the
#: narrowed storage type (injectable for the mutation tests)
NarrowScratchBytesFn = Callable[[object, GroupPlan], int]

_INF = math.inf
_TOP = (-_INF, _INF, False)
_F32_EXACT = 1 << 24

#: declared types whose narrowed loads re-promote to ``int`` exactly
_PROMOTE_SAFE = (Int, Short, UShort, Char, UChar)
#: admissible sub-``int`` storage targets
_INT_TARGETS = (UChar, Char, UShort, Short)


# ---------------------------------------------------------------------------
# Independent range derivation (tuple lattice: (lo, hi, integral))
# ---------------------------------------------------------------------------

def _finite(r) -> bool:
    return not (math.isinf(r[0]) or math.isinf(r[1]))


def _hull(a, b):
    return (min(a[0], b[0]), max(a[1], b[1]), a[2] and b[2])


def _of_dtype(dtype):
    if dtype.is_float:
        return _TOP
    info = np.iinfo(dtype.np_dtype)
    return (int(info.min), int(info.max), True)


def _int_fits(r, dtype) -> bool:
    if not (r[2] and _finite(r)):
        return False
    info = np.iinfo(dtype.np_dtype)
    return info.min <= r[0] and r[1] <= info.max


def _float32_exact(r) -> bool:
    return r[2] and _finite(r) and max(abs(r[0]), abs(r[1])) <= _F32_EXACT


def _mulc(a, b):
    if a == 0 or b == 0:
        return 0
    return a * b


def _store(r, dtype):
    """Range after the store-side cast to the declared type."""
    if dtype.is_float:
        if dtype is Float and not _float32_exact(r) and _finite(r):
            pad = max(abs(r[0]), abs(r[1])) * 2.0 ** -23
            return (r[0] - pad, r[1] + pad, False)
        return r
    if _int_fits(r, dtype):
        return (int(r[0]), int(r[1]), True)
    return _of_dtype(dtype)


def _cast(r, dtype):
    if dtype.is_float:
        if dtype is Float and not _float32_exact(r) and _finite(r):
            pad = max(abs(r[0]), abs(r[1])) * 2.0 ** -23
            return (r[0] - pad, r[1] + pad, False)
        return r
    if _int_fits(r, dtype):
        return (int(r[0]), int(r[1]), True)
    if r[2] and _finite(r):
        return _of_dtype(dtype)
    if _finite(r):
        t = (math.trunc(r[0]), math.trunc(r[1]), True)
        return t if _int_fits(t, dtype) else _of_dtype(dtype)
    return _of_dtype(dtype)


def _binop(op, left, right):
    integral = left[2] and right[2]
    if op == "+":
        return (left[0] + right[0], left[1] + right[1], integral)
    if op == "-":
        return (left[0] - right[1], left[1] - right[0], integral)
    if op == "*":
        corners = [_mulc(a, b) for a in left[:2] for b in right[:2]]
        return (min(corners), max(corners), integral)
    if op in ("/", "//"):
        if right[0] <= 0 <= right[1] or not _finite(right) \
                or not _finite(left):
            return _TOP
        if op == "/":
            corners = [a / d for a in left[:2] for d in right[:2]]
            return (min(corners), max(corners), False)
        corners = [math.floor(a / d) for a in left[:2] for d in right[:2]]
        return (min(corners), max(corners), True)
    if op == "%":
        if not _finite(right):
            return _TOP
        if right[0] > 0:
            return (0, right[1] - 1 if integral else float(right[1]),
                    integral)
        if right[1] < 0:
            return (right[0] + 1 if integral else float(right[0]), 0,
                    integral)
        return _TOP
    return _TOP


def _call(name, args):
    integral = all(a[2] for a in args)
    if name == "min":
        return (min(a[0] for a in args), min(a[1] for a in args), integral)
    if name == "max":
        return (max(a[0] for a in args), max(a[1] for a in args), integral)
    a = args[0]
    if name == "abs":
        if a[0] >= 0:
            return a
        if a[1] <= 0:
            return (-a[1], -a[0], a[2])
        return (0, max(-a[0], a[1]), a[2])
    if name in ("floor", "ceil"):
        f = math.floor if name == "floor" else math.ceil
        lo = f(a[0]) if not math.isinf(a[0]) else a[0]
        hi = f(a[1]) if not math.isinf(a[1]) else a[1]
        return (lo, hi, not (math.isinf(lo) or math.isinf(hi)))
    if name == "sqrt":
        if a[1] < 0:
            return _TOP
        hi = math.sqrt(a[1]) if not math.isinf(a[1]) else _INF
        return (math.sqrt(max(0, a[0])), hi, False)
    if name == "exp":
        try:
            lo = math.exp(a[0]) if not math.isinf(a[0]) else (
                0.0 if a[0] < 0 else _INF)
            hi = math.exp(a[1]) if not math.isinf(a[1]) else _INF
        except OverflowError:
            return (0.0, _INF, False)
        return (lo, hi, False)
    if name == "log":
        if a[0] <= 0:
            return _TOP
        hi = math.log(a[1]) if not math.isinf(a[1]) else _INF
        return (math.log(a[0]), hi, False)
    if name == "atan":
        lo = math.atan(a[0]) if not math.isinf(a[0]) else -math.pi / 2
        hi = math.atan(a[1]) if not math.isinf(a[1]) else math.pi / 2
        return (lo, hi, False)
    if name in ("sin", "cos"):
        return (-1.0, 1.0, False)
    return _TOP


class _RangeDeriver:
    """Forward pass over the stage DAG, re-deriving (lo, hi, integral)."""

    def __init__(self, plan: PipelinePlan):
        self.ir = plan.ir
        self.est = dict(plan.estimates)
        self.known: dict = {}
        for image in plan.ir.graph.inputs:
            self.known[image] = _of_dtype(image.dtype)

    def derive(self) -> dict:
        out: dict = {}
        for stage_ir in self.ir.ordered():
            r = self._stage(stage_ir)
            out[stage_ir.stage] = r
            self.known[stage_ir.stage] = r
        return out

    def _stage(self, stage_ir):
        if stage_ir.is_accumulator or stage_ir.is_self_referential:
            return _of_dtype(stage_ir.stage.dtype)
        result = (0, 0, True)  # calloc/memset zero on uncovered points
        for case in stage_ir.cases:
            box = case.box.concretize(self.est)
            if box is None:
                box = stage_ir.domain.concretize(self.est)
                if box is None:
                    continue
            env: dict = {}
            for var, ivl in zip(stage_ir.variables, box):
                env[var] = (ivl.lo, ivl.hi, True)
            for param, value in self.est.items():
                env[param] = (int(value), int(value), True)
            r = self._expr(case.expression, env)
            result = _hull(result, _store(r, stage_ir.stage.dtype))
        return result

    def _expr(self, expr, env):
        if isinstance(expr, Literal):
            if isinstance(expr.value, bool):
                return _TOP
            v = expr.value
            return (v, v, isinstance(v, int))
        if isinstance(expr, (Variable, Parameter)):
            return env.get(expr, _TOP)
        if isinstance(expr, UnOp):
            r = self._expr(expr.operand, env)
            return (-r[1], -r[0], r[2])
        if isinstance(expr, Cast):
            return _cast(self._expr(expr.operand, env), expr.dtype)
        if isinstance(expr, Select):
            return _hull(self._expr(expr.true_expr, env),
                         self._expr(expr.false_expr, env))
        if isinstance(expr, Reference):
            producer = expr.function
            r = self.known.get(producer)
            return r if r is not None else _of_dtype(producer.dtype)
        if isinstance(expr, BinOp):
            return _binop(expr.op, self._expr(expr.left, env),
                          self._expr(expr.right, env))
        if isinstance(expr, Call):
            return _call(expr.name, [self._expr(a, env)
                                     for a in expr.args])
        return _TOP


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------

def _default_narrow_scratch_bytes(plan: PipelinePlan) -> NarrowScratchBytesFn:
    """The C generator's own byte sizing — the claim under test."""
    from repro.codegen.cgen import CGenerator
    gen = CGenerator(plan)

    def claimed(stage, gp: GroupPlan) -> int:
        total = 1
        for extent in gen._scratch_size(stage, gp):
            total *= extent
        return total * gen._stage_itemsize(stage)

    return claimed


def range_diagnostics(plan: PipelinePlan, emit: Emitter,
                      checked: dict[str, int],
                      env: Mapping[Hashable, int] | None = None,
                      narrow_scratch_bytes: NarrowScratchBytesFn
                      | None = None,
                      facts: PlanFacts | None = None) -> None:
    """Run the ``RV5xx`` checks.  Cheap no-op on plans compiled without
    ``narrow`` (no claimed ranges, no narrowing decisions to audit).

    Value ranges are re-derived under the plan's *estimates* — the
    environment the claims were made in — while the RV504 tile regions
    honour ``env`` like the other storage checks."""
    narrowing = plan.narrowing or {}
    claims = plan.value_ranges
    if not narrowing and claims is None:
        return
    env = dict(env if env is not None else plan.estimates)
    if facts is None:
        facts = PlanFacts(plan, env)

    derived = _RangeDeriver(plan).derive()
    checked["range_stages"] = checked.get("range_stages", 0) + len(derived)

    # RV503: every claimed range must contain the one derived here.
    if claims is not None:
        for stage, claim in claims.items():
            d = derived.get(stage)
            if d is None:
                continue
            disagrees = claim.lo > d[0] or d[1] > claim.hi \
                or (claim.integral and not d[2])
            if disagrees:
                kind = "int" if d[2] else "real"
                emit.emit(
                    "RV503",
                    f"plan claims {stage.name} has range {claim!r} but "
                    f"independent derivation finds [{d[0]}, {d[1]}] {kind}",
                    stage=stage.name,
                    hint="the compiler-side analysis and the verifier "
                         "disagree; one of the two abstract evaluators "
                         "is wrong")

    # RV501/RV502: every narrowing decision must be re-provable.
    for stage, target in narrowing.items():
        checked["narrowed"] = checked.get("narrowed", 0) + 1
        stage_ir = plan.ir[stage]
        structural = (stage_ir.is_output or stage_ir.is_accumulator
                      or stage_ir.is_self_referential)
        d = derived.get(stage)
        if target.is_float:
            proven = (stage.dtype is Double and not structural
                      and d is not None and _float32_exact(d))
            if not proven:
                found = "no derived range" if d is None else \
                    f"derived range [{d[0]}, {d[1]}]" \
                    f"{' int' if d[2] else ' real'}"
                emit.emit(
                    "RV502",
                    f"{stage.name} ({stage.dtype.name}) is narrowed to "
                    f"float storage but {found} is not proven exactly "
                    "representable (integral, |v| <= 2^24)",
                    stage=stage.name,
                    hint="float rounding would silently perturb values "
                         "consumers re-widen to double")
        else:
            proven = (not structural
                      and stage.dtype in _PROMOTE_SAFE
                      and target in _INT_TARGETS
                      and (target.np_dtype.itemsize
                           < stage.dtype.np_dtype.itemsize)
                      and d is not None and _int_fits(d, target))
            if not proven:
                lo, hi = (("?", "?") if d is None else (d[0], d[1]))
                emit.emit(
                    "RV501",
                    f"{stage.name} ({stage.dtype.name}) is narrowed to "
                    f"{target.name} but the derived range [{lo}, {hi}] "
                    "is not proven to fit it",
                    stage=stage.name,
                    hint="an out-of-range store would wrap silently; "
                         "only a proven-contained integral range may "
                         "narrow")

    # RV504: narrowed scratch allocations must cover sampled tiles in
    # *bytes* under the narrowed item size.
    claimed_fn: NarrowScratchBytesFn | None = None
    for gi, gp in enumerate(plan.group_plans):
        if not gp.is_tiled:
            continue
        if any(s not in gp.group.halos or s not in gp.transforms
               for s in gp.ordered_stages):
            continue  # RV004 already reported by the legality pass
        space = facts.tile_space(gp)
        if space is None:
            continue
        members = set(gp.ordered_stages)
        liveouts = facts.liveouts(gp)
        liveout_local = {s for s in liveouts
                         if any(c in members
                                for c in plan.ir.graph.consumers(s))}
        scratch_like = [
            s for s in gp.ordered_stages
            if s in narrowing
            and (plan.storage[s].kind == SCRATCH or s in liveout_local)]
        if not scratch_like:
            continue
        doms = {s: facts.dom(s) for s in scratch_like}
        if any(doms[s] is None for s in scratch_like):
            continue
        if claimed_fn is None:
            claimed_fn = (narrow_scratch_bytes
                          or _default_narrow_scratch_bytes(plan))
        allocs = {s: claimed_fn(s, gp) for s in scratch_like}

        for tile_box in sample_tiles(space, gp.tile_sizes):
            for stage in scratch_like:
                checked["narrow_scratch"] = \
                    checked.get("narrow_scratch", 0) + 1
                region = _halo_region(plan, gp, stage, tile_box,
                                      doms[stage])
                if region is None:
                    continue
                cells = 1
                for ivl in region:
                    cells *= ivl.size
                need = cells * int(narrowing[stage].np_dtype.itemsize)
                if allocs[stage] < need:
                    emit.emit(
                        "RV504",
                        f"narrowed scratchpad of {stage.name} "
                        f"({narrowing[stage].name}) claims "
                        f"{allocs[stage]} bytes but tile {tile_box} "
                        f"needs {need}",
                        stage=stage.name, group=gi,
                        hint="the byte allocation must cover tile + "
                             "halo at the narrowed item size")
