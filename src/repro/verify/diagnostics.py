"""Structured diagnostics for the plan verifier.

Every check in :mod:`repro.verify` reports its findings as
:class:`Diagnostic` records with a stable code (``RV001``...), a severity,
stage/access provenance and a fix hint, collected into a
:class:`VerifyReport`.  Codes are grouped by family:

* ``RV0xx`` — schedule legality (dependence order, halo reach, scaling)
* ``RV1xx`` — static bounds violations
* ``RV2xx`` — storage coverage (scratchpad allocation and tile regions)
* ``RV3xx`` — parallelism races (tile ownership, un-atomic shared writes)
* ``RV4xx`` — DSL lint (dead stages, non-affine accesses, shadowing, ...)
* ``RV5xx`` — value-range audit (narrowing proofs, claimed-range
  containment, narrowed scratch byte sizing)
* ``RV6xx`` — scheduling-hint audit (stale/contradictory hints,
  unsatisfied force/forbid/tile/inline directives)

Severities can be overridden per code — suppressed with ``"ignore"`` or
escalated/demoted to any of ``"info"``/``"warning"``/``"error"`` — so a
deployment can e.g. turn ``RV404`` into a hard error or silence ``RV402``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

ERROR = "error"
WARNING = "warning"
INFO = "info"
IGNORE = "ignore"

SEVERITY_ORDER = {INFO: 0, WARNING: 1, ERROR: 2}

#: code -> (default severity, one-line title)
CODES: dict[str, tuple[str, str]] = {
    # schedule legality
    "RV001": (ERROR, "group stage order violates a dependence"),
    "RV002": (ERROR, "halo narrower than the dependence reach"),
    "RV003": (ERROR, "dependence not constant under the group's "
                     "alignment/scaling"),
    "RV004": (ERROR, "tiled-group member missing its transform or halo"),
    # bounds
    "RV101": (ERROR, "access proven out of bounds under the estimates"),
    # storage coverage
    "RV201": (ERROR, "scratchpad allocation smaller than the tile region"),
    "RV202": (ERROR, "consumer reads outside the producer's tile region"),
    "RV203": (ERROR, "scratch storage for a value that escapes its group"),
    # parallelism races
    "RV301": (ERROR, "adjacent tiles own overlapping cells (write race)"),
    "RV302": (ERROR, "un-atomic write to shared state in a parallel "
                     "C region"),
    "RV303": (ERROR, "tile ownership gap leaves cells unwritten"),
    # DSL lint
    "RV401": (WARNING, "stage or case dead under the parameter estimates"),
    "RV402": (INFO, "non-affine access defeats static analysis"),
    "RV403": (WARNING, "name shadowing between parameters and variables"),
    "RV404": (WARNING, "overlapping case conditions "
                       "(evaluation-order dependent)"),
    "RV405": (WARNING, "implicit type narrowing in a stage expression"),
    # value-range audit
    "RV501": (ERROR, "integer narrowing not proven overflow-safe"),
    "RV502": (ERROR, "float narrowing not proven exact (precision loss)"),
    "RV503": (ERROR, "claimed value range does not contain the "
                     "independently derived range"),
    "RV504": (ERROR, "narrowed scratchpad byte allocation under-sized"),
    # scheduling-hint audit
    "RV601": (ERROR, "hint references a stage the pipeline does not "
                     "contain"),
    "RV602": (ERROR, "scheduling hints contradict each other"),
    "RV603": (ERROR, "force_group hint not satisfied in the final plan"),
    "RV604": (ERROR, "forbid_group hint violated by the final grouping"),
    "RV605": (ERROR, "tile_override hint not applied to its group"),
    "RV606": (ERROR, "inline hint not applied"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, with provenance and a fix hint."""

    code: str
    severity: str
    message: str
    #: primary stage (usually the consumer side of the offending edge)
    stage: str | None = None
    #: other stages involved (e.g. the producer)
    related: tuple[str, ...] = ()
    #: index of the group plan the finding belongs to
    group: int | None = None
    hint: str | None = None

    def render(self) -> str:
        where = f" [{self.stage}]" if self.stage else ""
        grp = f" (group {self.group})" if self.group is not None else ""
        hint = f"\n      hint: {self.hint}" if self.hint else ""
        return f"{self.code} {self.severity}{where}{grp}: {self.message}{hint}"

    def to_dict(self) -> dict:
        return {"code": self.code, "severity": self.severity,
                "message": self.message, "stage": self.stage,
                "related": list(self.related), "group": self.group,
                "hint": self.hint}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Diagnostic":
        return cls(data["code"], data["severity"], data["message"],
                   data.get("stage"), tuple(data.get("related", ())),
                   data.get("group"), data.get("hint"))


def severity_of(code: str,
                overrides: Mapping[str, str] | None = None) -> str:
    """Effective severity of ``code`` after ``overrides``."""
    if overrides and code in overrides:
        return overrides[code]
    try:
        return CODES[code][0]
    except KeyError:
        raise ValueError(f"unknown diagnostic code {code!r}") from None


class Emitter:
    """Collects diagnostics, applying per-code severity overrides."""

    def __init__(self, overrides: Mapping[str, str] | None = None):
        if overrides:
            for code, severity in overrides.items():
                if code not in CODES:
                    raise ValueError(f"unknown diagnostic code {code!r}")
                if severity not in (*SEVERITY_ORDER, IGNORE):
                    raise ValueError(
                        f"unknown severity {severity!r} for {code}")
        self.overrides = dict(overrides or {})
        self.diagnostics: list[Diagnostic] = []

    def emit(self, code: str, message: str, *, stage: str | None = None,
             related: Iterable[str] = (), group: int | None = None,
             hint: str | None = None) -> None:
        severity = severity_of(code, self.overrides)
        if severity == IGNORE:
            return
        self.diagnostics.append(Diagnostic(
            code, severity, message, stage, tuple(related), group, hint))


@dataclass
class VerifyReport:
    """All findings of one verification run over a compiled plan."""

    pipeline: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-checker work counters (edges, tiles, accesses, ... examined)
    checked: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    # -- queries -----------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was reported."""
        return not self.errors

    def at_least(self, severity: str) -> list[Diagnostic]:
        floor = SEVERITY_ORDER[severity]
        return [d for d in self.diagnostics
                if SEVERITY_ORDER[d.severity] >= floor]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    # -- rendering ---------------------------------------------------------
    def summary_line(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        work = ", ".join(f"{v} {k}" for k, v in sorted(self.checked.items()))
        return (f"{self.pipeline}: {n_err} errors, {n_warn} warnings, "
                f"{n_info} notes (checked {work or 'nothing'})")

    def render(self, min_severity: str = INFO) -> str:
        lines = [self.summary_line()]
        for diag in self.at_least(min_severity):
            lines.append("  " + diag.render().replace("\n", "\n  "))
        return "\n".join(lines)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"pipeline": self.pipeline,
                "ok": self.ok,
                "elapsed_s": self.elapsed_s,
                "checked": dict(self.checked),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping) -> "VerifyReport":
        return cls(pipeline=data.get("pipeline", "pipeline"),
                   diagnostics=[Diagnostic.from_dict(d)
                                for d in data.get("diagnostics", [])],
                   checked=dict(data.get("checked", {})),
                   elapsed_s=data.get("elapsed_s", 0.0))

    @classmethod
    def from_json(cls, text: str) -> "VerifyReport":
        return cls.from_dict(json.loads(text))


class VerifyError(RuntimeError):
    """Raised by strict verification when error diagnostics were found."""

    def __init__(self, report: VerifyReport):
        self.report = report
        lines = [f"plan verification failed with {len(report.errors)} "
                 "error(s):"]
        lines += ["  " + d.render().replace("\n", "\n  ")
                  for d in report.errors]
        super().__init__("\n".join(lines))


def code_table() -> str:
    """Render the full diagnostic code table (for docs and --codes)."""
    lines = []
    for code, (severity, title) in sorted(CODES.items()):
        lines.append(f"{code}  {severity:<8} {title}")
    return "\n".join(lines)
