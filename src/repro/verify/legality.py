"""Schedule legality checks (``RV0xx``).

Independently re-derives, from the raw access forms and the group's
placed transforms, what alignment/scaling and overlapped tiling *claim*:

* every intra-group dependence has a bounded constant offset range under
  the chosen scales — checked by verifying the scaling consistency
  equation ``s_p == s_c * m / a`` per access index (``RV003``), rather
  than re-running the code that chose the scales;
* the group's stage order executes producers before consumers
  (``RV001``);
* each stage's halo is at least the dependence reach propagated
  backwards from the group's live-outs, so the overlapped tile shape
  covers every access (``RV002``).

Only :mod:`repro.poly` primitives (access forms, fractions) are used;
the checks are deliberately decoupled from ``repro.compiler.align_scale``
and ``repro.compiler.tiling`` so a bug there cannot hide itself.
"""

from __future__ import annotations

from fractions import Fraction

from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.lang.constructs import Parameter
from repro.verify.diagnostics import Emitter


def _recomputed_liveouts(plan: PipelinePlan, gp: GroupPlan) -> set:
    """Live-outs re-derived from the graph (not trusted from the plan)."""
    group = set(gp.ordered_stages)
    out = set()
    for stage in group:
        if plan.ir[stage].is_output or any(
                c not in group for c in plan.ir.graph.consumers(stage)):
            out.add(stage)
    return out


_MISSING = object()


class PlanFacts:
    """Memoized plan-derived facts shared by the checkers in one run.

    Every checker re-derives its claims independently of the compiler,
    but several of them need the *same* derived facts (concretized
    domains, tile spaces, live-out sets); computing those once per
    :func:`~repro.verify.verify_plan` call keeps the whole verifier
    cheap enough to run inside ``compile_plan(check=...)``.
    """

    def __init__(self, plan: PipelinePlan, env):
        self.plan = plan
        self.env = env
        self._doms: dict = {}
        self._spaces: dict = {}
        self._liveouts: dict = {}

    def dom(self, stage):
        """``stage``'s domain concretized under the env (may be None)."""
        key = id(stage)
        val = self._doms.get(key, _MISSING)
        if val is _MISSING:
            val = self.plan.ir[stage].domain.concretize(self.env)
            self._doms[key] = val
        return val

    def tile_space(self, gp: GroupPlan):
        key = id(gp)
        val = self._spaces.get(key, _MISSING)
        if val is _MISSING:
            try:
                val = gp.tile_space(self.plan.ir, self.env)
            except ValueError:
                # corrupted transforms (e.g. negative scales) give an
                # empty hull; checkers treat that as "no tile space"
                val = None
            self._spaces[key] = val
        return val

    def liveouts(self, gp: GroupPlan) -> set:
        key = id(gp)
        val = self._liveouts.get(key)
        if val is None:
            val = self._liveouts[key] = _recomputed_liveouts(self.plan, gp)
        return val


def _edge_ranges(plan: PipelinePlan, gp: GroupPlan, gi: int,
                 producer, consumer,
                 emit: Emitter) -> list[tuple[Fraction, Fraction]] | None:
    """Offset range per group dimension of one intra-group edge.

    Returns ``None`` (after emitting ``RV003``) when any access breaks
    the constant-dependence claim under the group's placed scales.
    """
    transforms = gp.transforms
    assert transforms is not None
    consumer_ir = plan.ir[consumer]
    ct = transforms[consumer]
    pt = transforms[producer]
    ndim = transforms.ndim
    var_placement = {id(v): (ct.dim_map[d], ct.scales[d])
                     for d, v in enumerate(consumer_ir.variables)}
    zero = (Fraction(0), Fraction(0))
    per_dim: list[tuple[Fraction, Fraction] | None] = [None] * ndim
    bad = False

    # Bucket the access forms by (dim, variable, coefficient, divisor):
    # forms in one bucket differ only in their constant, and both the
    # legality conditions and the endpoints of the offset range are
    # monotone in that constant — so each bucket is validated once and
    # contributes its range from the min/max constants only.  Stencils
    # put all their taps in one bucket, which is what keeps this pass
    # cheap on stencil-heavy groups.
    buckets: dict = {}
    const_forms: list = []
    for access in consumer_ir.accesses_to(producer):
        for d, form in enumerate(access.forms):
            if form is None:
                emit.emit("RV003",
                          f"{consumer.name} reads {producer.name} through a "
                          f"non-affine index (dim {d}) inside a tiled group",
                          stage=consumer.name, related=(producer.name,),
                          group=gi,
                          hint="non-affine accesses cannot be tiled; the "
                               "stages must not share a group")
                bad = True
                continue
            var = None
            a = None
            parametric = multi = False
            for sym, coeff in form.aff.terms:
                # id-lookup first: consumer domain variables are by far
                # the common case, and isinstance against the Parameter
                # ABC is comparatively expensive.
                if id(sym) in var_placement or not isinstance(sym,
                                                              Parameter):
                    if var is None:
                        var, a = sym, coeff
                    else:
                        multi = True
                else:
                    parametric = True
            if parametric:
                emit.emit("RV003",
                          f"{consumer.name} reads {producer.name} with a "
                          f"parametric offset in dim {d} ({form!r})",
                          stage=consumer.name, related=(producer.name,),
                          group=gi,
                          hint="parametric offsets give unbounded "
                               "dependences; the group is illegal")
                bad = True
                continue
            if multi:
                emit.emit("RV003",
                          f"{consumer.name} reads {producer.name} with a "
                          f"multi-variable index in dim {d} ({form!r})",
                          stage=consumer.name, related=(producer.name,),
                          group=gi, hint="alignment requires one driving "
                                         "variable per index")
                bad = True
                continue
            if var is None:
                const_forms.append((d, form))
                continue
            key = (d, id(var), a.numerator, a.denominator, form.divisor)
            entry = buckets.get(key)
            b = form.aff.const
            bn, bd = b.numerator, b.denominator
            if entry is None:
                buckets[key] = [form, form, var, a, bn, bd, bn, bd]
            else:
                # cross-multiplied integer compares (consts are exact
                # rationals with positive denominators)
                if bn * entry[5] < entry[4] * bd:
                    entry[0], entry[4], entry[5] = form, bn, bd
                if bn * entry[7] > entry[6] * bd:
                    entry[1], entry[6], entry[7] = form, bn, bd

    for (d, _vid, _an, _ad, m), (fmin, fmax, var, a,
                                 *_consts) in buckets.items():
        group_dim = pt.dim_map[d]
        s_p = pt.scales[d]
        if a <= 0:
            emit.emit("RV003",
                      f"{consumer.name} reads {producer.name} with a "
                      f"non-positive coefficient in dim {d} "
                      f"({fmin!r}); reflections are not alignable",
                      stage=consumer.name, related=(producer.name,),
                      group=gi)
            bad = True
            continue
        placement = var_placement.get(id(var))
        if placement is None:
            emit.emit("RV003",
                      f"index of {consumer.name} into "
                      f"{producer.name} dim {d} uses a variable that "
                      f"is not a domain dimension of {consumer.name}",
                      stage=consumer.name, related=(producer.name,),
                      group=gi)
            bad = True
            continue
        c_dim, s_c = placement
        # fast path for plain taps (a = m = 1): required == s_c
        required = s_c if (m == 1 and a == 1) else s_c * m / a
        if group_dim != c_dim:
            emit.emit("RV003",
                      f"dim {d} of {producer.name} is placed on "
                      f"group dim {group_dim} but its driving "
                      f"variable of {consumer.name} lives on group "
                      f"dim {c_dim}",
                      stage=consumer.name, related=(producer.name,),
                      group=gi,
                      hint="alignment must map dependent dimensions "
                           "onto the same group dimension")
            bad = True
            continue
        if s_p != required:
            emit.emit("RV003",
                      f"scale of {producer.name} dim {d} is {s_p}, "
                      f"but the access {fmin!r} of {consumer.name} "
                      f"(scale {s_c}) requires {required} for a "
                      "constant dependence",
                      stage=consumer.name, related=(producer.name,),
                      group=gi,
                      hint="s_p = s_c * divisor / coefficient; "
                           "align_scale mis-derived this factor")
            bad = True
            continue
        b_min, b_max = fmin.aff.const, fmax.aff.const
        if m == 1:
            lo = -s_p * b_max
            hi = -s_p * b_min
        else:
            lo = -s_p * b_max / m
            hi = -s_p * b_min / m + s_p * Fraction(m - 1, m)
        prev = per_dim[group_dim]
        per_dim[group_dim] = (lo, hi) if prev is None else (
            min(prev[0], lo), max(prev[1], hi))

    for d, form in const_forms:
        group_dim = pt.dim_map[d]
        s_p = pt.scales[d]
        m = form.divisor
        b = form.aff.const
        # Constant index: bounded only over a constant-extent consumer
        # dimension (e.g. a colour-channel read).
        j = next((jj for jj in range(consumer_ir.ndim)
                  if ct.dim_map[jj] == group_dim), None)
        if j is None:
            emit.emit("RV003",
                      f"constant index of {consumer.name} into "
                      f"{producer.name} dim {d} pairs with no "
                      f"consumer dimension on group dim {group_dim}",
                      stage=consumer.name, related=(producer.name,),
                      group=gi)
            bad = True
            continue
        bounds = consumer_ir.domain.bounds[j]
        if any(not a.is_constant
               for a in (*bounds.lowers, *bounds.uppers)):
            emit.emit("RV003",
                      f"constant index of {consumer.name} into "
                      f"{producer.name} dim {d} spans the parametric "
                      f"extent of consumer dim {j}",
                      stage=consumer.name, related=(producer.name,),
                      group=gi,
                      hint="only constant-extent dimensions (e.g. "
                           "colour channels) admit constant-index "
                           "dependences")
            bad = True
            continue
        v_lo = max(a.const for a in bounds.lowers)
        v_hi = min(a.const for a in bounds.uppers)
        s_c = ct.scales[j]
        k = s_p * (b // m if m > 1 else b)
        lo, hi = s_c * v_lo - k, s_c * v_hi - k
        prev = per_dim[group_dim]
        per_dim[group_dim] = (lo, hi) if prev is None else (
            min(prev[0], lo), max(prev[1], hi))

    if bad:
        return None
    return [r if r is not None else zero for r in per_dim]


def legality_diagnostics(plan: PipelinePlan, emit: Emitter,
                         checked: dict[str, int],
                         facts: "PlanFacts | None" = None) -> None:
    """Run the ``RV0xx`` checks over every tiled group of the plan."""
    for gi, gp in enumerate(plan.group_plans):
        if not gp.is_tiled:
            continue
        transforms = gp.transforms
        assert transforms is not None
        group = set(gp.ordered_stages)
        ndim = transforms.ndim

        complete = True
        for stage in gp.ordered_stages:
            if stage not in transforms:
                emit.emit("RV004",
                          f"stage {stage.name} of tiled group {gi} has no "
                          "alignment/scaling transform",
                          stage=stage.name, group=gi,
                          hint="every member of a tiled group needs a "
                               "placement in the group space")
                complete = False
            if stage not in gp.group.halos:
                emit.emit("RV004",
                          f"stage {stage.name} of tiled group {gi} has no "
                          "halo", stage=stage.name, group=gi,
                          hint="the code generators size regions and "
                               "scratchpads from the halos")
                complete = False
        if not complete:
            continue

        # RV001: producers must run before their in-group consumers.
        position = {s: i for i, s in enumerate(gp.ordered_stages)}
        edges = []
        for consumer in gp.ordered_stages:
            for producer in plan.ir.graph.producers(consumer):
                if producer not in group or producer is consumer:
                    continue
                edges.append((producer, consumer))
                checked["edges"] = checked.get("edges", 0) + 1
                if position[producer] >= position[consumer]:
                    emit.emit("RV001",
                              f"{consumer.name} executes before its "
                              f"producer {producer.name} in group {gi}",
                              stage=consumer.name, related=(producer.name,),
                              group=gi,
                              hint="the group's stage order must be a "
                                   "topological order of its dependences")

        # Recompute dependence ranges independently (RV003 fires inside).
        ranges = {}
        legal = True
        for producer, consumer in edges:
            r = _edge_ranges(plan, gp, gi, producer, consumer, emit)
            if r is None:
                legal = False
            else:
                ranges[(producer, consumer)] = r
        if not legal:
            continue

        # RV002: propagate required reach backwards from the live-outs
        # and demand the placed halos dominate it per dimension.
        liveouts = facts.liveouts(gp) if facts is not None \
            else _recomputed_liveouts(plan, gp)
        zero = [Fraction(0)] * ndim
        required: dict = {}
        for stage in reversed(gp.ordered_stages):
            left, right = list(zero), list(zero)
            seeded = stage in liveouts
            for consumer in plan.ir.graph.consumers(stage):
                if consumer not in group or consumer is stage:
                    continue
                edge = ranges.get((stage, consumer))
                creq = required.get(consumer)
                if edge is None or creq is None:
                    continue
                seeded = True
                for g in range(ndim):
                    lo, hi = edge[g]
                    left[g] = max(left[g], creq[0][g] + hi)
                    right[g] = max(right[g], creq[1][g] - lo)
            if not seeded:
                left, right = list(zero), list(zero)
            required[stage] = (left, right)
            halo = gp.group.halos[stage]
            for g in range(ndim):
                checked["halo_dims"] = checked.get("halo_dims", 0) + 1
                if halo.left[g] < left[g] or halo.right[g] < right[g]:
                    emit.emit(
                        "RV002",
                        f"halo of {stage.name} along group dim {g} is "
                        f"(-{halo.left[g]}, +{halo.right[g]}) but its "
                        f"consumers reach (-{left[g]}, +{right[g]})",
                        stage=stage.name, group=gi,
                        hint="tiles would read values the stage never "
                             "computed; widen the halo (tiling/"
                             "group_halos under-propagated)")
