"""Scheduling hints: user/tool-supplied directives over Algorithm 1.

A :class:`ScheduleHints` value carries per-stage directives that
*constrain* the automatic scheduler — in the spirit of guided
optimization (Ikarashi et al.), hints narrow the candidate space the
grouping loop enumerates but never bypass legality: a hint-forced merge
still runs the same alignment/scaling and halo checks as an automatic
one, and every hinted plan is re-audited by :mod:`repro.verify` (the
RV6xx family rejects stale, contradictory, or unapplied hints).

Directives
----------

``force_group``
    Iterable of stage-name groups; the stages of each set should end in
    the same tile group.  Forced merge candidates are considered first
    and exempted from the *heuristic* gates (minimum group size, overlap
    threshold) — but not from legality.
``forbid_group``
    Iterable of stage-name sets; no two stages of a set may share a
    group.  Any merge that would co-locate two members is rejected.
``tile_override``
    Mapping of stage name → per-dimension tile sizes; every stage of the
    group containing that stage is tiled with the override.  Conflicting
    overrides within one final group are a hint error (RV602/RV605).
``inline``
    Set of stage names to inline into their consumers.  Restricts the
    inline pass to exactly those stages (intersected with what the
    pointwise-inlining criteria allow — an inlinability failure
    surfaces as RV606, not a silent drop).
``n_threads``
    Preferred executor thread count, carried to runtimes that accept
    one (serving, autotune measurement); purely advisory for codegen.

Hints are frozen, hashable, JSON round-trippable
(:meth:`ScheduleHints.to_dict` / :meth:`ScheduleHints.from_dict`), and
normalized on construction so equal directives compare equal regardless
of input ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


def _freeze_groups(groups) -> tuple[frozenset[str], ...]:
    """Normalize an iterable of stage-name collections: each inner
    collection becomes a frozenset of str, the outer tuple is sorted so
    construction order never affects equality."""
    out = []
    for g in groups or ():
        if isinstance(g, str):
            raise TypeError(
                "hint groups must be collections of stage names, got a "
                f"bare string {g!r} (did you mean ({g!r},)?)")
        names = frozenset(str(n) for n in g)
        if not names:
            continue
        out.append(names)
    return tuple(sorted(out, key=lambda s: tuple(sorted(s))))


def _freeze_tiles(tile_override) -> tuple[tuple[str, tuple[int, ...]], ...]:
    if not tile_override:
        return ()
    if isinstance(tile_override, Mapping):
        items = tile_override.items()
    else:
        items = tile_override
    out = []
    for name, sizes in items:
        if isinstance(sizes, int):
            sizes = (sizes,)
        sizes = tuple(int(s) for s in sizes)
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError(
                f"tile_override for {name!r} must be positive ints, "
                f"got {sizes}")
        out.append((str(name), sizes))
    out.sort()
    seen: dict[str, tuple[int, ...]] = {}
    for name, sizes in out:
        if name in seen and seen[name] != sizes:
            raise ValueError(
                f"conflicting tile_override entries for stage {name!r}: "
                f"{seen[name]} vs {sizes}")
        seen[name] = sizes
    return tuple(sorted(seen.items()))


@dataclass(frozen=True)
class ScheduleHints:
    """Per-stage scheduling directives (see module docstring)."""

    force_group: tuple[frozenset[str], ...] = ()
    forbid_group: tuple[frozenset[str], ...] = ()
    tile_override: tuple[tuple[str, tuple[int, ...]], ...] = ()
    inline: frozenset[str] = frozenset()
    n_threads: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "force_group",
                           _freeze_groups(self.force_group))
        object.__setattr__(self, "forbid_group",
                           _freeze_groups(self.forbid_group))
        object.__setattr__(self, "tile_override",
                           _freeze_tiles(self.tile_override))
        object.__setattr__(
            self, "inline",
            frozenset(str(n) for n in (self.inline or ())))
        for g in self.force_group:
            if len(g) < 2:
                raise ValueError(
                    f"force_group set {sorted(g)} needs >= 2 stages")
        for g in self.forbid_group:
            if len(g) < 2:
                raise ValueError(
                    f"forbid_group set {sorted(g)} needs >= 2 stages")
        if self.n_threads is not None:
            n = int(self.n_threads)
            if n < 1:
                raise ValueError(f"n_threads must be >= 1, got {n}")
            object.__setattr__(self, "n_threads", n)

    # -- queries used by the grouping loop --------------------------------
    def is_empty(self) -> bool:
        return not (self.force_group or self.forbid_group
                    or self.tile_override or self.inline
                    or self.n_threads is not None)

    def stage_names(self) -> frozenset[str]:
        """Every stage name any directive mentions."""
        names: set[str] = set(self.inline)
        for g in self.force_group + self.forbid_group:
            names |= g
        names.update(name for name, _ in self.tile_override)
        return frozenset(names)

    def forbids_merge(self, a: Iterable[str], b: Iterable[str]) -> bool:
        """True when merging member sets ``a`` and ``b`` would put two
        stages of some ``forbid_group`` set in one group."""
        a, b = set(a), set(b)
        merged = a | b
        for s in self.forbid_group:
            hit = s & merged
            if len(hit) >= 2 and (s & a) and (s & b):
                return True
        return False

    def forces_merge(self, a: Iterable[str], b: Iterable[str]) -> bool:
        """True when some ``force_group`` set spans both sides — merging
        ``a`` and ``b`` moves toward satisfying it."""
        a, b = set(a), set(b)
        return any((s & a) and (s & b) for s in self.force_group)

    def tile_for(self, name: str) -> tuple[int, ...] | None:
        for n, sizes in self.tile_override:
            if n == name:
                return sizes
        return None

    def contradictions(self) -> list[str]:
        """Human-readable descriptions of internally contradictory
        directives (force vs forbid overlap, inline vs force)."""
        problems = []
        for f in self.force_group:
            for s in self.forbid_group:
                both = f & s
                if len(both) >= 2:
                    problems.append(
                        f"stages {sorted(both)} are both forced together "
                        f"and forbidden from sharing a group")
        for f in self.force_group:
            inlined = f & self.inline
            if inlined:
                problems.append(
                    f"stages {sorted(inlined)} are hinted inline but also "
                    f"appear in force_group {sorted(f)} — an inlined "
                    f"stage has no group of its own")
        return problems

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "force_group": [sorted(g) for g in self.force_group],
            "forbid_group": [sorted(g) for g in self.forbid_group],
            "tile_override": {name: list(sizes)
                              for name, sizes in self.tile_override},
            "inline": sorted(self.inline),
            "n_threads": self.n_threads,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ScheduleHints":
        return cls(
            force_group=tuple(frozenset(g)
                              for g in doc.get("force_group", ())),
            forbid_group=tuple(frozenset(g)
                               for g in doc.get("forbid_group", ())),
            tile_override={k: tuple(v) for k, v in
                           (doc.get("tile_override") or {}).items()},
            inline=frozenset(doc.get("inline", ())),
            n_threads=doc.get("n_threads"),
        )

    def describe(self) -> str:
        """One-line rendering for ``explain()`` headers and logs."""
        parts = []
        if self.force_group:
            parts.append("force=" + "+".join(
                "{" + ",".join(sorted(g)) + "}" for g in self.force_group))
        if self.forbid_group:
            parts.append("forbid=" + "+".join(
                "{" + ",".join(sorted(g)) + "}" for g in self.forbid_group))
        if self.tile_override:
            parts.append("tile=" + ",".join(
                f"{n}:{'x'.join(str(s) for s in sizes)}"
                for n, sizes in self.tile_override))
        if self.inline:
            parts.append("inline={" + ",".join(sorted(self.inline)) + "}")
        if self.n_threads is not None:
            parts.append(f"n_threads={self.n_threads}")
        return " ".join(parts) if parts else "(none)"
