"""Persistent cross-run schedule store.

Every process used to re-discover schedules from scratch: autotune
sweeps, ``explain()`` shows the decisions, and then the process exits
and the knowledge dies with it.  :class:`ScheduleStore` persists winning
schedules **next to the ``.so`` artifacts** of the content-addressed
:class:`~repro.codegen.build.CompileCache`, keyed on

* the **pipeline content digest** — a SHA-256 over a canonical dump of
  the stage DAG (definitions with positionally-renamed variables, so
  auto-generated variable names never perturb the key; stage, parameter
  and image names are part of identity) plus the compile-time
  estimates, and
* the **machine fingerprint** — cpu count, architecture, C compiler
  version and baseline build flags; a schedule tuned on one machine is
  never silently loaded on another.

Entries are JSON documents published atomically (write to a
dot-prefixed temporary, then ``os.replace`` — the same discipline as
the artifact cache, so N racing processes always observe a complete
winner, never a torn file).  Each entry records the winning
:class:`~repro.compiler.options.CompileOptions`, the optional
:class:`~repro.autotune.TuneResult` with its measurements, the
:class:`~repro.schedule.ScheduleHints` in force, and the compile-cache
key of the published artifact — enough for a cold process to rebuild
the exact plan and ``dlopen`` the existing binary without invoking the
C compiler or re-running the sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
import uuid
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Mapping, Sequence

from repro.lang.constructs import Variable
from repro.lang.function import Accumulator

STORE_VERSION = 1
#: subdirectory of the artifact cache root holding schedule entries
STORE_SUBDIR = "schedules"


# ---------------------------------------------------------------------------
# Pipeline content digest
# ---------------------------------------------------------------------------

def _canonical_stage(stage) -> str:
    """Dump one stage with positionally-renamed variables.

    DSL variable names are auto-generated (``Variable()`` mints
    ``x_17``-style names), so two structurally identical pipelines built
    in different processes would repr differently.  Renaming domain
    variables to ``v0, v1, ...`` (reduction variables to ``r0, ...``)
    by position makes the dump depend only on structure and on the
    *chosen* names (stages, parameters, images), which are identity.
    """
    mapping = {v: Variable(f"v{i}") for i, v in enumerate(stage.variables)}
    if isinstance(stage, Accumulator):
        mapping.update({v: Variable(f"r{i}")
                        for i, v in enumerate(stage.red_variables)})
    dom = ", ".join(
        f"v{i}:{iv!r}" for i, iv in enumerate(stage.intervals))
    lines = [f"stage {stage.name} <{stage.dtype!r}> [{dom}]"]
    if isinstance(stage, Accumulator):
        red = ", ".join(
            f"r{i}:{iv!r}" for i, iv in enumerate(stage.red_intervals))
        body = stage.defn
        target = body.target.substitute(mapping)
        value = body.value.substitute(mapping)
        lines.append(f"  red [{red}]")
        lines.append(f"  accumulate {target!r} <- {value!r} op={body.op}")
    else:
        for case in stage.defn:
            cond = case.condition.substitute(mapping)
            expr = case.expression.substitute(mapping)
            lines.append(f"  case {cond!r}: {expr!r}")
    return "\n".join(lines)


def canonical_pipeline_dump(outputs: Sequence, estimates: Mapping) -> str:
    """The canonical text the pipeline digest hashes (exposed for
    tests and debugging)."""
    from repro.pipeline.graph import PipelineGraph

    graph = PipelineGraph(outputs)
    stages = sorted(graph.stages, key=lambda s: s.name)
    parts = ["pipeline v1"]
    parts.append("outputs " + ", ".join(
        sorted(s.name for s in graph.outputs)))
    parts.append("inputs " + ", ".join(
        repr(img) for img in sorted(graph.inputs, key=lambda i: i.name)))
    parts.append("estimates " + ", ".join(
        f"{name}={value}" for name, value in sorted(
            (p.name, int(v)) for p, v in estimates.items())))
    parts.extend(_canonical_stage(s) for s in stages)
    return "\n".join(parts)


def pipeline_digest(outputs: Sequence, estimates: Mapping) -> str:
    """Content digest of a pipeline + estimates (32 hex chars)."""
    dump = canonical_pipeline_dump(outputs, estimates)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Machine fingerprint
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def _compiler_version() -> str:
    from repro.codegen.build import find_compiler

    cc = find_compiler()
    if cc is None:
        return "none"
    try:
        out = subprocess.run([cc, "--version"], capture_output=True,
                             text=True, timeout=10, check=False).stdout
        first = out.splitlines()[0].strip() if out else cc
    except (OSError, subprocess.SubprocessError):
        first = cc
    return first


def machine_fingerprint() -> dict:
    """The machine identity a stored schedule is valid for."""
    import platform

    from repro.codegen.build import build_flags

    return {
        "cpus": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "compiler": _compiler_version(),
        "flags": list(build_flags()),
    }


def fingerprint_digest(fingerprint: Mapping) -> str:
    blob = json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Store entries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StoredSchedule:
    """One persisted schedule: the winning configuration for a
    (pipeline digest, machine fingerprint) pair."""

    pipeline: str
    fingerprint: dict
    options: dict
    hints: dict | None = None
    tune_result: dict | None = None
    #: compile-cache artifact coordinates: ``{"key", "vectorize",
    #: "instrument"}`` — enough to re-open the published ``.so``
    artifact: dict | None = None
    created: float = 0.0
    version: int = STORE_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "pipeline": self.pipeline,
            "fingerprint": dict(self.fingerprint),
            "options": dict(self.options),
            "hints": dict(self.hints) if self.hints else None,
            "tune_result": (dict(self.tune_result)
                            if self.tune_result else None),
            "artifact": dict(self.artifact) if self.artifact else None,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "StoredSchedule":
        return cls(pipeline=doc["pipeline"],
                   fingerprint=dict(doc["fingerprint"]),
                   options=dict(doc["options"]),
                   hints=doc.get("hints"),
                   tune_result=doc.get("tune_result"),
                   artifact=doc.get("artifact"),
                   created=float(doc.get("created", 0.0)),
                   version=int(doc.get("version", STORE_VERSION)))

    def compile_options(self):
        from repro.compiler.options import CompileOptions
        return CompileOptions.from_dict(self.options)

    def schedule_hints(self):
        if not self.hints:
            return None
        from repro.schedule.hints import ScheduleHints
        return ScheduleHints.from_dict(self.hints)


class ScheduleStore:
    """Atomic, fingerprint-checked persistence of tuned schedules.

    ``root`` defaults to ``<artifact cache root>/schedules`` so entries
    live next to the ``.so`` files they reference and share the cache's
    lifecycle (one ``REPRO_CACHE_DIR`` override moves both).
    """

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            from repro.codegen.build import default_cache_dir
            root = default_cache_dir() / STORE_SUBDIR
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys --------------------------------------------------------------
    def path_for(self, pipeline: str, fingerprint: Mapping) -> Path:
        return self.root / f"{pipeline}-{fingerprint_digest(fingerprint)}.json"

    # -- read side ---------------------------------------------------------
    def lookup(self, pipeline: str, fingerprint: Mapping | None = None
               ) -> StoredSchedule | None:
        """The stored schedule for this pipeline on this machine, or
        ``None``.  The embedded fingerprint is compared in full — an
        entry whose *file name* collides but whose fingerprint differs
        (different cpu count, compiler, flags) is skipped, not loaded.
        """
        if fingerprint is None:
            fingerprint = machine_fingerprint()
        path = self.path_for(pipeline, fingerprint)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            entry = StoredSchedule.from_dict(doc)
        except (KeyError, TypeError, ValueError):
            return None
        if entry.version != STORE_VERSION:
            return None
        if entry.pipeline != pipeline:
            return None
        if entry.fingerprint != dict(fingerprint):
            return None
        return entry

    # -- write side --------------------------------------------------------
    def publish(self, entry: StoredSchedule) -> Path:
        """Atomically publish ``entry`` (last writer wins, readers never
        observe a torn file — same ``os.replace`` discipline as the
        artifact cache)."""
        path = self.path_for(entry.pipeline, entry.fingerprint)
        doc = entry.to_dict()
        if not doc.get("created"):
            doc["created"] = time.time()
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[StoredSchedule]:
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                out.append(StoredSchedule.from_dict(
                    json.loads(path.read_text())))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return out

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def manifest(self) -> dict:
        """A JSON-ready summary of every entry (for the CLI and CI
        artifacts)."""
        entries = []
        for e in self.entries():
            best = (e.tune_result or {}).get("time_parallel_ms")
            entries.append({
                "pipeline": e.pipeline,
                "fingerprint": fingerprint_digest(e.fingerprint),
                "cpus": e.fingerprint.get("cpus"),
                "artifact_key": (e.artifact or {}).get("key"),
                "tuned_ms": best,
                "hinted": bool(e.hints),
                "created": e.created,
            })
        return {"root": str(self.root), "entries": entries}
