"""Guided scheduling: hints over Algorithm 1 + a persistent schedule store.

Two halves (see :mod:`repro.schedule.hints` and
:mod:`repro.schedule.store`):

* :class:`ScheduleHints` — per-stage directives (``force_group``,
  ``forbid_group``, ``tile_override``, ``inline``, ``n_threads``)
  accepted by ``compile_pipeline(hints=)`` / ``autotune(hints=)``.
  Hints constrain the automatic scheduler without bypassing legality;
  the RV6xx verify family audits them post hoc.
* :class:`ScheduleStore` — winning schedules persisted next to the
  compile-cache artifacts, keyed on pipeline content digest + machine
  fingerprint, so ``build(store="ro")`` / ``autotune(store="rw")`` /
  ``serve(processes=N, store="ro")`` cold-start straight into the best
  known schedule and its already-compiled binary.
"""

from repro.schedule.hints import ScheduleHints
from repro.schedule.store import (
    ScheduleStore, StoredSchedule, canonical_pipeline_dump,
    fingerprint_digest, machine_fingerprint, pipeline_digest,
)

__all__ = [
    "ScheduleHints",
    "ScheduleStore",
    "StoredSchedule",
    "canonical_pipeline_dump",
    "fingerprint_digest",
    "machine_fingerprint",
    "pipeline_digest",
]
