"""Schedule-store CLI.

Usage::

    python -m repro.schedule                 # list entries (table)
    python -m repro.schedule --json out.json # manifest as JSON
    python -m repro.schedule --root DIR      # non-default store root
    python -m repro.schedule --clear         # delete every entry

The default root is ``<artifact cache root>/schedules`` (so
``REPRO_CACHE_DIR`` moves it together with the ``.so`` cache).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.schedule.store import ScheduleStore, fingerprint_digest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.schedule",
        description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="store root (default: <cache>/schedules)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the manifest as JSON ('-' = stdout)")
    parser.add_argument("--clear", action="store_true",
                        help="delete every stored schedule")
    args = parser.parse_args(argv)

    store = ScheduleStore(args.root)
    if args.clear:
        n = store.clear()
        print(f"cleared {n} entr{'y' if n == 1 else 'ies'} "
              f"from {store.root}")
        return 0

    manifest = store.manifest()
    if args.json:
        text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)
            print(f"wrote {args.json}")
        return 0

    entries = manifest["entries"]
    print(f"schedule store: {manifest['root']} "
          f"({len(entries)} entr{'y' if len(entries) == 1 else 'ies'})")
    for e in entries:
        tuned = (f"{e['tuned_ms']:.2f} ms"
                 if e["tuned_ms"] is not None else "untimed")
        age = ""
        if e["created"]:
            age = time.strftime(" %Y-%m-%d %H:%M",
                                time.localtime(e["created"]))
        hinted = " hinted" if e["hinted"] else ""
        print(f"  {e['pipeline']} @ {e['fingerprint']} "
              f"({e['cpus']} cpus): {tuned}, "
              f"artifact {e['artifact_key'] or '-'}{hinted}{age}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
