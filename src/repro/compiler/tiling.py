"""Overlapped tiling for heterogeneous stage groups (paper Section 3.4).

Two views of the same analysis live here:

* **Model view** — :func:`group_halos` propagates dependence ranges
  backwards from the group's live-outs, yielding each stage's halo (the
  extension beyond the tile it must compute).  This is the *tight*,
  per-level tile shape of Figure 6; :func:`naive_halos` implements the
  over-approximation that assumes every dependence occurs at every level,
  for comparison.  :func:`estimate_relative_overlap` turns halos into the
  redundancy fraction Algorithm 1 thresholds, and
  :func:`tile_shape_slopes` exposes the bounding hyperplane slopes
  (phi_l / phi_r) and the overlap ``o = h * (|l| + |r|)``.

* **Exact view** — :func:`compute_tile_regions` computes, for a concrete
  tile, the exact box each stage must be evaluated over, by pushing
  intervals through the access functions in reverse topological order.
  Both execution backends consume this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Sequence

from repro.compiler.align_scale import GroupTransforms
from repro.compiler.deps import DepRange, EdgeDependence, edge_dependences
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR, StageIR
from repro.poly.interval import IntInterval, evaluate_access


@dataclass(frozen=True)
class Halo:
    """Per-dimension (left, right) extension in group coordinates."""

    left: tuple[Fraction, ...]
    right: tuple[Fraction, ...]

    def widths(self) -> tuple[Fraction, ...]:
        """Overlap width per dimension (never negative)."""
        return tuple(max(Fraction(0), l + r)
                     for l, r in zip(self.left, self.right))


def _ordered_group(ir: PipelineIR, stages: Iterable[Stage]) -> list[Stage]:
    group = set(stages)
    return [s for s in ir.graph.topological_order() if s in group]


def group_liveouts(ir: PipelineIR, stages: Iterable[Stage]) -> list[Stage]:
    """Stages whose values are needed outside the group."""
    group = set(stages)
    out = []
    for stage in group:
        if ir[stage].is_output or any(c not in group
                                      for c in ir.graph.consumers(stage)):
            out.append(stage)
    return out


def group_halos(ir: PipelineIR, transforms: GroupTransforms,
                stages: Iterable[Stage]) -> dict[Stage, Halo]:
    """Tight per-stage halos via backward dependence propagation.

    Live-out stages start with a zero halo (they own exactly the tile);
    every producer extends its consumers' halos by the consumer's
    dependence range.  This examines dependences level by level, in
    isolation — the tight construction of Section 3.4 — rather than
    assuming a uniform dependence cone.
    """
    group = set(stages)
    order = _ordered_group(ir, stages)
    liveouts = set(group_liveouts(ir, stages))
    ndim = transforms.ndim
    zero = tuple(Fraction(0) for _ in range(ndim))
    halos: dict[Stage, Halo] = {}

    for stage in reversed(order):
        left = list(zero)
        right = list(zero)
        seeded = stage in liveouts
        for consumer in ir.graph.consumers(stage):
            if consumer not in group:
                continue
            consumer_halo = halos[consumer]
            dep = edge_dependences(ir, transforms, stage, consumer)
            seeded = True
            for g in range(ndim):
                rng = dep.ranges[g]
                left[g] = max(left[g], consumer_halo.left[g] + rng.hi)
                right[g] = max(right[g], consumer_halo.right[g] - rng.lo)
        if not seeded:
            # unreachable from live-outs: contributes nothing
            halos[stage] = Halo(tuple(zero), tuple(zero))
            continue
        halos[stage] = Halo(tuple(left), tuple(right))
    return halos


def naive_halos(ir: PipelineIR, transforms: GroupTransforms,
                stages: Iterable[Stage]) -> dict[Stage, Halo]:
    """Over-approximated halos: every dependence assumed at every level.

    This is the naive cone of Figure 6 — the maximum dependence range of
    the whole group is applied at each level below the live-outs,
    regardless of which edges actually exist there.
    """
    group = set(stages)
    order = _ordered_group(ir, stages)
    ndim = transforms.ndim
    max_hi = [Fraction(0)] * ndim
    max_lo = [Fraction(0)] * ndim
    for consumer in order:
        for producer in ir.graph.producers(consumer):
            if producer not in group:
                continue
            dep = edge_dependences(ir, transforms, producer, consumer)
            for g in range(ndim):
                max_hi[g] = max(max_hi[g], dep.ranges[g].hi)
                max_lo[g] = min(max_lo[g], dep.ranges[g].lo)

    levels = {s: ir[s].level for s in order}
    top = max(levels.values())
    halos = {}
    for stage in order:
        depth = top - levels[stage]
        halos[stage] = Halo(
            tuple(depth * h for h in max_hi),
            tuple(depth * -l for l in max_lo))
    return halos


def estimate_relative_overlap(halos: Mapping[Stage, Halo],
                              tile_sizes: Sequence[int]) -> Fraction:
    """Redundant-computation fraction used by Algorithm 1's threshold.

    The overlap width along a dimension is independent of the tile size
    (it is fixed by the slopes and the group depth); the *relative*
    overlap is its ratio to the tile size, maximised over stages and
    dimensions.
    """
    worst = Fraction(0)
    for halo in halos.values():
        for d, width in enumerate(halo.widths()):
            tau = tile_sizes[d % len(tile_sizes)]
            worst = max(worst, width / tau)
    return worst


@dataclass(frozen=True)
class TileShape:
    """Bounding hyperplane slopes and overlap of one tiled dimension.

    ``left_slope``/``right_slope`` are the per-level slopes of phi_l and
    phi_r; ``overlap`` is ``h * (|l| + |r|)`` from Section 3.4.
    """

    left_slope: Fraction
    right_slope: Fraction
    height: int

    @property
    def overlap(self) -> Fraction:
        return self.height * (abs(self.left_slope) + abs(self.right_slope))


def tile_shape_slopes(ir: PipelineIR, transforms: GroupTransforms,
                      stages: Iterable[Stage]) -> tuple[TileShape, ...]:
    """Tight phi_l / phi_r slopes per group dimension.

    For phi_l only dependences with non-negative components matter; for
    phi_r only non-positive ones.  Slopes are normalised by the level gap
    the dependence spans, giving the tightest valid cone.
    """
    group = set(stages)
    order = _ordered_group(ir, stages)
    ndim = transforms.ndim
    left = [Fraction(0)] * ndim
    right = [Fraction(0)] * ndim
    levels = {s: ir[s].level for s in order}
    height = max(levels.values()) - min(levels.values()) if order else 0
    for consumer in order:
        for producer in ir.graph.producers(consumer):
            if producer not in group:
                continue
            gap = max(1, levels[consumer] - levels[producer])
            dep = edge_dependences(ir, transforms, producer, consumer)
            for g in range(ndim):
                rng = dep.ranges[g]
                if rng.hi > 0:
                    left[g] = max(left[g], rng.hi / gap)
                if rng.lo < 0:
                    right[g] = max(right[g], -rng.lo / gap)
    return tuple(TileShape(left[g], right[g], height) for g in range(ndim))


# ---------------------------------------------------------------------------
# Exact per-tile regions
# ---------------------------------------------------------------------------

def stage_tile_region(transform, stage_box: tuple[IntInterval, ...],
                      tile_box: tuple[IntInterval, ...]
                      ) -> tuple[IntInterval, ...] | None:
    """Stage-coordinate region a stage *owns* within a group tile.

    A stage point ``x`` is owned by the tile whose group-coordinate range
    contains ``scale * x`` (exact rational comparison), intersected with
    the stage's domain box.
    """
    dims = []
    for d in range(len(stage_box)):
        g = transform.dim_map[d]
        scale = transform.scales[d]
        t = tile_box[g]
        lo = math.ceil(Fraction(t.lo) / scale)
        hi = math.floor(Fraction(t.hi) / scale)
        if lo > hi:
            return None
        owned = IntInterval(lo, hi).intersect(stage_box[d])
        if owned is None:
            return None
        dims.append(owned)
    return tuple(dims)


def compute_tile_regions(ir: PipelineIR, transforms: GroupTransforms,
                         ordered_stages: Sequence[Stage],
                         liveouts: Iterable[Stage],
                         tile_box: tuple[IntInterval, ...],
                         param_env: Mapping[Hashable, int]
                         ) -> dict[Stage, tuple[IntInterval, ...]]:
    """Exact evaluation region of every stage for one tile.

    Walking the group in reverse topological order: live-outs need their
    owned region; producers need the union (hull) of what their in-group
    consumers read, clamped to their own domain.  Stages with nothing to
    compute for this tile are absent from the result.
    """
    group = set(ordered_stages)
    liveout_set = set(liveouts)
    regions: dict[Stage, tuple[IntInterval, ...]] = {}

    for stage in reversed(list(ordered_stages)):
        stage_ir = ir[stage]
        stage_box = stage_ir.domain.concretize(param_env)
        if stage_box is None:
            continue
        required: tuple[IntInterval, ...] | None = None
        if stage in liveout_set:
            required = stage_tile_region(transforms[stage], stage_box, tile_box)
        for consumer in ir.graph.consumers(stage):
            if consumer not in group or consumer not in regions:
                continue
            consumer_ir = ir[consumer]
            consumer_region = regions[consumer]
            env: dict[Hashable, IntInterval | int] = dict(param_env)
            env.update(zip(consumer_ir.variables, consumer_region))
            for access in consumer_ir.accesses_to(stage):
                needed = []
                ok = True
                for d, form in enumerate(access.forms):
                    assert form is not None
                    rng = evaluate_access(form, env)
                    clamped = rng.intersect(stage_box[d])
                    if clamped is None:
                        ok = False
                        break
                    needed.append(clamped)
                if not ok:
                    continue
                box = tuple(needed)
                required = box if required is None else tuple(
                    a.hull(b) for a, b in zip(required, box))
        if required is not None:
            regions[stage] = required
    return regions
