"""Compilation options: the small parameter space the autotuner explores.

The model-driven approach collapses the schedule space to tile sizes and
an overlap threshold (paper Section 3.8): seven tile sizes per dimension
(8..512) and three thresholds (0.2, 0.4, 0.5).  The remaining switches
select the paper's evaluation variants — ``base`` (inline only) versus
``opt`` (grouping + tiling + storage), matching Figure 10's
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Sequence

#: tile sizes explored by the autotuner (paper Section 3.8)
TILE_SIZE_CHOICES = (8, 16, 32, 64, 128, 256, 512)

#: overlap thresholds explored by the autotuner
OVERLAP_THRESHOLD_CHOICES = (0.2, 0.4, 0.5)


@dataclass(frozen=True)
class CompileOptions:
    """Everything that shapes the generated implementation."""

    #: tile size per group dimension (cycled when a group has more dims);
    #: the paper's Figure 7 uses (32, 256) for Harris.
    tile_sizes: tuple[int, ...] = (32, 256)
    #: Algorithm 1's redundant-computation bound
    overlap_threshold: float = 0.4
    #: fold point-wise stages into consumers
    inline: bool = True
    #: run Algorithm 1; False keeps every stage in its own group
    group: bool = True
    #: overlapped-tile execution; False scans full domains stage by stage
    tile: bool = True
    #: skip merging groups smaller than this many points (0 disables)
    min_group_size: int = 0
    #: use the tight per-level tile shapes of Section 3.4; False falls back
    #: to the uniform dependence-cone over-approximation (Figure 6's naive
    #: construction) — an ablation knob, measurably more redundant
    tight_overlap: bool = True
    #: unroll factor hinted to the C compiler on innermost loops
    #: (Section 3.7 mentions unrolling; 0 leaves it to the compiler)
    unroll: int = 0
    #: fast-path codegen: interior/boundary specialization of generated
    #: loop nests (clamp elimination, floor-div strength reduction, load
    #: CSE, hoisted index arithmetic) plus persistent per-thread scratch
    #: arenas; False reproduces the legacy always-safe code
    specialize: bool = True
    #: emit ``#pragma omp simd`` on provably unit-stride, alias-free
    #: innermost fast-path loops (requires ``specialize``)
    simd: bool = True
    #: interval-driven precision narrowing: store intermediates in the
    #: narrowest C type their statically proven value range fits (see
    #: :mod:`repro.analysis.ranges`); off reproduces today's output
    #: byte for byte
    narrow: bool = False

    def __post_init__(self):
        if not self.tile_sizes:
            raise ValueError("at least one tile size is required")
        if any(t < 1 for t in self.tile_sizes):
            raise ValueError("tile sizes must be positive")
        if not 0 < self.overlap_threshold:
            raise ValueError("overlap threshold must be positive")
        if self.unroll < 0:
            raise ValueError("unroll factor must be non-negative")
        if self.simd and not isinstance(self.simd, bool):
            raise ValueError("simd must be a bool")
        if self.specialize and not isinstance(self.specialize, bool):
            raise ValueError("specialize must be a bool")

    def tile_size(self, dim: int) -> int:
        return self.tile_sizes[dim % len(self.tile_sizes)]

    # -- paper evaluation variants ---------------------------------------
    @staticmethod
    def base() -> "CompileOptions":
        """PolyMage (base): scalar optimizations + inlining only."""
        return CompileOptions(inline=True, group=False, tile=False)

    @staticmethod
    def optimized(tile_sizes: Sequence[int] = (32, 256),
                  overlap_threshold: float = 0.4) -> "CompileOptions":
        """PolyMage (opt): grouping, overlapped tiling, storage mapping."""
        return CompileOptions(tile_sizes=tuple(tile_sizes),
                              overlap_threshold=overlap_threshold)

    def with_tiles(self, tile_sizes: Sequence[int]) -> "CompileOptions":
        return replace(self, tile_sizes=tuple(tile_sizes))

    def with_threshold(self, threshold: float) -> "CompileOptions":
        return replace(self, overlap_threshold=threshold)

    def with_specialize(self, specialize: bool,
                        simd: bool | None = None) -> "CompileOptions":
        return replace(self, specialize=specialize,
                       simd=self.simd if simd is None else simd)

    def with_narrow(self, narrow: bool) -> "CompileOptions":
        return replace(self, narrow=narrow)

    # -- serialization (schedule store) ----------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form, round-tripped by :meth:`from_dict` (used by
        the persistent schedule store)."""
        from dataclasses import asdict
        doc = asdict(self)
        doc["tile_sizes"] = list(self.tile_sizes)
        return doc

    @classmethod
    def from_dict(cls, doc) -> "CompileOptions":
        doc = dict(doc)
        doc["tile_sizes"] = tuple(doc.get("tile_sizes", (32, 256)))
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})
