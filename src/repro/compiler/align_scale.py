"""Alignment and scaling of stage schedules (paper Section 3.3).

Overlapped tiling of a group is only possible when every intra-group
dependence is captured by (bounded) constant vectors.  Up/down-sampling
accesses such as ``h(x // 2)`` or ``g(2*x - 1)`` produce non-constant
vectors under the initial schedules; scaling each stage's schedule by the
right rational factor restores constancy (Figure 6: ``f: x``, ``g: 2x``,
``h: 4x``, ``f_up: 2x``).  Alignment maps each stage's dimensions onto the
group's canonical dimensions (those of the *root*, the group's sink).

:func:`compute_group_transforms` propagates scales and dimension maps
backwards from the root along intra-group edges.  It returns ``None`` when
the group cannot be aligned/scaled — data-dependent accesses, reflected or
multi-variable indices, or conflicting requirements like the paper's
``f(x) = g(x/2) + g(x/4)`` example — in which case the grouping heuristic
must not merge across the offending edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.lang.constructs import Variable
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR, StageIR
from repro.poly.imap import Schedule, ScheduleDim


@dataclass(frozen=True)
class StageTransform:
    """Placement of one stage in the group's coordinate space.

    ``dim_map[d]`` is the group dimension that stage dimension ``d`` maps
    to; ``scales[d]`` the rational scaling of that dimension.  A stage
    point ``x`` has group coordinate ``scales[d] * x[d]`` along
    ``dim_map[d]``.
    """

    dim_map: tuple[int, ...]
    scales: tuple[Fraction, ...]

    @property
    def ndim(self) -> int:
        return len(self.dim_map)

    def group_scale(self, group_dim: int) -> Fraction | None:
        """Scale of the stage dimension mapped to ``group_dim``."""
        for d, g in enumerate(self.dim_map):
            if g == group_dim:
                return self.scales[d]
        return None

    def stage_dim(self, group_dim: int) -> int | None:
        for d, g in enumerate(self.dim_map):
            if g == group_dim:
                return d
        return None


class GroupTransforms:
    """Alignment/scaling result for a whole group."""

    def __init__(self, root: Stage, transforms: dict[Stage, StageTransform]):
        self.root = root
        self.transforms = transforms

    def __getitem__(self, stage: Stage) -> StageTransform:
        return self.transforms[stage]

    def __contains__(self, stage: Stage) -> bool:
        return stage in self.transforms

    @property
    def ndim(self) -> int:
        return self.transforms[self.root].ndim

    def scaled_schedule(self, stage: Stage, level: int) -> Schedule:
        """The stage's schedule after alignment and scaling (for display)."""
        t = self.transforms[stage]
        dims: list[ScheduleDim | None] = [None] * t.ndim
        for d, g in enumerate(t.dim_map):
            dims[g] = ScheduleDim(stage.variables[d], t.scales[d])
        assert all(d is not None for d in dims)
        return Schedule(level, tuple(dims))  # type: ignore[arg-type]


def _access_requirements(consumer_ir: StageIR, producer: Stage):
    """Per-access (producer_dim -> binding) maps.

    A binding is either ``(var, coeff, divisor)`` for an index driven by
    one consumer variable, or ``("const", value)`` for a constant index
    (e.g. the alpha channel read ``d(3, x, y)``) — the latter yields a
    bounded dependence when the consumer dimension it pairs with has
    constant extent, which :func:`repro.compiler.deps.edge_dependences`
    verifies.

    Returns ``None`` when any access to the producer is unusable for
    constant dependences: non-affine, index mixing several variables,
    parametric offsets, or non-positive variable coefficients.
    """
    requirement_sets = []
    for access in consumer_ir.accesses_to(producer):
        mapping = {}
        for d, form in enumerate(access.forms):
            if form is None:
                return None
            if form.aff.parameters():
                return None  # parametric offset -> non-constant dependence
            variables = form.aff.variables()
            if len(variables) == 0:
                mapping[d] = ("const", form.aff.const / form.divisor)
                continue
            if len(variables) != 1:
                return None
            var = variables[0]
            coeff = form.aff.coefficient(var)
            if coeff <= 0:
                return None  # reflections/degenerate accesses not alignable
            mapping[d] = (var, coeff, form.divisor)
        if len(mapping) != len(access.forms):
            return None
        # each producer dim must bind a distinct consumer variable
        bound_vars = [b[0] for b in mapping.values() if b[0] != "const"]
        if len(set(map(id, bound_vars))) != len(bound_vars):
            return None
        requirement_sets.append(mapping)
    return requirement_sets


def compute_group_transforms(ir: PipelineIR, stages: Iterable[Stage],
                             root: Stage) -> GroupTransforms | None:
    """Align and scale all ``stages`` against the ``root`` stage.

    Walks intra-group edges backwards from the root.  For an access whose
    ``d``-th index is ``floor((a * v + b) / m)`` with consumer variable
    ``v`` of scale ``s_c``, the producer's dimension ``d`` must have scale
    ``s_p = s_c * m / a`` for the dependence along that dimension to be a
    bounded constant.  Conflicting requirements (from different consumers
    or different accesses) make the group infeasible.
    """
    group = set(stages)
    if root not in group:
        raise ValueError("the root stage must be part of the group")

    root_ir = ir[root]
    if root_ir.is_accumulator or root_ir.is_self_referential:
        return None
    transforms: dict[Stage, StageTransform] = {
        root: StageTransform(tuple(range(root_ir.ndim)),
                             tuple(Fraction(1) for _ in range(root_ir.ndim)))}

    # Process consumers before their producers (reverse topological order).
    order = [s for s in ir.graph.topological_order() if s in group]
    for consumer in reversed(order):
        if consumer not in transforms:
            # Not reachable from the root through in-group consumers: the
            # candidate set is not a well-formed group.
            return None
        consumer_ir = ir[consumer]
        ct = transforms[consumer]
        var_info: dict[int, tuple[int, Fraction]] = {}
        for d, var in enumerate(consumer_ir.variables):
            var_info[id(var)] = (ct.dim_map[d], ct.scales[d])
        for producer in ir.graph.producers(consumer):
            if producer not in group:
                continue
            producer_ir = ir[producer]
            if producer_ir.is_accumulator or producer_ir.is_self_referential:
                return None
            requirement_sets = _access_requirements(consumer_ir, producer)
            if requirement_sets is None:
                return None
            for mapping in requirement_sets:
                dim_map: list[int] = []
                scales: list[Fraction] = []
                feasible = True
                for d in range(producer_ir.ndim):
                    binding = mapping[d]
                    if binding[0] == "const":
                        # positional fallback: a constant index pins the
                        # producer dim to the consumer's d-th dimension
                        if d >= consumer_ir.ndim:
                            feasible = False
                            break
                        dim_map.append(ct.dim_map[d])
                        scales.append(ct.scales[d])
                        continue
                    var, coeff, divisor = binding
                    group_dim, consumer_scale = var_info[id(var)]
                    dim_map.append(group_dim)
                    scales.append(consumer_scale * divisor / coeff)
                if not feasible:
                    return None
                if len(set(dim_map)) != len(dim_map):
                    return None  # two producer dims landing on one group dim
                candidate = StageTransform(tuple(dim_map), tuple(scales))
                existing = transforms.get(producer)
                if existing is None:
                    transforms[producer] = candidate
                elif existing != candidate:
                    return None  # e.g. g(x/2) + g(x/4): conflicting scales

    if set(transforms) != group:
        return None
    return GroupTransforms(root, transforms)
