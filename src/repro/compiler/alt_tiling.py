"""Alternative tiling strategies for comparison (paper Figure 5).

PolyMage uses overlapped tiling; Figure 5 contrasts it with split and
parallelogram tiling on a fused group.  This module models all three on
a compiled group and reports the properties the paper's table lists:

==============  ===========  ========  ==========
strategy        parallelism  locality  redundancy
==============  ===========  ========  ==========
overlapped      yes          yes       yes (overlap recomputed)
split           yes (2 phases)  yes    no (boundary values kept live)
parallelogram   no (wavefront)  yes    no
==============  ===========  ========  ==========

The statistics are exact counts for a given tile size and group, derived
from the same dependence analysis the real tiler uses, so the trade-off
curves of Figure 5 can be regenerated quantitatively (see
``python -m repro.bench.figure5``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.compiler.align_scale import GroupTransforms
from repro.compiler.deps import edge_dependences
from repro.compiler.tiling import group_halos, group_liveouts
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR


@dataclass(frozen=True)
class TilingStats:
    """Quantitative properties of one tiling strategy on one group."""

    strategy: str
    #: tiles executable concurrently in the widest phase
    concurrent_tiles: int
    #: number of sequential phases (1 = fully parallel; n_tiles = wavefront)
    phases: int
    #: extra points computed, as a fraction of the non-redundant work
    redundancy: float
    #: values that must stay live across tile boundaries (communication)
    cross_tile_live_values: int

    @property
    def parallel(self) -> bool:
        return self.concurrent_tiles > 1 and self.phases <= 2


def _group_geometry(ir: PipelineIR, transforms: GroupTransforms,
                    stages: Iterable[Stage], dim: int,
                    params: Mapping) -> tuple[int, Fraction, Fraction, int]:
    """(extent, max left reach, max right reach, n_stages) along ``dim``."""
    stages = list(stages)
    left = Fraction(0)
    right = Fraction(0)
    extent = 0
    for consumer in stages:
        for producer in ir.graph.producers(consumer):
            if producer not in set(stages):
                continue
            dep = edge_dependences(ir, transforms, producer, consumer)
            rng = dep.ranges[dim]
            left = max(left, rng.hi)
            right = max(right, -rng.lo)
    for stage in stages:
        box = ir[stage].domain.concretize(params)
        if box is not None:
            d = transforms[stage].stage_dim(dim)
            if d is not None:
                extent = max(extent, box[d].size)
    return extent, left, right, len(stages)


def overlapped_stats(ir: PipelineIR, transforms: GroupTransforms,
                     stages: Iterable[Stage], dim: int, tile: int,
                     params: Mapping) -> TilingStats:
    """Figure 5 statistics for overlapped tiling of the group."""
    stages = list(stages)
    extent, left, right, _ = _group_geometry(ir, transforms, stages, dim,
                                             params)
    n_tiles = max(1, math.ceil(extent / tile))
    halos = group_halos(ir, transforms, stages)
    redundant = 0
    total = 0
    for stage in stages:
        box = ir[stage].domain.concretize(params)
        if box is None:
            continue
        d = transforms[stage].stage_dim(dim)
        if d is None:
            continue
        size = box[d].size
        width = halos[stage].widths()[dim]
        per_tile_extra = float(width)
        redundant += per_tile_extra * (n_tiles - 1)
        total += size
    return TilingStats("overlapped", n_tiles, 1,
                       redundant / max(total, 1), 0)


def split_stats(ir: PipelineIR, transforms: GroupTransforms,
                stages: Iterable[Stage], dim: int, tile: int,
                params: Mapping) -> TilingStats:
    """Figure 5 statistics for two-phase split tiling."""
    stages = list(stages)
    extent, left, right, n_stages = _group_geometry(ir, transforms, stages,
                                                    dim, params)
    n_tiles = max(1, math.ceil(extent / tile))
    # upward tiles in phase 1, downward in phase 2; boundary values stay
    # live: each phase boundary needs the dependence reach per level
    reach = float(left + right)
    live = int(reach * (n_stages - 1)) * max(0, n_tiles - 1)
    return TilingStats("split", math.ceil(n_tiles / 2) or 1, 2, 0.0, live)


def parallelogram_stats(ir: PipelineIR, transforms: GroupTransforms,
                        stages: Iterable[Stage], dim: int, tile: int,
                        params: Mapping) -> TilingStats:
    """Figure 5 statistics for skewed (wavefront) parallelogram tiling."""
    stages = list(stages)
    extent, left, right, n_stages = _group_geometry(ir, transforms, stages,
                                                    dim, params)
    n_tiles = max(1, math.ceil(extent / tile))
    # skewed tiles depend on their predecessor: wavefront execution, and
    # with group height << tile size this degenerates to sequential tiles
    reach = float(max(left, right))
    live = int(reach * (n_stages - 1)) * max(0, n_tiles - 1)
    return TilingStats("parallelogram", 1, n_tiles, 0.0, live)


def compare_strategies(ir: PipelineIR, transforms: GroupTransforms,
                       stages: Iterable[Stage], dim: int, tile: int,
                       params: Mapping) -> list[TilingStats]:
    """Figure 5's comparison table for one group and tile size."""
    stages = list(stages)
    return [
        overlapped_stats(ir, transforms, stages, dim, tile, params),
        split_stats(ir, transforms, stages, dim, tile, params),
        parallelogram_stats(ir, transforms, stages, dim, tile, params),
    ]
