"""Greedy overlap-bounded grouping of pipeline stages (Algorithm 1).

Starting from singleton groups, the heuristic repeatedly merges a group
into its *single* child group when (a) the merged group can be aligned and
scaled so all internal dependences are bounded constants, and (b) the
redundant computation introduced by overlapped tiling — the relative
overlap — stays below the threshold.  Candidates are visited in decreasing
size order (by the parameter estimates).  The loop restarts after every
merge and terminates when no merge applies; since each merge reduces the
number of groups by one, at most ``|S| - 1`` iterations occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

import networkx as nx

from repro.compiler.align_scale import GroupTransforms, compute_group_transforms
from repro.compiler.tiling import (
    Halo, estimate_relative_overlap, group_halos, group_liveouts,
    naive_halos,
)
from repro.lang.constructs import Parameter
from repro.observe.decisions import DecisionLog, MergeDecision
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR


@dataclass
class Group:
    """A set of stages fused together with overlapped tiling.

    ``transforms`` is ``None`` for groups that cannot be tiled (single
    accumulator or self-referential stages); such groups are executed with
    their natural loop structure.
    """

    stages: list[Stage]
    root: Stage
    transforms: GroupTransforms | None
    halos: dict[Stage, Halo] = field(default_factory=dict)

    @property
    def is_tiled(self) -> bool:
        return self.transforms is not None and len(self.stages) >= 1

    @property
    def name(self) -> str:
        return "+".join(s.name for s in self.stages)

    def __contains__(self, stage: Stage) -> bool:
        return stage in set(self.stages)


class GroupingResult:
    """Outcome of Algorithm 1: groups in a valid execution order.

    ``decisions`` is the structured log of every merge candidate the
    heuristic evaluated (empty when grouping was disabled), the raw data
    behind ``PipelinePlan.explain()``.
    """

    def __init__(self, groups: list[Group], ir: PipelineIR,
                 decisions: list[MergeDecision] | None = None):
        self.groups = groups
        self.ir = ir
        self.decisions: list[MergeDecision] = list(decisions or [])
        self.assignment: dict[Stage, Group] = {}
        for group in groups:
            for stage in group.stages:
                self.assignment[stage] = group

    def group_of(self, stage: Stage) -> Group:
        return self.assignment[stage]

    def summary(self) -> str:
        """One line per group: kind and member stages."""
        lines = []
        for i, group in enumerate(self.groups):
            kind = "tiled" if group.is_tiled and len(group.stages) > 1 else \
                ("single" if group.is_tiled else "untiled")
            lines.append(f"group {i} ({kind}): {group.name}")
        return "\n".join(lines)

    def dot(self) -> str:
        """Graphviz rendering with one cluster per group — the dashed
        boxes of the paper's Figure 8."""
        lines = ["digraph grouping {", "  compound=true;"]
        for i, group in enumerate(self.groups):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append('    style=dashed;')
            lines.append(f'    label="group {i}";')
            for stage in group.stages:
                lines.append(f'    "{stage.name}";')
            lines.append("  }")
        for img in self.ir.graph.inputs:
            lines.append(f'  "{img.name}" [shape=box];')
        emitted = set()
        from repro.pipeline.graph import stage_references
        for stage in self.ir.graph.stages:
            for ref in stage_references(stage):
                src = ref.function
                key = (id(src), id(stage))
                if key in emitted or src is stage:
                    continue
                emitted.add(key)
                lines.append(f'  "{src.name}" -> "{stage.name}";')
        lines.append("}")
        return "\n".join(lines)


def _is_unmergeable(ir: PipelineIR, stage: Stage) -> bool:
    stage_ir = ir[stage]
    return stage_ir.is_accumulator or stage_ir.is_self_referential


def _group_size(ir: PipelineIR, group: Group,
                estimates: Mapping[Parameter, int]) -> int:
    return sum(ir[s].size_estimate(estimates) for s in group.stages)


def _children(ir: PipelineIR, assignment: Mapping[Stage, Group],
              group: Group) -> set[int]:
    """Ids of distinct child groups of ``group`` in the condensed graph."""
    out: set[int] = set()
    members = set(group.stages)
    for stage in group.stages:
        for consumer in ir.graph.consumers(stage):
            if consumer not in members:
                out.add(id(assignment[consumer]))
    return out


def group_pipeline(ir: PipelineIR, estimates: Mapping[Parameter, int],
                   tile_sizes: Sequence[int],
                   overlap_threshold: float | Fraction,
                   min_size: int = 0,
                   tight_overlap: bool = True,
                   decision_log: DecisionLog | None = None,
                   hints=None) -> GroupingResult:
    """Run Algorithm 1 and return the final grouping.

    ``tile_sizes`` is indexed per group dimension (cycled if a group has
    more dimensions).  ``min_size`` optionally keeps very small groups
    (lookup tables and the like) from initiating merges, mirroring the
    paper's use of the estimates.  Every merge candidate the loop
    evaluates — accepted or not, with its overlap cost — is recorded in
    ``decision_log`` (one is created if not supplied) and surfaced on the
    returned :class:`GroupingResult`.

    ``hints`` (a :class:`~repro.schedule.ScheduleHints`) constrains the
    enumeration: merges that would co-locate a ``forbid_group`` pair are
    rejected outright; candidates spanning a ``force_group`` set are
    visited first and exempted from the *heuristic* gates (``min_size``
    and the overlap threshold) — but never from legality: a hint-forced
    merge still needs alignment/scaling and constant halos, exactly like
    an automatic one.  Hint-influenced decisions are recorded with
    ``hinted=True``.
    """
    threshold = Fraction(overlap_threshold).limit_denominator(10 ** 6)
    log = decision_log if decision_log is not None else DecisionLog()
    if hints is not None and hints.is_empty():
        hints = None

    groups: list[Group] = []
    assignment: dict[Stage, Group] = {}
    for stage in ir.graph.topological_order():
        transforms = None
        if not _is_unmergeable(ir, stage):
            transforms = compute_group_transforms(ir, [stage], stage)
        group = Group([stage], stage, transforms)
        groups.append(group)
        assignment[stage] = group

    id_to_group = {id(g): g for g in groups}

    round_no = 0
    while True:
        round_no += 1
        converged = True
        # candidate groups: exactly one child group
        candidates = []
        for group in groups:
            children = _children(ir, assignment, group)
            if len(children) != 1:
                continue
            child = id_to_group[children.pop()]
            candidates.append((group, child))

        def _forced(gc) -> bool:
            return hints is not None and hints.forces_merge(
                (s.name for s in gc[0].stages),
                (s.name for s in gc[1].stages))

        # hint-forced candidates first, then decreasing size (Algorithm 1)
        candidates.sort(key=lambda gc: (not _forced(gc),
                                        -_group_size(ir, gc[0], estimates)))

        for group, child in candidates:
            size = _group_size(ir, group, estimates)
            forced = _forced((group, child))

            def record(accepted: bool, reason: str, overlap=None,
                       diagnostic=None, hinted=False,
                       _group=group, _child=child, _size=size):
                log.record(MergeDecision(
                    round_no, _group.name, _child.name, _size,
                    float(overlap) if overlap is not None else None,
                    float(threshold), accepted, reason,
                    diagnostic=diagnostic, hinted=hinted))

            if hints is not None and hints.forbids_merge(
                    (s.name for s in group.stages),
                    (s.name for s in child.stages)):
                record(False, "merge forbidden by scheduling hint",
                       hinted=True)
                continue
            if min_size and size < min_size and not forced:
                record(False, f"group size {size} below "
                              f"min_group_size {min_size}")
                continue
            if any(_is_unmergeable(ir, s) for s in group.stages):
                record(False, "group holds an accumulator or "
                              "self-referential stage", hinted=forced)
                continue
            if any(_is_unmergeable(ir, s) for s in child.stages):
                record(False, "child holds an accumulator or "
                              "self-referential stage", hinted=forced)
                continue
            merged_stages = [
                s for s in ir.graph.topological_order()
                if s in set(group.stages) | set(child.stages)]
            transforms = compute_group_transforms(ir, merged_stages,
                                                  child.root)
            if transforms is None:
                # cannot make dependence vectors constant; a hint-forced
                # candidate fails here too — hints never bypass legality
                record(False, "alignment/scaling failed: no constant "
                              "dependence vectors",
                       diagnostic="RV003 dependence not constant under "
                                  "any alignment/scaling of the merged "
                                  "group", hinted=forced)
                continue
            from repro.compiler.deps import NonConstantDependence
            halo_fn = group_halos if tight_overlap else naive_halos
            try:
                halos = halo_fn(ir, transforms, merged_stages)
            except NonConstantDependence as exc:
                # constant-index dependence over parametric extent
                record(False, "non-constant dependence range over "
                              "parametric extent",
                       diagnostic=f"RV003 {exc}", hinted=forced)
                continue
            relative_overlap = estimate_relative_overlap(halos, tile_sizes)
            if relative_overlap >= threshold and not forced:
                # too much redundant computation
                record(False, "relative overlap exceeds threshold",
                       overlap=relative_overlap)
                continue
            if forced:
                record(True, "merge forced by scheduling hint",
                       overlap=relative_overlap, hinted=True)
            else:
                record(True, "overlap within threshold",
                       overlap=relative_overlap)
            merged = Group(merged_stages, child.root, transforms, halos)
            groups.remove(group)
            groups.remove(child)
            groups.append(merged)
            del id_to_group[id(group)], id_to_group[id(child)]
            id_to_group[id(merged)] = merged
            for stage in merged_stages:
                assignment[stage] = merged
            converged = False
            break
        if converged:
            break

    # Fill halos for groups that never merged.
    halo_fn = group_halos if tight_overlap else naive_halos
    for group in groups:
        if group.transforms is not None and not group.halos:
            group.halos = halo_fn(ir, group.transforms, group.stages)

    return GroupingResult(_execution_order(ir, groups, assignment), ir,
                          decisions=log.decisions)


def _execution_order(ir: PipelineIR, groups: list[Group],
                     assignment: Mapping[Stage, Group]) -> list[Group]:
    """Topologically sort the condensed group graph."""
    condensed = nx.DiGraph()
    for group in groups:
        condensed.add_node(id(group))
    for producer, consumer in ir.graph.edges():
        gp, gc = assignment[producer], assignment[consumer]
        if gp is not gc:
            condensed.add_edge(id(gp), id(gc))
    id_to_group = {id(g): g for g in groups}
    order = list(nx.topological_sort(condensed))
    return [id_to_group[i] for i in order]
