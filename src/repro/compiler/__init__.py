"""The PolyMage middle end (paper Section 3).

Phases: initial schedules (:mod:`repro.compiler.schedule`), alignment and
scaling (:mod:`repro.compiler.align_scale`), dependence analysis
(:mod:`repro.compiler.deps`), overlapped tiling (:mod:`repro.compiler.tiling`),
grouping (:mod:`repro.compiler.grouping`), storage mapping
(:mod:`repro.compiler.storage`), all assembled by
:func:`repro.compiler.plan.compile_plan`.
"""

from repro.compiler.align_scale import (
    GroupTransforms, StageTransform, compute_group_transforms,
)
from repro.compiler.deps import (
    DepRange, EdgeDependence, dependence_vectors, edge_dependences,
    group_dependences,
)
from repro.compiler.grouping import Group, GroupingResult, group_pipeline
from repro.compiler.options import (
    OVERLAP_THRESHOLD_CHOICES, TILE_SIZE_CHOICES, CompileOptions,
)
from repro.compiler.plan import GroupPlan, PipelinePlan, compile_plan
from repro.compiler.schedule import initial_schedule, initial_schedules
from repro.compiler.storage import (
    FULL, SCRATCH, StorageDecision, classify_storage,
)
from repro.compiler.tiling import (
    Halo, TileShape, compute_tile_regions, estimate_relative_overlap,
    group_halos, group_liveouts, naive_halos, stage_tile_region,
    tile_shape_slopes,
)

__all__ = [
    "CompileOptions", "DepRange", "EdgeDependence", "FULL", "Group",
    "GroupPlan", "GroupTransforms", "GroupingResult", "Halo",
    "OVERLAP_THRESHOLD_CHOICES", "PipelinePlan", "SCRATCH", "SCRATCH",
    "StageTransform", "StorageDecision", "TILE_SIZE_CHOICES", "TileShape",
    "classify_storage", "compile_plan", "compute_group_transforms",
    "compute_tile_regions", "dependence_vectors", "edge_dependences",
    "estimate_relative_overlap", "group_dependences", "group_halos",
    "group_liveouts", "group_pipeline", "initial_schedule",
    "initial_schedules", "naive_halos", "stage_tile_region",
    "tile_shape_slopes",
]
