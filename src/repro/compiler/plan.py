"""Assembly of the final execution plan.

`compile_plan` runs the whole middle end — inlining, IR lowering, bounds
checking, grouping, alignment/scaling, storage mapping — and packages the
result as a :class:`PipelinePlan`, the single structure both execution
backends (NumPy interpreter and C code generator) consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping, Sequence

from repro.compiler.align_scale import GroupTransforms, compute_group_transforms
from repro.compiler.grouping import Group, GroupingResult, group_pipeline
from repro.compiler.options import CompileOptions
from repro.compiler.storage import (
    FULL, SCRATCH, StorageDecision, classify_storage,
)
from repro.compiler.tiling import group_liveouts
from repro.lang.constructs import Parameter
from repro.observe.trace import Tracer, get_tracer
from repro.pipeline.boundscheck import check_bounds
from repro.pipeline.graph import PipelineGraph, Stage
from repro.pipeline.inline import inline_pipeline
from repro.pipeline.ir import PipelineIR
from repro.poly.interval import IntInterval


@dataclass
class GroupPlan:
    """One group, ready for execution or code generation."""

    group: Group
    ordered_stages: list[Stage]
    liveouts: list[Stage]
    tile_sizes: tuple[int, ...]

    @property
    def is_tiled(self) -> bool:
        return self.group.is_tiled

    @property
    def transforms(self) -> GroupTransforms | None:
        return self.group.transforms

    def tile_space(self, ir: PipelineIR,
                   param_env: Mapping[Hashable, int]
                   ) -> tuple[IntInterval, ...] | None:
        """Hull, per group dimension, of the live-outs' scaled domains."""
        assert self.transforms is not None
        ndim = self.transforms.ndim
        los: list[Fraction | None] = [None] * ndim
        his: list[Fraction | None] = [None] * ndim
        for stage in self.liveouts:
            box = ir[stage].domain.concretize(param_env)
            if box is None:
                continue
            t = self.transforms[stage]
            for d in range(len(box)):
                g = t.dim_map[d]
                scale = t.scales[d]
                lo = scale * box[d].lo
                hi = scale * box[d].hi
                los[g] = lo if los[g] is None else min(los[g], lo)
                his[g] = hi if his[g] is None else max(his[g], hi)
        if any(l is None for l in los):
            return None
        return tuple(IntInterval(math.floor(l), math.ceil(h))
                     for l, h in zip(los, his))

    def tiles(self, ir: PipelineIR, param_env: Mapping[Hashable, int]):
        """Iterate over tile boxes (group coordinates) covering the group."""
        space = self.tile_space(ir, param_env)
        if space is None:
            return
        ndim = len(space)
        ranges = []
        for d in range(ndim):
            tau = self.tile_sizes[d]
            first = space[d].lo // tau
            last = space[d].hi // tau
            ranges.append(range(first, last + 1))

        def rec(d: int, prefix: list[IntInterval]):
            if d == ndim:
                yield tuple(prefix)
                return
            tau = self.tile_sizes[d]
            for t in ranges[d]:
                prefix.append(IntInterval(t * tau, (t + 1) * tau - 1))
                yield from rec(d + 1, prefix)
                prefix.pop()

        yield from rec(0, [])


def _fmt_fraction(value: Fraction) -> str:
    return str(value.numerator) if value.denominator == 1 else str(value)


@dataclass
class PipelinePlan:
    """The complete compiled form of a pipeline."""

    ir: PipelineIR
    grouping: GroupingResult
    group_plans: list[GroupPlan]
    storage: dict[Stage, StorageDecision]
    options: CompileOptions
    estimates: dict[Parameter, int]
    #: original user-facing output stage -> (possibly cloned) plan stage
    output_map: dict[Stage, Stage]
    inlined_names: tuple[str, ...]
    #: populated when compiled with ``check != "none"`` (a
    #: :class:`repro.verify.VerifyReport`)
    verify_report: object | None = None
    #: populated when compiled with ``options.narrow``: stage ->
    #: :class:`repro.analysis.ranges.ValueInterval` derived under the
    #: compile-time estimates
    value_ranges: dict | None = None
    #: populated when compiled with ``options.narrow``: stage -> narrowed
    #: storage :class:`~repro.lang.types.DType` (absent stages keep their
    #: declared type)
    narrowing: dict | None = None
    #: the :class:`~repro.schedule.ScheduleHints` the plan was compiled
    #: under (``None`` for an unhinted compile); audited post hoc by the
    #: RV6xx verify family
    hints: object | None = None

    @property
    def outputs(self) -> list[Stage]:
        return list(self.output_map.values())

    def stage_by_name(self, name: str) -> Stage:
        for stage in self.ir.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}")

    def group_halo_widths(self, gp: GroupPlan) -> tuple[Fraction, ...]:
        """Widest halo per group dimension over the group's stages."""
        if gp.transforms is None:
            return ()
        ndim = gp.transforms.ndim
        widths = [Fraction(0)] * ndim
        for stage in gp.ordered_stages:
            halo = gp.group.halos.get(stage)
            if halo is None:
                continue
            for g, width in enumerate(halo.widths()):
                widths[g] = max(widths[g], width)
        return tuple(widths)

    def _group_line(self, i: int, gp: GroupPlan) -> str:
        if gp.is_tiled:
            tiles = "x".join(str(t) for t in gp.tile_sizes)
            halo = ",".join(_fmt_fraction(w)
                            for w in self.group_halo_widths(gp))
            kind = f"tiled {tiles}, halo {halo or '0'}"
        else:
            kind = "untiled"
        scratch = [s.name for s in gp.ordered_stages
                   if self.storage[s].kind == SCRATCH]
        return (f"  group {i} [{kind}] stages: "
                f"{', '.join(s.name for s in gp.ordered_stages)}"
                + (f" | scratch: {', '.join(scratch)}" if scratch else ""))

    def summary(self) -> str:
        """Human-readable description of groups (with their tile sizes and
        halo widths), storage and inlining."""
        lines = [f"pipeline: {len(self.ir.stages)} stages, "
                 f"{len(self.group_plans)} groups "
                 f"(inlined: {', '.join(self.inlined_names) or 'none'})"]
        for i, gp in enumerate(self.group_plans):
            lines.append(self._group_line(i, gp))
        if self.options.specialize:
            lines.append(self._specialize_line())
        return "\n".join(lines)

    def _specialize_line(self) -> str:
        """One-line fast-path tally for :meth:`summary`."""
        # imported lazily: codegen.opt depends on pipeline/poly modules
        # that import this module's neighbours
        from repro.codegen.opt import specialization_report
        infos = specialization_report(self)
        n_guarded = sum(1 for fi in infos if fi.guarded)
        n_dropped = sum(fi.n_dropped for fi in infos)
        n_reduced = sum(fi.n_reduced for fi in infos)
        fractions = [fi.interior_fraction for fi in infos
                     if fi.guarded and fi.interior_fraction is not None]
        line = (f"  fast-path: {len(infos)} specialized stages, "
                f"{n_guarded} guarded, {n_dropped} clamps eliminated, "
                f"{n_reduced} divisions reduced")
        if fractions:
            line += (", interior covers "
                     f"{min(fractions) * 100.0:.0f}%+ of guarded domains")
        return line

    def explain(self) -> str:
        """Replay of the compiler's decisions, not just their outcome.

        Shows every merge candidate Algorithm 1 evaluated — with its
        measured relative overlap and accept/reject reason — followed by
        the final groups (as in :meth:`summary`) and each stage's storage
        classification with its justification.
        """
        opt = self.options
        tiles = "x".join(str(t) for t in opt.tile_sizes)
        lines = [f"pipeline: {len(self.ir.stages)} stages, "
                 f"{len(self.group_plans)} groups "
                 f"(inlined: {', '.join(self.inlined_names) or 'none'})",
                 f"options: tiles={tiles} "
                 f"overlap_threshold={opt.overlap_threshold} "
                 f"group={opt.group} tile={opt.tile} "
                 f"tight_overlap={opt.tight_overlap} "
                 f"specialize={opt.specialize} simd={opt.simd}"]
        if self.hints is not None:
            lines.append(f"hints: {self.hints.describe()}")
        lines += ["", "== grouping decisions (Algorithm 1) =="]
        decisions = self.grouping.decisions
        if not decisions:
            lines.append("(no merge candidates were evaluated"
                         + ("" if opt.group else "; grouping disabled")
                         + ")")
        for decision in decisions:
            lines.append(decision.render())
        hinted = [d for d in decisions if d.hinted]
        if hinted:
            n_forced = sum(1 for d in hinted if d.accepted)
            n_forbidden = sum(1 for d in hinted if not d.accepted)
            lines.append(f"({n_forced} merge(s) hint-forced, "
                         f"{n_forbidden} candidate(s) hint-rejected; "
                         f"all other decisions automatic)")
        lines += ["", "== final groups =="]
        for i, gp in enumerate(self.group_plans):
            lines.append(self._group_line(i, gp))
        lines += ["", "== storage =="]
        for gp in self.group_plans:
            for stage in gp.ordered_stages:
                decision = self.storage[stage]
                lines.append(f"  {stage.name}: {decision.kind} "
                             f"({decision.reason})")
        if opt.specialize:
            from repro.codegen.opt import specialization_report
            lines += ["", "== fast-path specialization =="]
            infos = specialization_report(self)
            if not infos:
                lines.append("(no specializable stages)")
            for fi in infos:
                lines.append(f"  {fi.render()}")
        if self.value_ranges is not None:
            lines += ["", "== value ranges & narrowing =="]
            narrowing = self.narrowing or {}
            for gp in self.group_plans:
                for stage in gp.ordered_stages:
                    r = self.value_ranges.get(stage)
                    if r is None:
                        continue
                    line = f"  {stage.name}: {r!r}"
                    target = narrowing.get(stage)
                    if target is not None:
                        line += (f" -> narrowed {stage.dtype.name} "
                                 f"to {target.name}")
                    lines.append(line)
            if not narrowing:
                lines.append("  (no stage narrowed)")
        return "\n".join(lines)


def compile_plan(outputs: Sequence[Stage],
                 estimates: Mapping[Parameter, int],
                 options: CompileOptions | None = None,
                 tracer: Tracer | None = None,
                 check: str = "none",
                 hints=None) -> PipelinePlan:
    """Run the middle end and produce a :class:`PipelinePlan`.

    ``outputs`` are the live-out stages; ``estimates`` map every parameter
    to a representative value (the generated implementation stays valid
    for all parameter values — estimates only guide the heuristics).
    Every phase is traced on ``tracer`` (the process-global tracer when
    omitted; spans cost nothing while it stays disabled).

    ``check`` runs the static plan verifier (:mod:`repro.verify`) on the
    result: ``"none"`` skips it, ``"warn"`` attaches the report as
    ``plan.verify_report``, ``"strict"`` additionally raises
    :class:`repro.verify.VerifyError` on any error-severity finding.

    ``hints`` is an optional :class:`~repro.schedule.ScheduleHints`:
    ``inline`` restricts the inlining pass to the named stages,
    ``force_group``/``forbid_group`` constrain Algorithm 1's candidate
    enumeration (never its legality checks), and ``tile_override``
    replaces the tile sizes of any group containing an overridden stage.
    The plan records the hints (``plan.hints``) and the RV6xx verify
    family audits that every directive was sound and actually applied.
    """
    if check not in ("none", "warn", "strict"):
        raise ValueError(f"check must be 'none', 'warn' or 'strict', "
                         f"got {check!r}")
    options = options or CompileOptions()
    tracer = tracer if tracer is not None else get_tracer()
    estimates = dict(estimates)
    original_outputs = tuple(outputs)
    if hints is not None and hints.is_empty():
        hints = None

    with tracer.span("compile_plan", cat="compiler") as root:
        with tracer.span("inline", cat="compiler") as sp:
            hint_inline = set(hints.inline) if hints is not None else set()
            if options.inline or hint_inline:
                # an inline hint restricts the pass to the named stages
                # (and runs it even when options.inline is off)
                only = hint_inline if hint_inline else None
                inlined = inline_pipeline(original_outputs, estimates,
                                          only=only)
                plan_outputs = inlined.outputs
                inlined_names = tuple(s.name for s in inlined.inlined)
            else:
                plan_outputs = original_outputs
                inlined_names = ()
            sp.set(inlined=len(inlined_names))

        with tracer.span("bounds_check", cat="compiler"):
            graph = PipelineGraph(plan_outputs)
            ir = PipelineIR(graph)
            check_bounds(ir, estimates)

        if options.group:
            with tracer.span("grouping", cat="compiler") as sp:
                grouping = group_pipeline(ir, estimates, options.tile_sizes,
                                          options.overlap_threshold,
                                          options.min_group_size,
                                          options.tight_overlap,
                                          hints=hints)
                sp.set(n_groups=len(grouping.groups),
                       merges=sum(1 for d in grouping.decisions
                                  if d.accepted),
                       rejections=sum(1 for d in grouping.decisions
                                      if not d.accepted))
        else:
            with tracer.span("align_scale", cat="compiler"):
                from repro.compiler.tiling import group_halos
                groups = []
                for stage in graph.topological_order():
                    stage_ir = ir[stage]
                    transforms = None
                    if options.tile and not (stage_ir.is_accumulator
                                             or stage_ir.is_self_referential):
                        transforms = compute_group_transforms(ir, [stage],
                                                              stage)
                    group = Group([stage], stage, transforms)
                    if transforms is not None:
                        group.halos = group_halos(ir, transforms, [stage])
                    groups.append(group)
                grouping = GroupingResult(groups, ir)

        if not options.tile:
            # Tiling disabled: demote every group to untiled execution.
            for group in grouping.groups:
                group.transforms = None

        with tracer.span("storage", cat="compiler") as sp:
            storage = classify_storage(ir, grouping)
            sp.set(scratch=sum(1 for d in storage.values()
                               if d.kind == SCRATCH))

        with tracer.span("plan_assembly", cat="compiler"):
            group_plans = []
            for group in grouping.groups:
                ordered = [s for s in graph.topological_order()
                           if s in set(group.stages)]
                liveouts = group_liveouts(ir, group.stages)
                ndim = group.transforms.ndim \
                    if group.transforms is not None else 0
                tile_sizes = tuple(options.tile_size(d)
                                   for d in range(ndim))
                if hints is not None and ndim:
                    # apply a hinted tile override when the group's
                    # members agree on exactly one; conflicting
                    # overrides are left unapplied for RV602 to flag
                    overrides = {hints.tile_for(s.name)
                                 for s in group.stages} - {None}
                    if len(overrides) == 1:
                        ov = overrides.pop()
                        tile_sizes = tuple(ov[d % len(ov)]
                                           for d in range(ndim))
                group_plans.append(GroupPlan(group, ordered, liveouts,
                                             tile_sizes))
        root.set(n_stages=len(ir.stages), n_groups=len(group_plans))

    output_map = dict(zip(original_outputs, plan_outputs))
    plan = PipelinePlan(
        ir=ir,
        grouping=grouping,
        group_plans=group_plans,
        storage=storage,
        options=options,
        estimates=estimates,
        output_map=output_map,
        inlined_names=inlined_names,
        hints=hints,
    )
    if options.narrow:
        # Imported lazily: repro.analysis walks the same IR types.
        from repro.analysis.ranges import analyze_ranges, narrowing_decisions
        with tracer.span("ranges", cat="compiler") as sp:
            plan.value_ranges = analyze_ranges(plan)
            plan.narrowing = narrowing_decisions(plan, plan.value_ranges)
            sp.set(narrowed=len(plan.narrowing))
    if check != "none":
        # Imported lazily: repro.verify depends on this module.
        from repro.verify import CHECKS, VerifyError, verify_plan
        with tracer.span("verify", cat="compiler") as sp:
            # "bounds" is excluded: check_bounds already ran above on the
            # identical IR and estimates (and raised on any violation),
            # so re-running it here could never find anything new.
            report = verify_plan(
                plan, checks=tuple(c for c in CHECKS if c != "bounds"))
            sp.set(errors=len(report.errors),
                   warnings=len(report.warnings))
        plan.verify_report = report
        if check == "strict" and not report.ok:
            raise VerifyError(report)
    return plan
