"""Assembly of the final execution plan.

`compile_plan` runs the whole middle end — inlining, IR lowering, bounds
checking, grouping, alignment/scaling, storage mapping — and packages the
result as a :class:`PipelinePlan`, the single structure both execution
backends (NumPy interpreter and C code generator) consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping, Sequence

from repro.compiler.align_scale import GroupTransforms, compute_group_transforms
from repro.compiler.grouping import Group, GroupingResult, group_pipeline
from repro.compiler.options import CompileOptions
from repro.compiler.storage import (
    FULL, SCRATCH, StorageDecision, classify_storage,
)
from repro.compiler.tiling import group_liveouts
from repro.lang.constructs import Parameter
from repro.pipeline.boundscheck import check_bounds
from repro.pipeline.graph import PipelineGraph, Stage
from repro.pipeline.inline import inline_pipeline
from repro.pipeline.ir import PipelineIR
from repro.poly.interval import IntInterval


@dataclass
class GroupPlan:
    """One group, ready for execution or code generation."""

    group: Group
    ordered_stages: list[Stage]
    liveouts: list[Stage]
    tile_sizes: tuple[int, ...]

    @property
    def is_tiled(self) -> bool:
        return self.group.is_tiled

    @property
    def transforms(self) -> GroupTransforms | None:
        return self.group.transforms

    def tile_space(self, ir: PipelineIR,
                   param_env: Mapping[Hashable, int]
                   ) -> tuple[IntInterval, ...] | None:
        """Hull, per group dimension, of the live-outs' scaled domains."""
        assert self.transforms is not None
        ndim = self.transforms.ndim
        los: list[Fraction | None] = [None] * ndim
        his: list[Fraction | None] = [None] * ndim
        for stage in self.liveouts:
            box = ir[stage].domain.concretize(param_env)
            if box is None:
                continue
            t = self.transforms[stage]
            for d in range(len(box)):
                g = t.dim_map[d]
                scale = t.scales[d]
                lo = scale * box[d].lo
                hi = scale * box[d].hi
                los[g] = lo if los[g] is None else min(los[g], lo)
                his[g] = hi if his[g] is None else max(his[g], hi)
        if any(l is None for l in los):
            return None
        return tuple(IntInterval(math.floor(l), math.ceil(h))
                     for l, h in zip(los, his))

    def tiles(self, ir: PipelineIR, param_env: Mapping[Hashable, int]):
        """Iterate over tile boxes (group coordinates) covering the group."""
        space = self.tile_space(ir, param_env)
        if space is None:
            return
        ndim = len(space)
        ranges = []
        for d in range(ndim):
            tau = self.tile_sizes[d]
            first = space[d].lo // tau
            last = space[d].hi // tau
            ranges.append(range(first, last + 1))

        def rec(d: int, prefix: list[IntInterval]):
            if d == ndim:
                yield tuple(prefix)
                return
            tau = self.tile_sizes[d]
            for t in ranges[d]:
                prefix.append(IntInterval(t * tau, (t + 1) * tau - 1))
                yield from rec(d + 1, prefix)
                prefix.pop()

        yield from rec(0, [])


@dataclass
class PipelinePlan:
    """The complete compiled form of a pipeline."""

    ir: PipelineIR
    grouping: GroupingResult
    group_plans: list[GroupPlan]
    storage: dict[Stage, StorageDecision]
    options: CompileOptions
    estimates: dict[Parameter, int]
    #: original user-facing output stage -> (possibly cloned) plan stage
    output_map: dict[Stage, Stage]
    inlined_names: tuple[str, ...]

    @property
    def outputs(self) -> list[Stage]:
        return list(self.output_map.values())

    def stage_by_name(self, name: str) -> Stage:
        for stage in self.ir.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r}")

    def summary(self) -> str:
        """Human-readable description of groups, storage and inlining."""
        lines = [f"pipeline: {len(self.ir.stages)} stages, "
                 f"{len(self.group_plans)} groups "
                 f"(inlined: {', '.join(self.inlined_names) or 'none'})"]
        for i, gp in enumerate(self.group_plans):
            kind = "tiled" if gp.is_tiled else "untiled"
            scratch = [s.name for s in gp.ordered_stages
                       if self.storage[s].kind == SCRATCH]
            lines.append(
                f"  group {i} [{kind}] stages: "
                f"{', '.join(s.name for s in gp.ordered_stages)}"
                + (f" | scratch: {', '.join(scratch)}" if scratch else ""))
        return "\n".join(lines)


def compile_plan(outputs: Sequence[Stage],
                 estimates: Mapping[Parameter, int],
                 options: CompileOptions | None = None) -> PipelinePlan:
    """Run the middle end and produce a :class:`PipelinePlan`.

    ``outputs`` are the live-out stages; ``estimates`` map every parameter
    to a representative value (the generated implementation stays valid
    for all parameter values — estimates only guide the heuristics).
    """
    options = options or CompileOptions()
    estimates = dict(estimates)
    original_outputs = tuple(outputs)

    if options.inline:
        inlined = inline_pipeline(original_outputs, estimates)
        plan_outputs = inlined.outputs
        inlined_names = tuple(s.name for s in inlined.inlined)
    else:
        plan_outputs = original_outputs
        inlined_names = ()

    graph = PipelineGraph(plan_outputs)
    ir = PipelineIR(graph)
    check_bounds(ir, estimates)

    if options.group:
        grouping = group_pipeline(ir, estimates, options.tile_sizes,
                                  options.overlap_threshold,
                                  options.min_group_size,
                                  options.tight_overlap)
    else:
        from repro.compiler.tiling import group_halos
        groups = []
        for stage in graph.topological_order():
            stage_ir = ir[stage]
            transforms = None
            if options.tile and not (stage_ir.is_accumulator
                                     or stage_ir.is_self_referential):
                transforms = compute_group_transforms(ir, [stage], stage)
            group = Group([stage], stage, transforms)
            if transforms is not None:
                group.halos = group_halos(ir, transforms, [stage])
            groups.append(group)
        grouping = GroupingResult(groups, ir)

    if not options.tile:
        # Tiling disabled: demote every group to untiled execution.
        for group in grouping.groups:
            group.transforms = None

    storage = classify_storage(ir, grouping)

    group_plans = []
    for group in grouping.groups:
        ordered = [s for s in graph.topological_order()
                   if s in set(group.stages)]
        liveouts = group_liveouts(ir, group.stages)
        ndim = group.transforms.ndim if group.transforms is not None else 0
        tile_sizes = tuple(options.tile_size(d) for d in range(ndim))
        group_plans.append(GroupPlan(group, ordered, liveouts, tile_sizes))

    output_map = dict(zip(original_outputs, plan_outputs))
    return PipelinePlan(
        ir=ir,
        grouping=grouping,
        group_plans=group_plans,
        storage=storage,
        options=options,
        estimates=estimates,
        output_map=output_map,
        inlined_names=inlined_names,
    )
