"""Dependence analysis in the scaled group space (paper Sections 3.1, 3.3).

Once a group's stages are aligned and scaled, every intra-group data
dependence along a group dimension is a *bounded constant* range of
rational offsets.  For a consumer access ``floor((a*v + b) / m)`` into a
producer dimension with scales ``s_c`` (consumer) and
``s_p = s_c * m / a`` (producer), the dependence offset — consume-time
coordinate minus produce-time coordinate — lies in::

    [-s_p * b / m,  -s_p * b / m + s_p * (m - 1) / m]

A plain stencil tap (``a = m = 1``) gives the classic constant vector
``-b``; sampling accesses give narrow ranges from the floor's slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.compiler.align_scale import GroupTransforms
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR


@dataclass(frozen=True)
class DepRange:
    """Closed rational interval of dependence offsets along one dimension."""

    lo: Fraction
    hi: Fraction

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError("empty dependence range")

    def hull(self, other: "DepRange") -> "DepRange":
        return DepRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


ZERO_DEP = DepRange(Fraction(0), Fraction(0))


@dataclass(frozen=True)
class EdgeDependence:
    """All dependences from ``producer`` to ``consumer``, per group dim."""

    producer: Stage
    consumer: Stage
    ranges: tuple[DepRange, ...]

    @property
    def max_reach(self) -> Fraction:
        return max(max(abs(r.lo), abs(r.hi)) for r in self.ranges)


class NonConstantDependence(ValueError):
    """A dependence range could not be bounded (infeasible grouping).

    Carries full provenance — producer/consumer stage names, the group
    dimension and the offending access — so callers (the grouping
    heuristic's decision log, :mod:`repro.verify`) can render it as a
    structured diagnostic instead of a bare message.
    """

    def __init__(self, detail: str, *, producer: str | None = None,
                 consumer: str | None = None, dim: int | None = None,
                 access: str | None = None):
        self.detail = detail
        self.producer = producer
        self.consumer = consumer
        self.dim = dim
        self.access = access
        super().__init__(self._compose())

    def _compose(self) -> str:
        parts = []
        if self.producer is not None and self.consumer is not None:
            parts.append(f"{self.consumer} -> {self.producer}")
        if self.dim is not None:
            parts.append(f"dim {self.dim}")
        if self.access is not None:
            parts.append(f"access {self.access}")
        prefix = f"[{', '.join(parts)}] " if parts else ""
        return prefix + self.detail

    def with_context(self, *, producer: str | None = None,
                     consumer: str | None = None, dim: int | None = None,
                     access: str | None = None) -> "NonConstantDependence":
        """A copy enriched with whatever context the caller knows."""
        return NonConstantDependence(
            self.detail,
            producer=self.producer if self.producer is not None else producer,
            consumer=self.consumer if self.consumer is not None else consumer,
            dim=self.dim if self.dim is not None else dim,
            access=self.access if self.access is not None else access)


def _consumer_dim_for(consumer_ir, ct, group_dim: int) -> int:
    for j in range(consumer_ir.ndim):
        if ct.dim_map[j] == group_dim:
            return j
    raise NonConstantDependence(
        f"no consumer dimension of {consumer_ir.name!r} maps to group "
        f"dimension {group_dim}", consumer=consumer_ir.name)


def _constant_extent(consumer_ir, dim: int) -> tuple[Fraction, Fraction]:
    bounds = consumer_ir.domain.bounds[dim]
    values_lo, values_hi = [], []
    for aff in bounds.lowers:
        if not aff.is_constant:
            raise NonConstantDependence(
                f"dimension {dim} of {consumer_ir.name!r} has parametric "
                "extent; constant-index dependence is unbounded",
                consumer=consumer_ir.name, dim=dim)
        values_lo.append(aff.const)
    for aff in bounds.uppers:
        if not aff.is_constant:
            raise NonConstantDependence(
                f"dimension {dim} of {consumer_ir.name!r} has parametric "
                "extent; constant-index dependence is unbounded",
                consumer=consumer_ir.name, dim=dim)
        values_hi.append(aff.const)
    return max(values_lo), min(values_hi)


def edge_dependences(ir: PipelineIR, transforms: GroupTransforms,
                     producer: Stage, consumer: Stage) -> EdgeDependence:
    """Dependence ranges of one intra-group edge in group coordinates."""
    consumer_ir = ir[consumer]
    ct = transforms[consumer]
    pt = transforms[producer]
    ndim = transforms.ndim
    per_dim: list[DepRange | None] = [None] * ndim

    for access in consumer_ir.accesses_to(producer):
        for d, form in enumerate(access.forms):
            assert form is not None, "grouped access must be affine"
            group_dim = pt.dim_map[d]
            s_p = pt.scales[d]
            m = form.divisor
            b = form.aff.const
            if form.aff.variables():
                lo = -s_p * b / m
                hi = lo + s_p * Fraction(m - 1, m)
            else:
                # Constant index k = b / m: the dependence spans the whole
                # consumer dimension, which must have constant extent
                # (e.g. a colour-channel read like d(3, x, y)).
                try:
                    j = _consumer_dim_for(consumer_ir, ct, group_dim)
                    v_lo, v_hi = _constant_extent(consumer_ir, j)
                except NonConstantDependence as exc:
                    raise exc.with_context(
                        producer=getattr(producer, "name", "?"),
                        consumer=consumer_ir.name, dim=d,
                        access=repr(form)) from None
                s_c = ct.scales[j]
                k = s_p * (b // m if m > 1 else b)
                lo = s_c * v_lo - k
                hi = s_c * v_hi - k
            rng = DepRange(lo, hi)
            existing = per_dim[group_dim]
            per_dim[group_dim] = rng if existing is None else existing.hull(rng)
    ranges = tuple(r if r is not None else ZERO_DEP for r in per_dim)
    return EdgeDependence(producer, consumer, ranges)


def group_dependences(ir: PipelineIR, transforms: GroupTransforms,
                      stages: Iterable[Stage]) -> list[EdgeDependence]:
    """Dependences of every intra-group producer -> consumer edge."""
    group = set(stages)
    out = []
    for consumer in group:
        for producer in ir.graph.producers(consumer):
            if producer in group:
                out.append(edge_dependences(ir, transforms, producer, consumer))
    return out


def dependence_vectors(ir: PipelineIR, producer: Stage,
                       consumer: Stage) -> list[tuple[Fraction, ...]]:
    """Constant dependence vectors under *initial* schedules (Section 3.1).

    Returns one spatial vector per access tap (consume point minus produce
    point), e.g. the four corner taps of the paper's ``Sxx``/``Ixx``
    example give ``(1, 1), (-1, 1), (1, -1), (-1, -1)``.  Only valid for
    plain affine, unit-coefficient accesses; raises otherwise.
    """
    consumer_ir = ir[consumer]
    vectors = []
    for access in consumer_ir.accesses_to(producer):
        vec = []
        for d, form in enumerate(access.forms):
            if form is None or not form.is_plain_affine:
                raise ValueError("dependence vector requires affine access")
            var = form.aff.variables()
            if len(var) != 1 or form.aff.coefficient(var[0]) != 1:
                raise ValueError("dependence vector requires unit access")
            vec.append(-form.aff.const)
        vectors.append(tuple(vec))
    return vectors
