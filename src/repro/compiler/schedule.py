"""Initial schedules (paper Section 3.1).

The initial schedule of a stage is ``(x0, ..., xn) -> (level, x0, ..., xn)``
where *level* is the stage's level in a topological sort of the pipeline
graph — e.g. ``Ix: (x, y) -> (0, x, y)`` and ``Sxx: (x, y) -> (2, x, y)``
for Harris corner detection.  Alignment and scaling later refine the
spatial dimensions (see :mod:`repro.compiler.align_scale`).
"""

from __future__ import annotations

from repro.pipeline.ir import PipelineIR, StageIR
from repro.poly.imap import Schedule


def initial_schedule(stage_ir: StageIR) -> Schedule:
    """The implicit schedule a stage has before any transformation."""
    return Schedule.initial(stage_ir.level, stage_ir.variables)


def initial_schedules(ir: PipelineIR) -> dict:
    """Initial schedules for every stage of a pipeline, keyed by stage."""
    return {stage_ir.stage: initial_schedule(stage_ir)
            for stage_ir in ir.ordered()}
