"""Storage mapping (paper Section 3.6).

Live-out functions — pipeline outputs and any stage consumed outside its
group — are stored in full buffers sized by their domains.  Intermediate
functions of a tiled group live only within a tile, so they are mapped to
small per-tile *scratchpads* indexed relative to the tile origin; all
tiles executed sequentially by one thread reuse the same scratchpads (the
runtime keeps a per-thread pool keyed by shape).  This storage reduction
is what makes overlapped tiling effective for streaming image pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.compiler.grouping import Group, GroupingResult
from repro.compiler.tiling import group_liveouts
from repro.pipeline.graph import Stage
from repro.pipeline.ir import PipelineIR

FULL = "full"
SCRATCH = "scratch"


@dataclass(frozen=True)
class StorageDecision:
    """Where a stage's values live, and why."""

    kind: str
    reason: str


def classify_storage(ir: PipelineIR,
                     grouping: GroupingResult) -> dict[Stage, StorageDecision]:
    """Assign FULL or SCRATCH storage to every stage."""
    decisions: dict[Stage, StorageDecision] = {}
    for group in grouping.groups:
        liveouts = set(group_liveouts(ir, group.stages))
        for stage in group.stages:
            stage_ir = ir[stage]
            if stage_ir.is_output:
                decisions[stage] = StorageDecision(FULL, "pipeline output")
            elif stage in liveouts:
                decisions[stage] = StorageDecision(
                    FULL, "consumed outside its group")
            elif not group.is_tiled:
                decisions[stage] = StorageDecision(
                    FULL, "member of an untiled group")
            else:
                decisions[stage] = StorageDecision(
                    SCRATCH, "tile-local intermediate")
    return decisions


def storage_footprint(plan, param_values: Mapping) -> dict[str, int]:
    """Bytes of full-buffer vs scratchpad storage (Section 3.6's saving).

    ``full_bytes`` counts every full buffer (inputs excluded); for
    comparison ``unfused_bytes`` is what the same stages would need as
    full buffers if nothing were mapped to scratchpads.  ``scratch_bytes``
    is the per-thread tile-local allocation of the tiled groups.
    """
    from repro.codegen.cgen import CGenerator  # static scratch sizing

    full_bytes = 0
    unfused_bytes = 0
    scratch_bytes = 0
    gen = CGenerator(plan)
    for group_plan in plan.group_plans:
        for stage in group_plan.ordered_stages:
            stage_ir = plan.ir[stage]
            box = stage_ir.domain.concretize(param_values)
            if box is None:
                continue
            nbytes = stage.dtype.np_dtype.itemsize
            for ivl in box:
                nbytes *= ivl.size
            unfused_bytes += nbytes
            if plan.storage[stage].kind == FULL:
                full_bytes += nbytes
            else:
                sizes = gen._scratch_size(stage, group_plan)
                sbytes = stage.dtype.np_dtype.itemsize
                for s in sizes:
                    sbytes *= s
                scratch_bytes += sbytes
    return {"full_bytes": full_bytes,
            "scratch_bytes": scratch_bytes,
            "unfused_bytes": unfused_bytes}


def scratch_stage_names(decisions: Mapping[Stage, StorageDecision]
                        ) -> set[str]:
    return {s.name for s, d in decisions.items() if d.kind == SCRATCH}


def full_buffer_count(decisions: Mapping[Stage, StorageDecision]) -> int:
    return sum(1 for d in decisions.values() if d.kind == FULL)
