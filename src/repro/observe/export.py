"""Metrics exposition: Prometheus text format, HTTP endpoint, CLI.

Renders a :class:`~repro.observe.metrics.MetricsRegistry` snapshot in
the Prometheus text exposition format (version 0.0.4) — counters,
gauges, and histograms with the full ``_bucket``/``_sum``/``_count``
series — entirely from the stdlib::

    text = registry.expose_text(prefix="repro_serve_")

:class:`MetricsServer` wraps that in a tiny threaded HTTP endpoint
(``service.serve_metrics(port=9464)`` → ``GET /metrics``), and
:func:`validate_exposition_text` is the matching checker (bucket
monotonicity, ``+Inf``-equals-``_count`` consistency) used by tests and
the CI scrape step, mirroring ``validate_chrome_trace``.

The CLI aggregates per-process registry snapshots — the cross-process
story multi-worker sharding needs::

    python -m repro.observe.export shard0.json shard1.json  # merged text
    python -m repro.observe.export --check metrics.prom     # validate
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable

from repro.observe.metrics import Histogram

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an internal metric name into the Prometheus charset
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``); dots and dashes become ``_``."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Format a sample value: integral floats print as integers,
    infinities as +Inf/-Inf."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_exposition(snapshot: dict, prefix: str = "") -> str:
    """Render a ``MetricsRegistry.as_dict()`` snapshot as Prometheus
    text.

    Counters gain the conventional ``_total`` suffix (unless already
    present); histograms emit the cumulative ``_bucket{le=...}`` series
    ending at ``le="+Inf"`` plus ``_sum`` and ``_count``.  Output is
    sorted by metric name, so renders are stable and diffable.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = prefix + sanitize_metric_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = prefix + sanitize_metric_name(name)
        hist = Histogram.from_dict(snapshot["histograms"][name])
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in hist.bucket_counts():
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} '
                         f"{cumulative}")
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def render_sharded_exposition(shards: dict, prefix: str = "",
                              label: str = "shard") -> str:
    """Render per-shard registry snapshots as *one* labeled exposition.

    ``shards`` maps a label value (e.g. the shard index as a string) to
    that shard's ``MetricsRegistry.as_dict()`` snapshot.  Every metric
    gets a single ``# TYPE`` line with one labeled sample per shard —
    histograms emit full per-shard ``_bucket``/``_sum``/``_count``
    series with the ``label`` alongside ``le`` — which is the form a
    Prometheus server aggregates across shards with ``sum by``/
    ``histogram_quantile``.
    """
    counters: dict[str, dict[str, float]] = {}
    gauges: dict[str, dict[str, float]] = {}
    hists: dict[str, dict[str, dict]] = {}
    for shard, snapshot in shards.items():
        shard = str(shard)
        for name, value in snapshot.get("counters", {}).items():
            counters.setdefault(name, {})[shard] = value
        for name, value in snapshot.get("gauges", {}).items():
            gauges.setdefault(name, {})[shard] = value
        for name, data in snapshot.get("histograms", {}).items():
            hists.setdefault(name, {})[shard] = data
    lines: list[str] = []
    for name in sorted(counters):
        metric = prefix + sanitize_metric_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        for shard in sorted(counters[name]):
            lines.append(f'{metric}{{{label}="{shard}"}} '
                         f"{_fmt(counters[name][shard])}")
    for name in sorted(gauges):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for shard in sorted(gauges[name]):
            lines.append(f'{metric}{{{label}="{shard}"}} '
                         f"{_fmt(gauges[name][shard])}")
    for name in sorted(hists):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for shard in sorted(hists[name]):
            hist = Histogram.from_dict(hists[name][shard])
            for bound, cumulative in hist.bucket_counts():
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}",'
                    f'{label}="{shard}"}} {cumulative}')
            lines.append(f'{metric}_sum{{{label}="{shard}"}} '
                         f"{_fmt(hist.sum)}")
            lines.append(f'{metric}_count{{{label}="{shard}"}} '
                         f"{hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate registry snapshots: counters add, gauges last-write-
    wins, histograms merge bucket-exactly.  The cross-process primitive:
    each worker dumps ``registry.as_dict()``, the aggregator merges and
    re-exposes."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snapshot.get("gauges", {}))
        for name, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            if name in histograms:
                histograms[name].merge(incoming)
            else:
                histograms[name] = incoming
    merged: dict = {"counters": counters, "gauges": gauges}
    if histograms:
        merged["histograms"] = {name: h.to_dict()
                                for name, h in histograms.items()}
    return merged


# ---------------------------------------------------------------------------
# Exposition-text validation (tests + CI scrape step)
# ---------------------------------------------------------------------------

_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$')
_LE = re.compile(r'le="(?P<le>[^"]+)"')
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"')


def _label_key(labels: str | None) -> str:
    """Canonical labels-minus-``le`` form, so one histogram's series
    group together per label set (a sharded exposition interleaves
    ``le`` series of several shards under one metric name)."""
    if not labels:
        return ""
    pairs = [f'{m.group("key")}="{m.group("val")}"'
             for m in _LABEL.finditer(labels) if m.group("key") != "le"]
    return ",".join(sorted(pairs))


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def validate_exposition_text(text: str) -> list[str]:
    """Check Prometheus exposition text for structural consistency.

    Returns a list of problems (empty = valid).  Validates the subset
    :func:`render_exposition` / :func:`render_sharded_exposition` emit:
    parseable sample lines, known ``# TYPE`` kinds, and for every
    histogram *series* (grouped by metric name plus labels other than
    ``le``, so per-shard series validate independently) — cumulative
    bucket monotonicity, a terminal ``le="+Inf"`` bucket, and the sample
    consistency invariants ``+Inf bucket == _count`` and
    ``_count == 0 ⇒ _sum == 0``.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    sums: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], float] = {}
    seen_any = False

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"line {lineno}: malformed TYPE line")
                    continue
                _, _, metric, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    problems.append(
                        f"line {lineno}: unknown metric type {kind!r}")
                types[metric] = kind
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        seen_any = True
        name = match.group("name")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value {match.group('value')!r}")
            continue
        labels = match.group("labels")
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            le_match = _LE.search(labels or "")
            if le_match is None:
                problems.append(
                    f"line {lineno}: histogram bucket without le label")
                continue
            try:
                bound = _parse_value(le_match.group("le"))
            except ValueError:
                problems.append(
                    f"line {lineno}: bad le value {le_match.group('le')!r}")
                continue
            buckets.setdefault((base, _label_key(labels)), []).append(
                (bound, value))
        elif name.endswith("_sum"):
            sums[(name[: -len("_sum")], _label_key(labels))] = value
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], _label_key(labels))] = value

    if not seen_any:
        problems.append("no samples found")

    for (name, lk), series in buckets.items():
        base = f"{name}{{{lk}}}" if lk else name
        bounds = [b for b, _ in series]
        values = [v for _, v in series]
        if bounds != sorted(bounds):
            problems.append(f"{base}: bucket bounds not ascending")
        for earlier, later in zip(values, values[1:]):
            if later < earlier:
                problems.append(
                    f"{base}: cumulative bucket counts decrease "
                    f"({earlier} -> {later})")
                break
        key = (name, lk)
        if not bounds or bounds[-1] != math.inf:
            problems.append(f"{base}: missing le=\"+Inf\" bucket")
        elif key in counts and values[-1] != counts[key]:
            problems.append(
                f"{base}: +Inf bucket {values[-1]} != _count "
                f"{counts[key]}")
        if key not in sums:
            problems.append(f"{base}: missing _sum sample")
        if key not in counts:
            problems.append(f"{base}: missing _count sample")
        elif counts[key] == 0 and sums.get(key, 0) != 0:
            problems.append(
                f"{base}: _count is 0 but _sum is {sums.get(key)}")
    return problems


# ---------------------------------------------------------------------------
# HTTP exposition endpoint (stdlib-only)
# ---------------------------------------------------------------------------

class MetricsServer:
    """Threaded HTTP endpoint serving ``render()`` at every GET.

    ``render`` is called per scrape on the server thread, so gauges can
    be refreshed lazily.  ``port=0`` binds an ephemeral port (read it
    back from :attr:`port`).  Daemon-threaded; :meth:`close` shuts the
    listener down.
    """

    def __init__(self, render: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                try:
                    body = server._render().encode("utf-8")
                    status = 200
                except Exception as exc:  # noqa: BLE001 - surfaced as 500
                    body = f"# render error: {exc}\n".encode("utf-8")
                    status = 500
                self.send_response(status)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # silence per-request spam
                pass

        self._render = render
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="repro-metrics-exposition")
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# CLI: merge snapshots / validate exposition text
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe.export",
        description="Render (and merge) MetricsRegistry JSON snapshots "
                    "as Prometheus text, or validate exposition text.")
    parser.add_argument("snapshots", nargs="*",
                        help="registry as_dict() JSON files to merge "
                             "and render")
    parser.add_argument("--prefix", default="",
                        help="metric name prefix (e.g. repro_serve_)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a Prometheus text file instead "
                             "of rendering; exits 1 on problems")
    parser.add_argument("--out", metavar="FILE",
                        help="write rendered text here instead of stdout")
    args = parser.parse_args(argv)

    if args.check:
        text = Path(args.check).read_text()
        problems = validate_exposition_text(text)
        if problems:
            for problem in problems:
                print(f"PROBLEM: {problem}", file=sys.stderr)
            return 1
        samples = sum(1 for line in text.splitlines()
                      if line and not line.startswith("#"))
        print(f"{args.check}: OK ({samples} samples)")
        return 0

    if not args.snapshots:
        parser.error("provide snapshot files to render, or --check FILE")
    merged = merge_snapshots(
        [json.loads(Path(p).read_text()) for p in args.snapshots])
    text = render_exposition(merged, prefix=args.prefix)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
