"""Thread-safe counters and gauges.

A :class:`MetricsRegistry` is a tiny, dependency-free metrics store:
monotonically increasing *counters* (tile counts, bytes allocated) and
last-value *gauges* (redundancy ratios, group counts).  All operations
take one short lock; readers get snapshot copies, so a registry can be
hammered from a tile thread pool while another thread renders it.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """Named counters and gauges, safe for concurrent writers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- writes ------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: int | float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    # -- reads -------------------------------------------------------------
    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of everything recorded."""
        with self._lock:
            return {"counters": dict(self._counters),
                    "gauges": dict(self._gauges)}

    # -- maintenance -------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite."""
        snapshot = other.as_dict()
        with self._lock:
            for name, v in snapshot["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + v
            self._gauges.update(snapshot["gauges"])
