"""Thread-safe counters, gauges, histograms, and latency windows.

A :class:`MetricsRegistry` is a tiny, dependency-free metrics store:
monotonically increasing *counters* (tile counts, bytes allocated),
last-value *gauges* (redundancy ratios, group counts), and fixed-bucket
:class:`Histogram` distributions (per-stage serving latencies).  All
operations take one short lock; readers get snapshot copies, so a
registry can be hammered from a tile thread pool while another thread
renders it.

A :class:`Histogram` uses *fixed log-spaced buckets*, which buys the two
properties a multi-process serving deployment needs and a sample ring
cannot give: histograms with the same bucket bounds :meth:`~Histogram.
merge` exactly (no resampling error), and the whole state is a small
JSON document (:meth:`~Histogram.to_dict` / :meth:`~Histogram.
from_dict`) that shards can ship to an aggregator.  Percentiles are
estimated by linear interpolation inside the winning bucket, so their
error is bounded by the bucket ratio.

A :class:`LatencyWindow` keeps a fixed-capacity ring of recent duration
samples and answers percentile queries over it — the p50/p99 view the
serving layer (:mod:`repro.serve`) and its benchmark report.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left


def default_latency_buckets(lo: float = 1e-4, hi: float = 60.0,
                            factor: float = 2.0) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]`` seconds.

    The defaults span 100 µs to ~1 min in ×2 steps (about 20 buckets) —
    wide enough for queue waits and native calls alike, coarse enough
    that a snapshot stays a handful of integers.
    """
    if lo <= 0 or factor <= 1:
        raise ValueError("buckets need lo > 0 and factor > 1")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


class Histogram:
    """Fixed-bucket histogram: mergeable, JSON round-trippable.

    ``buckets`` is an ascending tuple of *upper bounds*; one implicit
    overflow bucket (``+Inf``) catches everything above the last bound.
    ``observe`` is a bisect plus a few adds under one short lock, cheap
    enough for a serving hot path.
    """

    __slots__ = ("buckets", "_lock", "_counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, buckets=None):
        bounds = tuple(buckets) if buckets is not None \
            else default_latency_buckets()
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"buckets must be non-empty and strictly ascending, "
                f"got {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # -- writes ------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one sample (same units as the bucket bounds)."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with *identical* bucket bounds in.

        Bucket-exact: merged percentile estimates equal what one
        histogram observing both sample streams would report — the
        property that makes per-process shards aggregatable.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{len(self.buckets)} vs {len(other.buckets)} bounds")
        with other._lock:
            counts = list(other._counts)
            total, count = other._sum, other._count
            lo, hi = other._min, other._max
        with self._lock:
            for i, n in enumerate(counts):
                self._counts[i] += n
            self._sum += total
            self._count += count
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)

    def clear(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = math.inf
            self._max = -math.inf

    # -- reads -------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style;
        the final pair's bound is ``math.inf`` and its count equals the
        total sample count."""
        with self._lock:
            counts = list(self._counts)
        pairs, running = [], 0
        for bound, n in zip((*self.buckets, math.inf), counts):
            running += n
            pairs.append((bound, running))
        return pairs

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100) by interpolating
        inside the winning bucket; 0.0 while empty.  Samples beyond the
        last bound report the maximum observed value."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            count = self._count
            lo_seen, hi_seen = self._min, self._max
        if count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * count))
        running = 0
        for i, n in enumerate(counts):
            if running + n >= rank:
                if i >= len(self.buckets):  # overflow bucket
                    return hi_seen
                lo = self.buckets[i - 1] if i > 0 else min(lo_seen, 0.0)
                hi = self.buckets[i]
                frac = (rank - running) / n
                return lo + (hi - lo) * frac
            running += n
        return hi_seen

    def summary(self) -> dict:
        """JSON-ready summary: count, sum, mean, min/max, p50/p90/p99
        (all in the recorded units)."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": count, "sum": total, "mean": total / count,
            "min": lo, "max": hi,
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Full JSON-serializable state; :meth:`from_dict` restores it."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(buckets=data["buckets"])
        counts = list(data["counts"])
        if len(counts) != len(hist.buckets) + 1:
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(hist.buckets)} buckets + overflow")
        hist._counts = counts
        hist._sum = float(data["sum"])
        hist._count = int(data["count"])
        hist._min = data["min"] if data.get("min") is not None else math.inf
        hist._max = data["max"] if data.get("max") is not None \
            else -math.inf
        return hist


class MetricsRegistry:
    """Named counters, gauges and histograms, safe for concurrent
    writers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes ------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: int | float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def set_counter(self, name: str, value: int | float) -> None:
        """Overwrite the counter ``name`` with an externally maintained
        total — the mirror-at-scrape primitive for callers that keep
        their own hot-path counters and sync them into the registry
        lazily (idempotent, unlike :meth:`count`)."""
        with self._lock:
            self._counters[name] = value

    def histogram(self, name: str, buckets=None) -> Histogram:
        """The histogram ``name``, created (with ``buckets``) on first
        use.  The returned object is shared and thread-safe — hot paths
        should hold onto it instead of re-resolving the name."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(buckets)
            return hist

    def observe(self, name: str, value: float, buckets=None) -> None:
        """Record one sample into the histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # -- reads -------------------------------------------------------------
    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of everything recorded.

        The ``histograms`` key is present only when histograms exist, so
        registries that never record one keep the pre-histogram shape.
        """
        with self._lock:
            snapshot = {"counters": dict(self._counters),
                        "gauges": dict(self._gauges)}
            hists = dict(self._histograms)
        if hists:
            snapshot["histograms"] = {name: h.to_dict()
                                      for name, h in hists.items()}
        return snapshot

    def expose_text(self, prefix: str = "") -> str:
        """This registry rendered in Prometheus text exposition format
        (see :func:`repro.observe.export.render_exposition`)."""
        from repro.observe.export import render_exposition
        return render_exposition(self.as_dict(), prefix=prefix)

    # -- maintenance -------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite,
        histograms merge bucket-exactly (bounds must match)."""
        snapshot = other.as_dict()
        with self._lock:
            for name, v in snapshot["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + v
            self._gauges.update(snapshot["gauges"])
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, data["buckets"]).merge(
                Histogram.from_dict(data))


class LatencyWindow:
    """Fixed-capacity ring of duration samples with percentile queries.

    ``record`` is O(1) and lock-cheap, so it can sit on a serving hot
    path; ``percentile``/``snapshot`` sort a copy of the window (at most
    ``capacity`` items) on the reader's thread.  Durations are recorded
    in seconds and reported in milliseconds.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: list[float] = [0.0] * capacity
        self._next = 0
        self._count = 0  # total samples ever recorded

    def record(self, seconds: float) -> None:
        with self._lock:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
            self._count += 1

    def _window(self) -> list[float]:
        with self._lock:
            n = min(self._count, self.capacity)
            return self._ring[:n] if self._count <= self.capacity \
                else list(self._ring)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) in milliseconds over the
        window; 0.0 while empty.  Nearest-rank on the sorted window."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        window = self._window()
        if not window:
            return 0.0
        window.sort()
        rank = max(0, math.ceil(q / 100.0 * len(window)) - 1)
        return window[rank] * 1000.0

    def snapshot(self) -> dict:
        """JSON-ready summary: count, mean and p50/p90/p99 (ms)."""
        window = self._window()
        with self._lock:
            count = self._count
        if not window:
            return {"count": count, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p90_ms": 0.0, "p99_ms": 0.0}
        window.sort()

        def rank(q: float) -> float:
            return window[max(0, math.ceil(q / 100.0 * len(window)) - 1)]

        return {
            "count": count,
            "mean_ms": sum(window) / len(window) * 1000.0,
            "p50_ms": rank(50) * 1000.0,
            "p90_ms": rank(90) * 1000.0,
            "p99_ms": rank(99) * 1000.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._next = 0
            self._count = 0
