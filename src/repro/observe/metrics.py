"""Thread-safe counters, gauges, and latency windows.

A :class:`MetricsRegistry` is a tiny, dependency-free metrics store:
monotonically increasing *counters* (tile counts, bytes allocated) and
last-value *gauges* (redundancy ratios, group counts).  All operations
take one short lock; readers get snapshot copies, so a registry can be
hammered from a tile thread pool while another thread renders it.

A :class:`LatencyWindow` keeps a fixed-capacity ring of recent duration
samples and answers percentile queries over it — the p50/p99 view the
serving layer (:mod:`repro.serve`) and its benchmark report.
"""

from __future__ import annotations

import math
import threading


class MetricsRegistry:
    """Named counters and gauges, safe for concurrent writers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- writes ------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: int | float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    # -- reads -------------------------------------------------------------
    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of everything recorded."""
        with self._lock:
            return {"counters": dict(self._counters),
                    "gauges": dict(self._gauges)}

    # -- maintenance -------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite."""
        snapshot = other.as_dict()
        with self._lock:
            for name, v in snapshot["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + v
            self._gauges.update(snapshot["gauges"])


class LatencyWindow:
    """Fixed-capacity ring of duration samples with percentile queries.

    ``record`` is O(1) and lock-cheap, so it can sit on a serving hot
    path; ``percentile``/``snapshot`` sort a copy of the window (at most
    ``capacity`` items) on the reader's thread.  Durations are recorded
    in seconds and reported in milliseconds.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: list[float] = [0.0] * capacity
        self._next = 0
        self._count = 0  # total samples ever recorded

    def record(self, seconds: float) -> None:
        with self._lock:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
            self._count += 1

    def _window(self) -> list[float]:
        with self._lock:
            n = min(self._count, self.capacity)
            return self._ring[:n] if self._count <= self.capacity \
                else list(self._ring)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) in milliseconds over the
        window; 0.0 while empty.  Nearest-rank on the sorted window."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        window = self._window()
        if not window:
            return 0.0
        window.sort()
        rank = max(0, math.ceil(q / 100.0 * len(window)) - 1)
        return window[rank] * 1000.0

    def snapshot(self) -> dict:
        """JSON-ready summary: count, mean and p50/p90/p99 (ms)."""
        window = self._window()
        with self._lock:
            count = self._count
        if not window:
            return {"count": count, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p90_ms": 0.0, "p99_ms": 0.0}
        window.sort()

        def rank(q: float) -> float:
            return window[max(0, math.ceil(q / 100.0 * len(window)) - 1)]

        return {
            "count": count,
            "mean_ms": sum(window) / len(window) * 1000.0,
            "p50_ms": rank(50) * 1000.0,
            "p90_ms": rank(90) * 1000.0,
            "p99_ms": rank(99) * 1000.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._next = 0
            self._count = 0
