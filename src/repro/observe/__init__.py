"""End-to-end observability: tracing, metrics, and plan explanation.

Everything here is dependency-free and dormant by default — a disabled
:class:`Tracer` costs one attribute check per instrumentation point.

Typical use::

    from repro.observe import tracing

    with tracing() as tracer:
        compiled = compile_pipeline([out], estimates)
        compiled(values, inputs)
    print(tracer.render_tree())
    tracer.write_chrome("trace.json")   # chrome://tracing / Perfetto
"""

from repro.observe.decisions import DecisionLog, MergeDecision
from repro.observe.metrics import LatencyWindow, MetricsRegistry
from repro.observe.trace import (
    Span, Tracer, get_tracer, set_tracer, tracing, validate_chrome_trace,
)

__all__ = [
    "DecisionLog", "LatencyWindow", "MergeDecision", "MetricsRegistry",
    "Span", "Tracer", "get_tracer", "set_tracer", "tracing",
    "validate_chrome_trace",
]
