"""End-to-end observability: tracing, metrics, events, and exposition.

Everything here is dependency-free and dormant by default — a disabled
:class:`Tracer` costs one attribute check per instrumentation point.

Typical use::

    from repro.observe import tracing

    with tracing() as tracer:
        compiled = compile_pipeline([out], estimates)
        compiled(values, inputs)
    print(tracer.render_tree())
    tracer.write_chrome("trace.json")   # chrome://tracing / Perfetto

The serving runtime adds request-lifecycle observability on top:
:class:`EventLog`/:class:`Timeline` record per-request event timelines
(:mod:`repro.observe.events`), :class:`Histogram` holds mergeable
per-stage latency distributions, and :mod:`repro.observe.export`
renders any :class:`MetricsRegistry` as Prometheus text — scrapeable
via ``service.serve_metrics(port=...)`` or aggregatable offline with
``python -m repro.observe.export``.
"""

from repro.observe.decisions import DecisionLog, MergeDecision
from repro.observe.events import Event, EventLog, Timeline
from repro.observe.metrics import (
    Histogram, LatencyWindow, MetricsRegistry, default_latency_buckets,
)
from repro.observe.trace import (
    Span, Tracer, get_tracer, set_tracer, tracing, validate_chrome_trace,
)

__all__ = [
    "DecisionLog", "Event", "EventLog", "Histogram", "LatencyWindow",
    "MergeDecision", "MetricsRegistry", "Span", "Timeline", "Tracer",
    "default_latency_buckets", "get_tracer", "set_tracer", "tracing",
    "validate_chrome_trace",
]
