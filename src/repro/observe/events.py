"""Request-lifecycle events: bounded ring log + per-request timelines.

The serving runtime (:mod:`repro.serve`) answers *"where did this
frame's 24 ms go?"* by stamping every request with a handful of
lifecycle events::

    submitted -> dequeued -> [coalesced(batch_id, size)] ->
    dispatched(backend) -> completed | dropped(reason)

Two views share the same stamps:

* a per-request :class:`Timeline` (retrievable from the served
  ``Frame`` via ``frame.timeline()``) whose :meth:`Timeline.durations`
  decomposes the client-observed latency into ``queue_wait`` +
  ``batch_wait`` + ``execute`` = ``total`` *exactly* — all four come
  from the same monotonic timestamps, so the stages always add up;
* a service-wide :class:`EventLog`, a bounded, lock-cheap ring buffer
  every mark is mirrored into, with an optional JSON-lines sink for
  offline analysis (``python -m repro.bench.serve_bench --events``).

Everything here is stdlib-only and always-on cheap: one ``mark`` is a
clock read, a tuple append and a deque append under a short lock —
5-ish marks per request against frame times measured in milliseconds.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

#: canonical lifecycle kinds, in the order a healthy request visits them
LIFECYCLE_KINDS = ("submitted", "dequeued", "coalesced", "dispatched",
                   "completed", "dropped")


class Event:
    """One timestamped occurrence: what happened, to whom, with detail.

    ``ts`` is monotonic seconds (same clock as deadlines), so event
    deltas are durations; :meth:`to_dict` adds the owning log's
    wall-clock anchor for cross-process correlation.
    """

    __slots__ = ("ts", "kind", "request_id", "fields")

    def __init__(self, ts: float, kind: str, request_id: int | None,
                 fields: dict):
        self.ts = ts
        self.kind = kind
        self.request_id = request_id
        self.fields = fields

    def to_dict(self) -> dict:
        record = {"ts": self.ts, "kind": self.kind}
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.fields:
            record.update(self.fields)
        return record

    def __repr__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.fields.items())
        rid = f" #{self.request_id}" if self.request_id is not None else ""
        return f"<Event {self.kind}{rid} @{self.ts:.6f}{extra}>"


class EventLog:
    """Bounded ring of :class:`Event`, optionally tee'd to a JSONL sink.

    The ring keeps the most recent ``capacity`` events (older ones are
    evicted, counted in :attr:`evicted`); ``sink=`` streams *every*
    event to a JSON-lines file as it happens, so a long run's full
    history survives even though the ring is bounded.  Appends take one
    short lock — cheap enough to sit on the serving hot path.
    """

    def __init__(self, capacity: int = 4096, sink: str | Path | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._appended = 0
        self._t0 = time.monotonic()
        self._wall0 = time.time()
        self._sink = open(sink, "a", encoding="utf-8") if sink else None
        self._sink_path = Path(sink) if sink else None

    def append(self, kind: str, request_id: int | None = None,
               ts: float | None = None, **fields) -> Event:
        """Record one event (timestamped now unless ``ts`` is given)."""
        return self.append_event(
            Event(ts if ts is not None else time.monotonic(),
                  kind, request_id, fields))

    def append_event(self, event: Event) -> Event:
        """Record an already-built :class:`Event` (the hot path:
        :meth:`Timeline.mark` shares one object between the timeline
        and the ring instead of allocating twice)."""
        with self._lock:
            self._ring.append(event)
            self._appended += 1
            if self._sink is not None:
                self._sink.write(json.dumps(self._jsonl_record(event))
                                 + "\n")
        return event

    def _jsonl_record(self, event: Event) -> dict:
        record = event.to_dict()
        # relative + wall timestamps travel better than a bare monotonic
        record["t_rel"] = event.ts - self._t0
        record["wall"] = self._wall0 + (event.ts - self._t0)
        return record

    # -- reads -------------------------------------------------------------
    def events(self, request_id: int | None = None,
               kind: str | None = None) -> list[Event]:
        """Snapshot of buffered events, optionally filtered."""
        with self._lock:
            snapshot = list(self._ring)
        if request_id is not None:
            snapshot = [e for e in snapshot if e.request_id == request_id]
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        return snapshot

    @property
    def appended(self) -> int:
        """Total events ever appended (evicted ones included)."""
        with self._lock:
            return self._appended

    @property
    def evicted(self) -> int:
        """Events the bounded ring has already forgotten."""
        with self._lock:
            return self._appended - len(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- export ------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> Path:
        """Dump the buffered ring as JSON lines (one event per line)."""
        path = Path(path)
        with self._lock:
            lines = [json.dumps(self._jsonl_record(e)) for e in self._ring]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


class Timeline:
    """One request's lifecycle record: ordered marks plus derived stages.

    Marks land in the timeline's own list (O(1) per-request retrieval)
    and are mirrored into the service :class:`EventLog` when one is
    attached.  ``sampled`` tags requests promoted to full Chrome-trace
    async spans by the service's ``sample_rate`` knob.
    """

    __slots__ = ("request_id", "sampled", "_log", "_marks")

    def __init__(self, request_id: int, log: EventLog | None = None,
                 sampled: bool = False):
        self.request_id = request_id
        self.sampled = sampled
        self._log = log
        # no lock: ``list.append`` and ``list(...)`` snapshots are atomic
        # under the GIL, and each mark lands exactly once — the cross-
        # thread ordering marks need is given by the timestamps
        self._marks: list[Event] = []

    def mark(self, kind: str, **fields) -> Event:
        """Stamp one lifecycle event now (submit or worker thread)."""
        event = Event(time.monotonic(), kind, self.request_id, fields)
        self._marks.append(event)
        if self._log is not None:
            self._log.append_event(event)
        return event

    def graft(self, marks, base_ts: float | None = None,
              prefix: str = "worker_") -> None:
        """Splice marks recorded in another process into this timeline.

        ``marks`` is a sequence of ``(dt, kind, fields)`` tuples with
        ``dt`` relative to the sender's anchor (its clock never crosses
        the pipe); ``base_ts`` — default *now* — re-anchors them on this
        process's monotonic clock.  Every kind gains ``prefix`` so the
        local lifecycle decomposition (:meth:`durations`) keeps reading
        only this process's own marks while the full render still shows
        where the remote time went.
        """
        anchor = base_ts if base_ts is not None else time.monotonic()
        for dt, kind, fields in marks:
            event = Event(anchor + dt, prefix + kind, self.request_id,
                          dict(fields))
            self._marks.append(event)
            if self._log is not None:
                self._log.append_event(event)

    def events(self) -> list[Event]:
        return list(self._marks)

    def ts(self, kind: str) -> float | None:
        """Timestamp of the *first* mark of ``kind`` (None if absent)."""
        for event in list(self._marks):
            if event.kind == kind:
                return event.ts
        return None

    def last(self, kind: str) -> Event | None:
        for event in reversed(list(self._marks)):
            if event.kind == kind:
                return event
        return None

    def durations(self) -> dict[str, float]:
        """Per-stage decomposition in seconds.

        ``queue_wait`` (submitted→dequeued), ``batch_wait``
        (dequeued→first dispatched — claim + coalescing window),
        ``execute`` (first dispatched→completed/dropped; a fallback
        retry's second dispatch stays inside execute) and ``total``.
        The three stages sum to ``total`` exactly — they are differences
        of the same four timestamps.  Stages whose boundary events have
        not happened (yet) are simply absent.
        """
        events = self.events()  # one lock acquisition, then local scans

        def first(kind: str) -> float | None:
            for event in events:
                if event.kind == kind:
                    return event.ts
            return None

        submitted = first("submitted")
        dequeued = first("dequeued")
        dispatched = first("dispatched")
        end = first("completed")
        if end is None:
            end = first("dropped")
        stages: dict[str, float] = {}
        if submitted is not None and dequeued is not None:
            stages["queue_wait"] = dequeued - submitted
        if dequeued is not None and dispatched is not None:
            stages["batch_wait"] = dispatched - dequeued
        if dispatched is not None and end is not None:
            stages["execute"] = end - dispatched
        if submitted is not None and end is not None:
            stages["total"] = end - submitted
        return stages

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "sampled": self.sampled,
            "events": [e.to_dict() for e in self.events()],
            "durations": self.durations(),
        }

    def render(self) -> str:
        """Human-readable timeline relative to the ``submitted`` mark."""
        events = self.events()
        if not events:
            return f"request {self.request_id}: <no events>"
        t0 = events[0].ts
        lines = [f"request {self.request_id}"
                 f"{' (sampled)' if self.sampled else ''}:"]
        for event in events:
            extra = "".join(f" {k}={v}" for k, v in event.fields.items())
            lines.append(f"  +{(event.ts - t0) * 1000.0:8.3f} ms "
                         f"{event.kind}{extra}")
        stages = self.durations()
        if stages:
            lines.append("  stages: " + ", ".join(
                f"{name} {stages[name] * 1000.0:.3f} ms"
                for name in ("queue_wait", "batch_wait", "execute", "total")
                if name in stages))
        return "\n".join(lines)

    def __repr__(self) -> str:
        kinds = [e.kind for e in self.events()]
        return f"Timeline(#{self.request_id}, {' -> '.join(kinds)})"
