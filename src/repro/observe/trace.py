"""Zero-dependency, thread-safe span tracer with Chrome trace export.

The tracer is the backbone of ``repro.observe``: every layer of the
system — compiler phases, interpreter groups and tiles, bench harnesses —
opens context-manager *spans* on one :class:`Tracer` and the result can
be rendered as a human-readable tree (:meth:`Tracer.render_tree`) or
exported as Chrome ``trace_event`` JSON (:meth:`Tracer.to_chrome`,
loadable in ``chrome://tracing`` / Perfetto).

Design constraints:

* **Near-zero overhead when disabled.**  ``tracer.span(...)`` on a
  disabled tracer returns a shared no-op context manager without
  allocating; ``count``/``gauge`` return after one attribute check.
  Instrumented hot loops additionally guard on ``tracer.enabled`` so
  they skip even argument construction.
* **Thread safety.**  Each thread keeps its own open-span stack
  (``threading.local``); finished root spans are published under a lock.
  Spans started on a worker thread become roots of that thread's tree
  and carry its ``tid``, exactly what the Chrome viewer expects.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.observe.metrics import MetricsRegistry


class Span:
    """One timed region; a context manager bound to its tracer."""

    __slots__ = ("name", "cat", "args", "start_us", "dur_us", "tid",
                 "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self.name = name
        self.cat = cat
        self.args = args
        self.start_us = 0.0
        self.dur_us = 0.0
        self.tid = 0
        self.children: list[Span] = []
        self._tracer = tracer

    def set(self, **args) -> "Span":
        """Attach (or update) key/value annotations on the span."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self)
        return False


class _NullSpan:
    """Shared no-op stand-in returned by disabled tracers."""

    __slots__ = ()

    def set(self, **args) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Span tracer + metrics registry; disabled (and silent) by default."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._local = threading.local()
        self._thread_names: dict[int, str] = {}
        self._async_events: list[dict] = []

    # -- spans -------------------------------------------------------------
    def span(self, name: str, cat: str = "", **args) -> Span | _NullSpan:
        """Open a timed region: ``with tracer.span("grouping"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, cat, args)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        span.tid = threading.get_ident()
        span.start_us = (time.perf_counter() - self._epoch) * 1e6
        self._stack().append(span)

    def _close(self, span: Span) -> None:
        span.dur_us = ((time.perf_counter() - self._epoch) * 1e6
                       - span.start_us)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- thread names ------------------------------------------------------
    def name_thread(self, name: str | None = None) -> None:
        """Label the calling thread in Chrome-trace exports.

        Emitted as ``ph: "M"`` / ``thread_name`` metadata events by
        :meth:`to_chrome`, so serve worker threads show up by name in
        chrome://tracing instead of as bare TIDs.  Defaults to the
        Python thread's own name; last write per thread wins.
        """
        if not self.enabled:
            return
        if name is None:
            name = threading.current_thread().name
        with self._lock:
            self._thread_names[threading.get_ident()] = name

    # -- async (cross-thread) spans ----------------------------------------
    def _async_event(self, ph: str, name: str, aid, cat: str,
                     args: dict) -> None:
        event = {"ph": ph, "name": name, "id": aid, "cat": cat or "async",
                 "ts": (time.perf_counter() - self._epoch) * 1e6,
                 "tid": threading.get_ident()}
        if args:
            event["args"] = {k: _jsonable(v) for k, v in args.items()}
        with self._lock:
            self._async_events.append(event)

    def async_begin(self, name: str, aid, cat: str = "", **args) -> None:
        """Open a cross-thread async span (Chrome nestable ``b``).

        Async spans correlate by ``(name, id)`` rather than by thread
        stack, so one logical operation — a sampled serve request — can
        begin on the submit thread, step on a worker thread and end
        wherever it resolves.  No-op when the tracer is disabled.
        """
        if self.enabled:
            self._async_event("b", name, aid, cat, args)

    def async_instant(self, name: str, aid, cat: str = "", **args) -> None:
        """Mark a point inside an open async span (Chrome ``n``)."""
        if self.enabled:
            self._async_event("n", name, aid, cat, args)

    def async_end(self, name: str, aid, cat: str = "", **args) -> None:
        """Close an async span opened with :meth:`async_begin`."""
        if self.enabled:
            self._async_event("e", name, aid, cat, args)

    def async_events(self) -> list[dict]:
        """Recorded async events (Chrome ``b``/``n``/``e``), in order."""
        with self._lock:
            return [dict(e) for e in self._async_events]

    # -- metrics (delegates; no-ops when disabled) -------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        if self.enabled:
            self.metrics.count(name, n)

    def gauge(self, name: str, value: int | float) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)

    # -- inspection --------------------------------------------------------
    def roots(self) -> list[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def spans(self) -> Iterator[Span]:
        """All finished spans, depth-first."""
        def walk(span: Span) -> Iterator[Span]:
            yield span
            for child in span.children:
                yield from walk(child)

        for root in self.roots():
            yield from walk(root)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._async_events.clear()
            self._thread_names.clear()
        self.metrics.clear()

    # -- Chrome trace_event export -----------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Spans become complete ("X") events with microsecond timestamps;
        threads labeled via :meth:`name_thread` get ``thread_name``
        metadata ("M") events; async spans (:meth:`async_begin` et al.)
        are emitted as nestable "b"/"n"/"e" events correlated by id;
        counters and gauges are appended as counter ("C") events so they
        show up as tracks in the viewer.
        """
        pid = os.getpid()
        tids: dict[int, int] = {}

        def tid_of(raw: int) -> int:
            return tids.setdefault(raw, len(tids))

        events: list[dict] = []

        def emit(span: Span) -> None:
            event = {"name": span.name, "ph": "X", "cat": span.cat or "span",
                     "ts": span.start_us, "dur": span.dur_us,
                     "pid": pid, "tid": tid_of(span.tid)}
            if span.args:
                event["args"] = {k: _jsonable(v)
                                 for k, v in span.args.items()}
            events.append(event)
            for child in span.children:
                emit(child)

        for root in self.roots():
            emit(root)
        for async_event in self.async_events():
            async_event["pid"] = pid
            async_event["tid"] = tid_of(async_event["tid"])
            async_event["id"] = str(async_event["id"])
            events.append(async_event)
        with self._lock:
            thread_names = dict(self._thread_names)
        for raw_tid, name in thread_names.items():
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid_of(raw_tid), "cat": "__metadata",
                           "args": {"name": name}})
        end_us = max((e["ts"] + e.get("dur", 0.0) for e in events
                      if "ts" in e), default=0.0)
        snapshot = self.metrics.as_dict()
        for name, value in {**snapshot["counters"],
                            **snapshot["gauges"]}.items():
            events.append({"name": name, "ph": "C", "cat": "metric",
                           "ts": end_us, "pid": pid, "tid": 0,
                           "args": {"value": value}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1) + "\n")
        return path

    # -- human-readable rendering ------------------------------------------
    def render_tree(self) -> str:
        """Indented span tree with durations, plus recorded metrics."""
        lines: list[str] = []

        def fmt(span: Span, depth: int) -> None:
            label = span.name
            if span.cat:
                label += f" [{span.cat}]"
            extra = "".join(f" {k}={v}" for k, v in span.args.items())
            lines.append(f"{'  ' * depth}{label}: "
                         f"{span.dur_us / 1000.0:.3f} ms{extra}")
            for child in span.children:
                fmt(child, depth + 1)

        for root in self.roots():
            fmt(root, 0)
        snapshot = self.metrics.as_dict()
        if snapshot["counters"]:
            lines.append("counters:")
            for name in sorted(snapshot["counters"]):
                lines.append(f"  {name} = {snapshot['counters'][name]:g}")
        if snapshot["gauges"]:
            lines.append("gauges:")
            for name in sorted(snapshot["gauges"]):
                lines.append(f"  {name} = {snapshot['gauges'][name]:g}")
        return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Process-global default tracer
# ---------------------------------------------------------------------------

_global_tracer = Tracer(enabled=False)
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless someone enabled it)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global default; returns the old."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for a block: installs (a fresh, enabled) tracer as
    the global default and restores the previous one on exit."""
    tracer = tracer or Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# Chrome trace validation (used by tests and the CI smoke step)
# ---------------------------------------------------------------------------

def validate_chrome_trace(data: object) -> list[str]:
    """Check an object against the Chrome trace-event shape.

    Returns a list of problems (empty = valid).  Validates the subset the
    tracer emits: a ``traceEvents`` list of dicts where "X" events carry
    name/ts/dur/pid/tid, "C" events carry name/ts/args, "M" metadata
    events named ``thread_name`` carry pid/tid and an ``args.name``
    label, and nestable async events ("b"/"n"/"e") carry name/id/ts.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "C", "B", "E", "M", "I", "b", "n", "e"):
            errors.append(f"event {i} has unknown phase {ph!r}")
            continue
        required = {"X": ("name", "ts", "dur", "pid", "tid"),
                    "C": ("name", "ts", "args"),
                    "M": ("name", "pid", "tid"),
                    "b": ("name", "id", "ts"),
                    "n": ("name", "id", "ts"),
                    "e": ("name", "id", "ts")}.get(ph, ("name",))
        for key in required:
            if key not in event:
                errors.append(f"event {i} ({ph}) lacks {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(f"event {i} field {key!r} is not numeric")
        if ph == "M" and event.get("name") == "thread_name":
            if not isinstance(event.get("args"), dict) \
                    or "name" not in event["args"]:
                errors.append(
                    f"event {i} (M thread_name) lacks args.name")
    return errors
