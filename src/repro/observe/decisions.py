"""Structured log of Algorithm 1's grouping decisions.

The greedy grouping heuristic makes one opaque choice per candidate:
merge a group into its single child, or keep them apart.  Each visit is
recorded as a :class:`MergeDecision` — who, the measured relative
overlap, the threshold it was compared against, and the verdict with its
reason — so ``CompiledPipeline.explain()`` can replay the whole search
instead of only showing its outcome.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MergeDecision:
    """One evaluated merge candidate of Algorithm 1."""

    #: restart round of the greedy loop (1-based)
    round: int
    #: name of the group considered for merging (producer side)
    group: str
    #: name of its single child group (consumer side)
    child: str
    #: size estimate of the producer group (candidate ordering key)
    group_size: int
    #: measured relative overlap, when the candidate got that far
    overlap: float | None
    #: Algorithm 1's redundant-computation bound
    threshold: float
    accepted: bool
    reason: str
    #: the verifier-style diagnostic that would have fired had the merge
    #: been forced (set on rejections caused by illegal dependences)
    diagnostic: str | None = None
    #: True when a scheduling hint influenced this verdict (a forced or
    #: forbidden merge) — ``explain()`` tags these ``[hint]`` so
    #: hint-driven decisions are distinguishable from automatic ones
    hinted: bool = False

    def render(self) -> str:
        verdict = "merge" if self.accepted else "keep "
        cost = (f"overlap {self.overlap:.3f}" if self.overlap is not None
                else "overlap n/a")
        tag = " [hint]" if self.hinted else ""
        line = (f"round {self.round}: {verdict} {self.group} -> "
                f"{self.child} [{cost}, threshold {self.threshold:.2f}] "
                f"({self.reason}){tag}")
        if self.diagnostic:
            line += f"\n    would fire: {self.diagnostic}"
        return line

    def to_dict(self) -> dict:
        return {"round": self.round, "group": self.group,
                "child": self.child, "group_size": self.group_size,
                "overlap": self.overlap, "threshold": self.threshold,
                "accepted": self.accepted, "reason": self.reason,
                "diagnostic": self.diagnostic, "hinted": self.hinted}


class DecisionLog:
    """Accumulates :class:`MergeDecision`s during one grouping run.

    Rejections are de-duplicated on (group, child, reason): the greedy
    loop restarts after every merge, so an unchanged candidate would
    otherwise be re-reported each round with no new information.
    """

    def __init__(self):
        self.decisions: list[MergeDecision] = []
        self._seen: set[tuple[str, str, str]] = set()

    def record(self, decision: MergeDecision) -> None:
        key = (decision.group, decision.child, decision.reason)
        if not decision.accepted and key in self._seen:
            return
        self._seen.add(key)
        self.decisions.append(decision)

    @property
    def merges(self) -> list[MergeDecision]:
        return [d for d in self.decisions if d.accepted]

    @property
    def rejections(self) -> list[MergeDecision]:
        return [d for d in self.decisions if not d.accepted]

    def render(self) -> str:
        if not self.decisions:
            return "(no merge candidates were evaluated)"
        return "\n".join(d.render() for d in self.decisions)

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.decisions]
