"""PolyMage reproduction: a DSL and optimizing compiler for image
processing pipelines (Mullapudi, Vasista, Bondhugula — ASPLOS 2015).

Public API::

    from repro import compile_pipeline, CompileOptions
    from repro.lang import (Parameter, Variable, Interval, Condition, Case,
                            Image, Function, Accumulator, Stencil, ...)
"""

from repro.api import CompiledPipeline, compile_pipeline
from repro.compiler.options import CompileOptions
from repro.observe import Tracer, get_tracer, set_tracer, tracing
from repro.schedule import ScheduleHints, ScheduleStore

__version__ = "1.2.0"

__all__ = ["CompileOptions", "CompiledPipeline", "ScheduleHints",
           "ScheduleStore", "Tracer", "compile_pipeline", "get_tracer",
           "set_tracer", "tracing", "__version__"]
