"""Top-level public API of the PolyMage reproduction.

Typical use::

    from repro import CompileOptions, compile_pipeline

    compiled = compile_pipeline([harris], estimates={R: 6400, C: 6400})
    print(compiled.summary())
    out = compiled(param_values={R: rows, C: cols}, inputs={I: image})
    result = out["harris"]

``compile_pipeline`` runs the whole middle end (inlining, bounds checking,
grouping, overlapped tiling, storage mapping) once; the returned
:class:`CompiledPipeline` can then be executed any number of times, for
any parameter values, with either backend:

* the NumPy interpreter (default, portable), or
* generated C compiled with a system C compiler
  (:meth:`CompiledPipeline.build`, see :mod:`repro.codegen`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.compiler.options import CompileOptions
from repro.compiler.plan import PipelinePlan, compile_plan
from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.observe.trace import Tracer
from repro.pipeline.graph import Stage
from repro.runtime.executor import execute_plan


class CompiledPipeline:
    """A compiled pipeline: executable, inspectable, C-generatable."""

    def __init__(self, plan: PipelinePlan, name: str = "pipeline"):
        self.plan = plan
        self.name = name
        self._built: dict = {}

    # -- execution ---------------------------------------------------------
    def __call__(self, param_values: Mapping[Parameter, int],
                 inputs: Mapping[Image, np.ndarray],
                 *, vectorize: bool = True,
                 n_threads: int = 1,
                 tracer: Tracer | None = None) -> dict[str, np.ndarray]:
        """Execute with the NumPy interpreter backend."""
        return execute_plan(self.plan, param_values, inputs,
                            vectorize=vectorize, n_threads=n_threads,
                            tracer=tracer)

    execute = __call__

    def run_batch(self, param_values: Mapping[Parameter, int],
                  inputs_list,
                  *, vectorize: bool = True,
                  n_threads: int = 1,
                  tracer: Tracer | None = None
                  ) -> "list[dict[str, np.ndarray]]":
        """Execute a batch of frames (one shared set of parameter values)
        with the NumPy interpreter backend — the differential twin of
        :meth:`repro.codegen.build.NativePipeline.run_batch`."""
        from repro.runtime.executor import execute_plan_batch
        return execute_plan_batch(self.plan, param_values, inputs_list,
                                  vectorize=vectorize,
                                  n_threads=n_threads, tracer=tracer)

    # -- C backend -----------------------------------------------------------
    def c_source(self, instrument: bool = False) -> str:
        """Generate C source implementing the pipeline (Figure 7 style)."""
        from repro.codegen.cgen import generate_c
        return generate_c(self.plan, self.name, instrument=instrument)

    def build(self, **kwargs):
        """Compile the generated C with the system compiler and return a
        callable :class:`repro.codegen.build.NativePipeline`.

        Memoized per distinct build-option set: ``build()`` followed by
        ``build(vectorize=False)`` compiles (and returns) two different
        binaries rather than silently reusing the first.
        """
        from repro.codegen.build import build_native
        try:
            key = tuple(sorted(kwargs.items()))
            hash(key)
        except TypeError:
            # unhashable build option: skip memoization, build fresh
            return build_native(self.plan, self.name, **kwargs)
        if key not in self._built:
            self._built[key] = build_native(self.plan, self.name, **kwargs)
        return self._built[key]

    # -- serving ---------------------------------------------------------------
    def serve(self, **config):
        """Start a streaming :class:`repro.serve.PipelineService` for
        this pipeline.

        The service answers ``submit()`` immediately with the
        interpreter backend while the native artifact builds in the
        background, pools output buffers across frames, enforces
        per-request deadlines, and degrades gracefully back to the
        interpreter on any native failure.  ``config`` is forwarded to
        :class:`~repro.serve.PipelineService` (``workers``,
        ``max_queue``, ``backend``, ``default_deadline_s``, ...).
        Close it (or use it as a context manager) when done.

        Observability knobs ride along in ``config``: every request is
        stamped with a lifecycle timeline (``frame.timeline()``),
        ``events_path=`` streams lifecycle events to a JSON-lines file,
        ``sample_rate=`` promotes a deterministic subset of requests to
        Chrome-trace async spans, and
        ``service.serve_metrics(port=...)`` exposes counters and
        per-stage latency histograms in Prometheus text format.

        ``processes=N`` (N ≥ 1) returns a
        :class:`~repro.serve.ShardedService` instead: the same
        submit/Frame API served by N spawn-mode worker processes with
        shared-memory frame transport, load balancing, worker respawn
        and optional autoscaling (see :mod:`repro.serve.router`).

        ``store="ro"|"rw"`` consults the persistent schedule store
        (:mod:`repro.schedule`) during the background native build:
        on a warm store every worker cold-starts by ``dlopen``-ing the
        already-published artifact — no C compiler invocation.
        ``store_root=`` overrides the store directory.
        """
        config.setdefault("name", self.name)
        store = config.pop("store", None)
        store_root = config.pop("store_root", None)
        if store is not None or store_root is not None:
            build_kwargs = dict(config.get("build_kwargs") or {})
            if store is not None:
                build_kwargs.setdefault("store", store)
            if store_root is not None:
                build_kwargs.setdefault("store_root", str(store_root))
            config["build_kwargs"] = build_kwargs
        processes = config.pop("processes", 0)
        if processes:
            from repro.serve import ShardedService
            return ShardedService(self, workers=processes, **config)
        from repro.serve import PipelineService
        return PipelineService(self, **config)

    # -- verification ----------------------------------------------------------
    def verify(self, *, lint_c: bool = False,
               severity_overrides: Mapping[str, str] | None = None,
               strict: bool = False):
        """Statically verify the compiled plan (see :mod:`repro.verify`).

        Re-derives schedule legality, storage coverage, race freedom and
        bounds from the IR — independently of the compiler phases that
        made those decisions — and returns the
        :class:`~repro.verify.VerifyReport`.  ``lint_c=True`` also
        generates instrumented C and lints it for un-atomic shared
        writes; ``strict=True`` raises :class:`~repro.verify.VerifyError`
        when any error-severity diagnostic fires.  The report is cached
        on the plan as ``plan.verify_report``.
        """
        from repro.verify import VerifyError, verify_plan
        report = verify_plan(self.plan, lint_c=lint_c,
                             severity_overrides=severity_overrides,
                             name=self.name)
        self.plan.verify_report = report
        if strict and not report.ok:
            raise VerifyError(report)
        return report

    # -- inspection ------------------------------------------------------------
    def ranges(self, input_ranges: Mapping | None = None
               ) -> "dict[str, object]":
        """Per-stage value ranges, keyed by stage name.

        Forward abstract interpretation over the stage DAG under the
        compile-time estimates (see :mod:`repro.analysis.ranges`).
        ``input_ranges`` optionally tightens the assumed range of input
        images (keyed by :class:`Image` or image name, values are
        ``(lo, hi)`` pairs or :class:`ValueInterval`).  When the plan
        was compiled with ``narrow=True`` the ranges already derived at
        compile time are reused.
        """
        from repro.analysis.ranges import analyze_ranges
        if input_ranges is None and self.plan.value_ranges is not None:
            by_stage = self.plan.value_ranges
        else:
            by_stage = analyze_ranges(self.plan, input_ranges)
        return {stage.name: r for stage, r in by_stage.items()}

    def summary(self) -> str:
        return self.plan.summary()

    def explain(self) -> str:
        """Replay the compiler's decisions: every grouping merge candidate
        with its overlap cost and verdict, the final groups with tile
        sizes and halo widths, and each stage's storage classification."""
        return self.plan.explain()

    @property
    def options(self) -> CompileOptions:
        return self.plan.options

    @property
    def outputs(self) -> list[Stage]:
        return self.plan.outputs


def compile_pipeline(outputs: Sequence[Stage],
                     estimates: Mapping[Parameter, int],
                     options: CompileOptions | None = None,
                     name: str = "pipeline",
                     tracer: Tracer | None = None,
                     check: str = "none",
                     hints=None) -> CompiledPipeline:
    """Compile a pipeline given its live-out stages.

    ``estimates`` supply a representative value per :class:`Parameter` —
    the heuristics optimize for sizes around them, but the compiled
    pipeline remains valid for all parameter values.  ``tracer`` records
    per-phase compile spans (defaults to the process-global tracer,
    disabled unless e.g. ``repro.observe.tracing`` enabled it).
    ``check`` runs the static verifier on the result: ``"warn"`` attaches
    the report, ``"strict"`` raises on error diagnostics (see
    :func:`repro.compiler.plan.compile_plan`).  ``hints`` is an optional
    :class:`~repro.schedule.ScheduleHints` constraining the automatic
    scheduler (see :mod:`repro.schedule`); hinted plans still pass the
    full verifier, with the RV6xx family auditing the hints themselves.
    """
    plan = compile_plan(outputs, estimates, options, tracer=tracer,
                        check=check, hints=hints)
    return CompiledPipeline(plan, name)
