"""Execution of compiled pipeline plans (interpreter backend).

Runs a :class:`~repro.compiler.plan.PipelinePlan` on concrete parameter
values and input arrays.  Groups execute in dependence order; tiled groups
iterate over overlapped tiles — optionally on a thread pool, tiles being
embarrassingly parallel by construction — evaluating intermediate stages
into tile-local scratchpads and writing each live-out's *owned* sub-region
into its full buffer.  Untiled groups (accumulators, self-referential
stages, and every group when tiling is disabled) are evaluated stage by
stage over full domains.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor, wait as _wait_futures
from typing import Hashable, Mapping

import numpy as np

from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.compiler.storage import SCRATCH
from repro.compiler.tiling import compute_tile_regions, stage_tile_region
from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.observe.trace import Tracer, get_tracer
from repro.pipeline.graph import Stage
from repro.pipeline.ir import StageIR
from repro.poly.affine import to_affine
from repro.poly.interval import IntInterval
from repro.runtime.buffers import BufferView
from repro.runtime.evaluator import Evaluator


class ExecutionError(RuntimeError):
    """Raised for invalid inputs or unsupported stage shapes."""


# ---------------------------------------------------------------------------
# Process-wide worker pools
# ---------------------------------------------------------------------------
# Tearing a ThreadPoolExecutor down after every tiled group (the old
# ``with`` form) pays thread spawn/join per invocation — measurable on
# small frames and the throughput benchmarks.  Pools are instead created
# once per worker count, reused by every plan execution in the process,
# and drained at interpreter exit.

_pools: dict[int, ThreadPoolExecutor] = {}
_pools_lock = threading.Lock()


def get_worker_pool(n_threads: int) -> ThreadPoolExecutor:
    """The shared executor pool for ``n_threads`` workers."""
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    with _pools_lock:
        pool = _pools.get(n_threads)
        if pool is None:
            pool = _pools[n_threads] = ThreadPoolExecutor(
                max_workers=n_threads,
                thread_name_prefix=f"repro-exec-{n_threads}")
        return pool


def shutdown_worker_pools() -> None:
    """Drain and drop every shared pool (re-created lazily on next use)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_worker_pools)


def _check_unknown_keys(plan: PipelinePlan, params: Mapping,
                        inputs: Mapping) -> None:
    """Reject entries that do not belong to this plan.

    ``Parameter`` and ``Image`` hash by identity, so passing the *wrong
    object* with the right name would otherwise be silently ignored (and
    a required key reported missing instead) — the same validation the
    native backend performs.
    """
    known_params = set(plan.estimates)
    unknown = [p for p in params if p not in known_params]
    if unknown:
        names = ", ".join(sorted(repr(getattr(p, "name", p))
                                 for p in unknown))
        raise ExecutionError(
            f"unknown parameter(s) in param_values: {names}; the plan's "
            "parameters are: "
            + ", ".join(sorted(p.name for p in known_params)))
    known_images = set(plan.ir.graph.inputs)
    unknown = [img for img in inputs if img not in known_images]
    if unknown:
        names = ", ".join(sorted(repr(getattr(img, "name", img))
                                 for img in unknown))
        raise ExecutionError(
            f"unknown image(s) in inputs: {names}; the plan's inputs "
            "are: " + ", ".join(sorted(i.name for i in known_images)))


def execute_plan(plan: PipelinePlan,
                 param_values: Mapping[Parameter, int],
                 inputs: Mapping[Image, np.ndarray],
                 *, vectorize: bool = True,
                 n_threads: int = 1,
                 tracer: Tracer | None = None,
                 deadline=None,
                 out_pool=None) -> dict[str, np.ndarray]:
    """Run a compiled pipeline; returns output arrays keyed by stage name.

    ``tracer`` (the process-global one when omitted) records per-group
    and per-tile spans plus tile counts, scratch bytes and the
    redundant-compute ratio of each tiled group; all of it is skipped
    while the tracer is disabled.

    ``deadline`` is any object with a ``check(where)`` method (e.g.
    :class:`repro.serve.Deadline`); it is invoked cooperatively at every
    group boundary, between the stages of untiled groups, and at the
    start of every tile, so an expired deadline aborts execution with
    whatever ``check`` raises instead of running the frame to the end.

    ``out_pool`` is a :class:`repro.runtime.buffers.BufferPool`: every
    full-size buffer (outputs, live-out intermediates, accumulators) is
    acquired from it rather than freshly allocated, and every non-output
    buffer is released back before returning — output arrays stay leased
    until the caller releases them.  On an exception *all* acquired
    arrays are released.
    """
    tracer = tracer if tracer is not None else get_tracer()
    params = dict(param_values)
    _check_unknown_keys(plan, params, inputs)
    buffers: dict[Hashable, BufferView] = {}
    for image in plan.ir.graph.inputs:
        try:
            array = inputs[image]
        except KeyError:
            raise ExecutionError(
                f"missing input array for image {image.name!r}") from None
        extents = tuple(
            to_affine(e, params_only=True).evaluate_int(params)
            for e in image.extents)
        array = np.asarray(array, dtype=image.dtype.np_dtype)
        if array.shape != extents:
            raise ExecutionError(
                f"input {image.name!r} has shape {array.shape}, "
                f"expected {extents}")
        buffers[image] = BufferView(array, (0,) * array.ndim)

    if out_pool is None:
        alloc = BufferView.allocate
    else:
        acquired: list[np.ndarray] = []

        def alloc(box, dtype, fill=0):
            view = out_pool.acquire_view(box, dtype, fill)
            acquired.append(view.array)
            return view

    try:
        with tracer.span("execute_plan", cat="interp",
                         n_groups=len(plan.group_plans),
                         n_threads=n_threads):
            for gi, group_plan in enumerate(plan.group_plans):
                if deadline is not None:
                    deadline.check(f"group {gi}")
                names = ", ".join(s.name
                                  for s in group_plan.ordered_stages)
                if group_plan.is_tiled:
                    with tracer.span(f"group {gi} [tiled]", cat="interp",
                                     stages=names):
                        _run_tiled_group(plan, group_plan, params, buffers,
                                         vectorize, n_threads, tracer, gi,
                                         alloc=alloc, deadline=deadline)
                else:
                    with tracer.span(f"group {gi} [untiled]", cat="interp",
                                     stages=names):
                        _run_untiled_group(plan, group_plan, params,
                                           buffers, vectorize, alloc=alloc,
                                           deadline=deadline)
    except BaseException:
        if out_pool is not None:
            out_pool.release(*acquired)
        raise

    outputs: dict[str, np.ndarray] = {}
    for original, stage in plan.output_map.items():
        outputs[original.name] = buffers[stage].array
    if out_pool is not None:
        kept = {id(array) for array in outputs.values()}
        out_pool.release(*(a for a in acquired if id(a) not in kept))
    return outputs


def execute_plan_batch(plan: PipelinePlan,
                       param_values: Mapping[Parameter, int],
                       inputs_list,
                       *, vectorize: bool = True,
                       n_threads: int = 1,
                       tracer: Tracer | None = None,
                       deadline=None,
                       out_pool=None) -> list[dict[str, np.ndarray]]:
    """Run a batch of frames sharing one set of parameter values.

    The interpreter has no fixed per-call cost worth amortizing, so this
    is simply ``len(inputs_list)`` sequential :func:`execute_plan` calls
    — it exists as the differential-checking twin of
    :meth:`repro.codegen.build.NativePipeline.run_batch` and obeys the
    same contract: one output dict per frame, in order, byte-identical
    to the single-frame path.  On an exception, outputs of frames that
    already completed are released back to ``out_pool``.
    """
    results: list[dict[str, np.ndarray]] = []
    try:
        for inputs in inputs_list:
            results.append(execute_plan(
                plan, param_values, inputs, vectorize=vectorize,
                n_threads=n_threads, tracer=tracer, deadline=deadline,
                out_pool=out_pool))
    except BaseException:
        if out_pool is not None:
            for outputs in results:
                out_pool.release(*outputs.values())
        raise
    return results


# ---------------------------------------------------------------------------
# Untiled execution
# ---------------------------------------------------------------------------

def _allocate_full(stage_ir: StageIR, params, alloc=None) -> BufferView:
    box = stage_ir.domain.concretize(params)
    if box is None:
        raise ExecutionError(
            f"stage {stage_ir.name!r} has an empty domain under the given "
            "parameters")
    alloc = alloc if alloc is not None else BufferView.allocate
    return alloc(box, stage_ir.stage.dtype.np_dtype)


def _run_untiled_group(plan: PipelinePlan, group_plan: GroupPlan, params,
                       buffers, vectorize: bool, alloc=None,
                       deadline=None) -> None:
    alloc = alloc if alloc is not None else BufferView.allocate
    evaluator = Evaluator(params, buffers, vectorize)
    for stage in group_plan.ordered_stages:
        if deadline is not None:
            deadline.check(f"stage {stage.name}")
        stage_ir = plan.ir[stage]
        if stage_ir.is_accumulator:
            box = stage_ir.domain.concretize(params)
            if box is None:
                raise ExecutionError(
                    f"accumulator {stage_ir.name!r} has an empty domain")
            init = Evaluator.reduction_init(stage_ir.accumulate.op,
                                            stage_ir.stage.dtype.np_dtype)
            view = alloc(box, stage_ir.stage.dtype.np_dtype, init)
            buffers[stage] = view
            evaluator.accumulate(stage_ir, view)
        elif stage_ir.is_self_referential:
            buffers[stage] = _run_self_referential(stage_ir, params,
                                                   buffers, vectorize,
                                                   alloc)
        else:
            view = _allocate_full(stage_ir, params, alloc)
            buffers[stage] = view
            box = stage_ir.domain.concretize(params)
            view.write_region(box, evaluator.stage_values(stage_ir, box))


def _self_loop_dims(stage_ir: StageIR) -> list[int]:
    """Dimensions that must be iterated sequentially for self-references."""
    loop_dims: set[int] = set()
    for access in stage_ir.accesses:
        if access.producer is not stage_ir.stage:
            continue
        for d, form in enumerate(access.forms):
            if form is None:
                raise ExecutionError(
                    f"self-reference of {stage_ir.name!r} must use affine "
                    "indices")
            own = stage_ir.variables[d]
            if (form.divisor != 1 or form.aff.coefficient(own) != 1
                    or form.aff.const != 0 or len(form.aff.terms) != 1):
                loop_dims.add(d)
    return sorted(loop_dims)


def _check_self_access_order(stage_ir: StageIR, loop_dims: list[int]) -> None:
    """Every self-access must read lexicographically earlier points."""
    for access in stage_ir.accesses:
        if access.producer is not stage_ir.stage:
            continue
        offsets = []
        for d in loop_dims:
            form = access.forms[d]
            own = stage_ir.variables[d]
            if form.aff.coefficient(own) != 1 or form.divisor != 1:
                raise ExecutionError(
                    f"unsupported self-access in {stage_ir.name!r}")
            offsets.append(form.aff.const)
        if offsets and offsets[0] == 0 and all(o == 0 for o in offsets):
            continue  # same point: only legal inside other-case guards
        for o in offsets:
            if o < 0:
                break
            if o > 0:
                raise ExecutionError(
                    f"forward self-reference in {stage_ir.name!r} is not "
                    "executable")


def _run_self_referential(stage_ir: StageIR, params, buffers,
                          vectorize: bool, alloc=None) -> BufferView:
    box = stage_ir.domain.concretize(params)
    if box is None:
        raise ExecutionError(
            f"stage {stage_ir.name!r} has an empty domain under the given "
            "parameters")
    alloc = alloc if alloc is not None else BufferView.allocate
    view = alloc(box, stage_ir.stage.dtype.np_dtype)
    local = dict(buffers)
    local[stage_ir.stage] = view
    evaluator = Evaluator(params, local, vectorize)
    loop_dims = _self_loop_dims(stage_ir)
    _check_self_access_order(stage_ir, loop_dims)

    def rec(d_index: int, fixed: dict[int, int]) -> None:
        if d_index == len(loop_dims):
            region = tuple(
                IntInterval(fixed[d], fixed[d]) if d in fixed else box[d]
                for d in range(len(box)))
            view.write_region(region,
                              evaluator.stage_values(stage_ir, region))
            return
        d = loop_dims[d_index]
        for v in range(box[d].lo, box[d].hi + 1):
            fixed[d] = v
            rec(d_index + 1, fixed)
        del fixed[d]

    rec(0, {})
    return view


# ---------------------------------------------------------------------------
# Tiled execution
# ---------------------------------------------------------------------------

def _run_tiled_group(plan: PipelinePlan, group_plan: GroupPlan, params,
                     buffers, vectorize: bool, n_threads: int,
                     tracer: Tracer | None = None, gi: int = 0,
                     alloc=None, deadline=None) -> None:
    ir = plan.ir
    tracer = tracer if tracer is not None else get_tracer()
    transforms = group_plan.transforms
    assert transforms is not None
    liveouts = group_plan.liveouts
    for stage in liveouts:
        buffers[stage] = _allocate_full(ir[stage], params, alloc)

    stage_irs = {s: ir[s] for s in group_plan.ordered_stages}
    domain_boxes = {s: stage_irs[s].domain.concretize(params)
                    for s in group_plan.ordered_stages}
    liveout_set = set(liveouts)
    key = f"interp.group[{gi}]"

    def record_tile(tile_box, regions) -> None:
        """Per-tile metrics: counts, bytes, overlap-vs-owned points."""
        evaluated = 0
        owned_points = 0
        scratch_bytes = 0
        for stage, region in regions.items():
            points = 1
            for ivl in region:
                points *= ivl.size
            evaluated += points
            scratch_bytes += points * stage.dtype.np_dtype.itemsize
            owned = stage_tile_region(transforms[stage],
                                      domain_boxes[stage], tile_box)
            if owned is not None:
                points = 1
                for ivl in owned:
                    points *= ivl.size
                owned_points += points
        tracer.count(f"{key}.tiles")
        tracer.count(f"{key}.evaluated_points", evaluated)
        tracer.count(f"{key}.owned_points", owned_points)
        tracer.count(f"{key}.scratch_bytes", scratch_bytes)

    def run_tile(tile_box) -> None:
        if deadline is not None:
            deadline.check("tile " + "x".join(
                f"{ivl.lo}..{ivl.hi}" for ivl in tile_box))
        regions = compute_tile_regions(
            ir, transforms, group_plan.ordered_stages, liveouts,
            tile_box, params)
        if not regions:
            return
        if not tracer.enabled:  # skip even the label formatting when off
            _tile_body(tile_box, regions)
            return
        with tracer.span(
                "tile", cat="tile",
                tile="x".join(f"{ivl.lo}..{ivl.hi}" for ivl in tile_box)):
            record_tile(tile_box, regions)
            _tile_body(tile_box, regions)

    def _tile_body(tile_box, regions) -> None:
        local: dict[Hashable, BufferView] = dict(buffers)
        evaluator = Evaluator(params, local, vectorize)
        for stage in group_plan.ordered_stages:
            region = regions.get(stage)
            if region is None:
                continue
            stage_ir = stage_irs[stage]
            values = evaluator.stage_values(stage_ir, region)
            scratch = BufferView(values, tuple(ivl.lo for ivl in region))
            local[stage] = scratch
            if stage in liveout_set:
                owned = stage_tile_region(transforms[stage],
                                          domain_boxes[stage], tile_box)
                if owned is None:
                    continue
                clipped = []
                ok = True
                for o, r in zip(owned, region):
                    inter = o.intersect(r)
                    if inter is None:
                        ok = False
                        break
                    clipped.append(inter)
                if not ok:
                    continue
                owned = tuple(clipped)
                buffers[stage].write_region(owned,
                                            scratch.read_region(owned))

    tiles = list(group_plan.tiles(ir, params))
    if n_threads <= 1 or len(tiles) <= 1:
        for tile in tiles:
            run_tile(tile)
    else:
        pool = get_worker_pool(n_threads)
        futures = [pool.submit(run_tile, tile) for tile in tiles]
        try:
            for future in futures:
                future.result()
        finally:
            # A failed tile (e.g. an expired deadline) must not hand
            # control back while sibling tiles are still writing into
            # the shared live-out buffers — the caller may recycle them
            # (execute_plan releases pooled arrays on exception).
            # Cancel what has not started, then wait out the rest.
            for future in futures:
                future.cancel()
            _wait_futures(futures)

    if tracer.enabled:
        # redundant-compute ratio: points evaluated (owned + overlap)
        # over points owned — the overlap overhead of Section 3.4,
        # measured rather than modelled
        counters = tracer.metrics.counters()
        owned = counters.get(f"{key}.owned_points", 0)
        evaluated = counters.get(f"{key}.evaluated_points", 0)
        if owned:
            tracer.gauge(f"{key}.redundancy", evaluated / owned)
