"""Buffer views and buffer pools for the interpreter backend.

A :class:`BufferView` couples an ndarray with the domain origin it
represents, so stages can be stored in *full* buffers (origin = domain
lower bound) or tile-local *scratchpads* (origin = region lower bound)
and read through the same interface.  Reads clip indices to the stored
extent: case conditions guarantee clipped values are never actually used,
clipping just keeps speculative evaluation in-bounds (the generated C
clamps loop bounds the same way).

A :class:`BufferPool` recycles the full-size arrays a plan execution
allocates (outputs, live-out intermediates, accumulators) across frames:
the serving layer (:mod:`repro.serve`) executes every frame of one
pipeline against one pool, so steady-state serving performs zero
per-frame output allocation.  Recycled arrays are re-filled with the
requested fill value — the execution semantics rely on buffers starting
at zero outside case regions, and the native backend's output ABI
requires zero-filled pointers.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.poly.interval import IntInterval


class BufferView:
    """An ndarray plus the coordinate of its ``[0, ..., 0]`` element."""

    __slots__ = ("array", "origin")

    def __init__(self, array: np.ndarray, origin: Sequence[int]):
        if array.ndim != len(tuple(origin)):
            raise ValueError("origin must have one entry per array dim")
        self.array = array
        self.origin = tuple(int(o) for o in origin)

    @classmethod
    def allocate(cls, box: Sequence[IntInterval], dtype: np.dtype,
                 fill: float | int = 0) -> "BufferView":
        """Allocate a zero/``fill``-initialised buffer covering ``box``."""
        shape = tuple(ivl.size for ivl in box)
        if fill == 0:
            array = np.zeros(shape, dtype=dtype)
        else:
            array = np.full(shape, fill, dtype=dtype)
        return cls(array, tuple(ivl.lo for ivl in box))

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    def covers(self, box: Sequence[IntInterval]) -> bool:
        return all(o <= ivl.lo and ivl.hi < o + n
                   for o, n, ivl in zip(self.origin, self.shape, box))

    # -- reads ------------------------------------------------------------
    def read_strided(self, dim_specs: Sequence[tuple[int, int, int, int]]
                     ) -> np.ndarray | None:
        """Read via slices, one ``(a, b, lo, hi)`` spec per dimension.

        Selects ``array[a*v + b - origin]`` for ``v`` in ``[lo, hi]``.
        Returns ``None`` when any index would fall outside the stored
        extent (the caller falls back to the clipped gather).
        """
        slices = []
        for (a, b, lo, hi), org, n in zip(dim_specs, self.origin, self.shape):
            start = a * lo + b - org
            last = a * hi + b - org
            if start < 0 or last >= n:
                return None
            slices.append(slice(start, last + 1, a))
        return self.array[tuple(slices)]

    def read_gather(self, index_arrays: Sequence[np.ndarray | int]
                    ) -> np.ndarray:
        """Clipped fancy-indexed read with broadcastable index arrays."""
        rel = []
        for idx, org, n in zip(index_arrays, self.origin, self.shape):
            r = np.asarray(idx) - org
            rel.append(np.clip(r, 0, n - 1))
        return self.array[tuple(rel)]

    # -- writes -----------------------------------------------------------
    def region_slices(self, box: Sequence[IntInterval]) -> tuple[slice, ...]:
        return tuple(slice(ivl.lo - o, ivl.hi - o + 1)
                     for ivl, o in zip(box, self.origin))

    def write_region(self, box: Sequence[IntInterval],
                     values: np.ndarray) -> None:
        self.array[self.region_slices(box)] = values

    def read_region(self, box: Sequence[IntInterval]) -> np.ndarray:
        return self.array[self.region_slices(box)]


class BufferPool:
    """Reusable ndarray pool keyed by (shape, dtype), safe for threads.

    ``acquire`` hands out an array *filled* with the requested value
    (recycled arrays are re-filled; fresh ones come from ``np.zeros`` /
    ``np.full``), so pooled buffers are indistinguishable from freshly
    allocated ones.  ``release`` returns arrays for reuse; releasing an
    array twice or releasing foreign arrays is the caller's bug — the
    pool does not track outstanding leases by identity, only a count.

    ``max_per_key`` bounds how many idle arrays are parked per
    (shape, dtype) bucket; extras are dropped to the garbage collector
    rather than hoarded.
    """

    def __init__(self, max_per_key: int | None = None):
        self._free: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.max_per_key = max_per_key
        self._hits = 0
        self._misses = 0
        self._outstanding = 0

    @staticmethod
    def _key(shape: tuple[int, ...],
             dtype: np.dtype) -> tuple[tuple[int, ...], str]:
        return tuple(shape), np.dtype(dtype).str

    # -- leases ------------------------------------------------------------
    def acquire(self, shape: Sequence[int], dtype: np.dtype,
                fill: float | int = 0) -> np.ndarray:
        """A filled array of the given shape/dtype, recycled if possible."""
        shape = tuple(int(n) for n in shape)
        key = self._key(shape, dtype)
        with self._lock:
            bucket = self._free.get(key)
            array = bucket.pop() if bucket else None
            if array is not None:
                self._hits += 1
            else:
                self._misses += 1
            self._outstanding += 1
        if array is None:
            if fill == 0:
                return np.zeros(shape, dtype=dtype)
            return np.full(shape, fill, dtype=dtype)
        array.fill(fill)
        return array

    def acquire_view(self, box: Sequence[IntInterval], dtype: np.dtype,
                     fill: float | int = 0) -> BufferView:
        """Pooled counterpart of :meth:`BufferView.allocate`."""
        shape = tuple(ivl.size for ivl in box)
        return BufferView(self.acquire(shape, dtype, fill),
                          tuple(ivl.lo for ivl in box))

    def release(self, *arrays: np.ndarray) -> None:
        """Return arrays to the pool for reuse by later ``acquire`` calls.

        The caller must not touch an array after releasing it: the next
        frame may already be writing into it.
        """
        with self._lock:
            for array in arrays:
                self._outstanding -= 1
                key = self._key(array.shape, array.dtype)
                bucket = self._free.setdefault(key, [])
                if (self.max_per_key is None
                        or len(bucket) < self.max_per_key):
                    bucket.append(array)

    # -- inspection / maintenance -----------------------------------------
    def stats(self) -> dict:
        """Snapshot: hits, misses, hit_rate, outstanding and idle counts."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / lookups if lookups else 0.0,
                "outstanding": self._outstanding,
                "idle": sum(len(b) for b in self._free.values()),
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = 0

    def idle_bytes(self) -> int:
        with self._lock:
            return sum(a.nbytes for b in self._free.values() for a in b)

    def drain(self) -> int:
        """Drop every idle array; returns how many were freed."""
        with self._lock:
            n = sum(len(b) for b in self._free.values())
            self._free.clear()
        return n
