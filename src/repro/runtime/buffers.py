"""Buffer views for the interpreter backend.

A :class:`BufferView` couples an ndarray with the domain origin it
represents, so stages can be stored in *full* buffers (origin = domain
lower bound) or tile-local *scratchpads* (origin = region lower bound)
and read through the same interface.  Reads clip indices to the stored
extent: case conditions guarantee clipped values are never actually used,
clipping just keeps speculative evaluation in-bounds (the generated C
clamps loop bounds the same way).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.poly.interval import IntInterval


class BufferView:
    """An ndarray plus the coordinate of its ``[0, ..., 0]`` element."""

    __slots__ = ("array", "origin")

    def __init__(self, array: np.ndarray, origin: Sequence[int]):
        if array.ndim != len(tuple(origin)):
            raise ValueError("origin must have one entry per array dim")
        self.array = array
        self.origin = tuple(int(o) for o in origin)

    @classmethod
    def allocate(cls, box: Sequence[IntInterval], dtype: np.dtype,
                 fill: float | int = 0) -> "BufferView":
        """Allocate a zero/``fill``-initialised buffer covering ``box``."""
        shape = tuple(ivl.size for ivl in box)
        if fill == 0:
            array = np.zeros(shape, dtype=dtype)
        else:
            array = np.full(shape, fill, dtype=dtype)
        return cls(array, tuple(ivl.lo for ivl in box))

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    def covers(self, box: Sequence[IntInterval]) -> bool:
        return all(o <= ivl.lo and ivl.hi < o + n
                   for o, n, ivl in zip(self.origin, self.shape, box))

    # -- reads ------------------------------------------------------------
    def read_strided(self, dim_specs: Sequence[tuple[int, int, int, int]]
                     ) -> np.ndarray | None:
        """Read via slices, one ``(a, b, lo, hi)`` spec per dimension.

        Selects ``array[a*v + b - origin]`` for ``v`` in ``[lo, hi]``.
        Returns ``None`` when any index would fall outside the stored
        extent (the caller falls back to the clipped gather).
        """
        slices = []
        for (a, b, lo, hi), org, n in zip(dim_specs, self.origin, self.shape):
            start = a * lo + b - org
            last = a * hi + b - org
            if start < 0 or last >= n:
                return None
            slices.append(slice(start, last + 1, a))
        return self.array[tuple(slices)]

    def read_gather(self, index_arrays: Sequence[np.ndarray | int]
                    ) -> np.ndarray:
        """Clipped fancy-indexed read with broadcastable index arrays."""
        rel = []
        for idx, org, n in zip(index_arrays, self.origin, self.shape):
            r = np.asarray(idx) - org
            rel.append(np.clip(r, 0, n - 1))
        return self.array[tuple(rel)]

    # -- writes -----------------------------------------------------------
    def region_slices(self, box: Sequence[IntInterval]) -> tuple[slice, ...]:
        return tuple(slice(ivl.lo - o, ivl.hi - o + 1)
                     for ivl, o in zip(box, self.origin))

    def write_region(self, box: Sequence[IntInterval],
                     values: np.ndarray) -> None:
        self.array[self.region_slices(box)] = values

    def read_region(self, box: Sequence[IntInterval]) -> np.ndarray:
        return self.array[self.region_slices(box)]
