"""Interpreter backend: NumPy evaluation of compiled pipeline plans."""

from repro.runtime.buffers import BufferView
from repro.runtime.evaluator import EvaluationError, Evaluator
from repro.runtime.executor import ExecutionError, execute_plan
from repro.runtime.split_executor import SplitTilingError, execute_plan_split

__all__ = ["BufferView", "EvaluationError", "Evaluator", "ExecutionError",
           "SplitTilingError", "execute_plan", "execute_plan_split"]
