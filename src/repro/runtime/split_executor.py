"""Split-tiled execution — an executable version of Figure 5's comparison.

The paper argues overlapped tiling beats split tiling for image pipelines
because split tiling must keep tile-boundary values live (full buffers,
cross-tile communication) even though it does no redundant work.  The
Halide scheduling language cannot express split tiling at all (paper
Section 5); this module implements it for 1-D, unit-scale fused groups so
the trade-off is *measurable*, not just modelled:

* **Phase 1** evaluates upward trapezoids: the bottom stage covers the
  whole tile; each consumer shrinks inward by its dependence reach.  All
  tiles are independent.
* **Phase 2** fills the downward wedges between adjacent trapezoids,
  reading phase-1 values across tile boundaries.  All boundaries are
  independent of each other.

Unlike overlapped execution, *every* stage needs a full-size buffer —
exactly the storage cost the paper's Section 3.2 analysis points at.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Mapping

import numpy as np

from repro.compiler.deps import edge_dependences
from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.poly.interval import IntInterval
from repro.runtime.buffers import BufferView
from repro.runtime.evaluator import Evaluator
from repro.runtime.executor import (
    ExecutionError, _allocate_full, _run_untiled_group,
)


class SplitTilingError(ExecutionError):
    """The group cannot be executed with split tiling."""


def _forward_reaches(plan: PipelinePlan, gp: GroupPlan
                     ) -> dict[Hashable, tuple[int, int]]:
    """Per stage, the inward shrink (a, b) of its phase-1 trapezoid.

    Source stages sit at the tile base (0, 0); a consumer shrinks by its
    producers' shrink plus the dependence reach in each direction.
    """
    ir = plan.ir
    transforms = gp.transforms
    assert transforms is not None
    members = set(gp.ordered_stages)
    reaches: dict[Hashable, tuple[int, int]] = {}
    for stage in gp.ordered_stages:
        t = transforms[stage]
        if t.ndim != 1 or t.scales[0] != 1:
            raise SplitTilingError(
                "split-tiled execution supports 1-D, unit-scale groups")
        a = b = Fraction(0)
        for producer in ir.graph.producers(stage):
            if producer not in members:
                continue
            pa, pb = reaches[producer]
            dep = edge_dependences(ir, transforms, producer, stage)
            rng = dep.ranges[0]
            a = max(a, pa + max(rng.hi, Fraction(0)))
            b = max(b, pb + max(-rng.lo, Fraction(0)))
        reaches[stage] = (a, b)
    out = {}
    for stage, (a, b) in reaches.items():
        if a.denominator != 1 or b.denominator != 1:
            raise SplitTilingError("non-integral dependence reach")
        out[stage] = (int(a), int(b))
    return out


def execute_split_group(plan: PipelinePlan, gp: GroupPlan,
                        params: Mapping[Parameter, int],
                        buffers: dict, vectorize: bool = True,
                        deadline=None) -> None:
    """Run one tiled group with two-phase split tiling.

    ``deadline`` (any object with ``check(where)``, e.g.
    :class:`repro.serve.Deadline`) is consulted at every trapezoid and
    wedge boundary, mirroring the overlapped executor's per-tile
    checkpoints.
    """
    ir = plan.ir
    reaches = _forward_reaches(plan, gp)
    tau = gp.tile_sizes[0]
    widest = max(a + b for a, b in reaches.values())
    if widest > tau:
        raise SplitTilingError(
            f"group is deeper than the tile: wedge width {widest} exceeds "
            f"tile size {tau}")

    # full buffers for every stage: split tiling keeps boundary values live
    domain_boxes = {}
    for stage in gp.ordered_stages:
        stage_ir = ir[stage]
        buffers[stage] = _allocate_full(stage_ir, params)
        domain_boxes[stage] = stage_ir.domain.concretize(params)
    evaluator = Evaluator(params, buffers, vectorize)

    space = gp.tile_space(ir, params)
    if space is None:
        return
    first = space[0].lo // tau
    last = space[0].hi // tau

    # phase 1: upward trapezoids, independent per tile
    for t in range(first, last + 1):
        if deadline is not None:
            deadline.check(f"split trapezoid {t}")
        t_lo, t_hi = t * tau, (t + 1) * tau - 1
        for stage in gp.ordered_stages:
            a, b = reaches[stage]
            lo, hi = t_lo + a, t_hi - b
            region = IntInterval(lo, hi).intersect(domain_boxes[stage][0]) \
                if lo <= hi else None
            if region is None:
                continue
            values = evaluator.stage_values(ir[stage], (region,))
            buffers[stage].write_region((region,), values)

    # phase 2: downward wedges at every boundary, independent per boundary
    for e in range(first - 1, last + 1):
        if deadline is not None:
            deadline.check(f"split wedge {e}")
        edge = (e + 1) * tau - 1
        for stage in gp.ordered_stages:
            a, b = reaches[stage]
            if a == 0 and b == 0:
                continue
            lo, hi = edge + 1 - b, edge + a
            region = IntInterval(lo, hi).intersect(domain_boxes[stage][0]) \
                if lo <= hi else None
            if region is None:
                continue
            values = evaluator.stage_values(ir[stage], (region,))
            buffers[stage].write_region((region,), values)


def execute_plan_split(plan: PipelinePlan,
                       param_values: Mapping[Parameter, int],
                       inputs: Mapping[Image, np.ndarray],
                       *, vectorize: bool = True,
                       deadline=None) -> dict[str, np.ndarray]:
    """Execute a plan using split tiling for its tiled groups.

    A drop-in alternative to :func:`repro.runtime.executor.execute_plan`
    for pipelines whose tiled groups are 1-D and unit-scale; used to
    ground Figure 5's split-tiling column.
    """
    from repro.poly.affine import to_affine

    params = dict(param_values)
    buffers: dict = {}
    for image in plan.ir.graph.inputs:
        array = np.asarray(inputs[image], dtype=image.dtype.np_dtype)
        extents = tuple(
            to_affine(e, params_only=True).evaluate_int(params)
            for e in image.extents)
        if array.shape != extents:
            raise ExecutionError(
                f"input {image.name!r} has shape {array.shape}, "
                f"expected {extents}")
        buffers[image] = BufferView(array, (0,) * array.ndim)

    for gp in plan.group_plans:
        if deadline is not None:
            deadline.check("split group")
        if gp.is_tiled:
            execute_split_group(plan, gp, params, buffers, vectorize,
                                deadline=deadline)
        else:
            _run_untiled_group(plan, gp, params, buffers, vectorize,
                               deadline=deadline)

    return {original.name: buffers[stage].array
            for original, stage in plan.output_map.items()}
