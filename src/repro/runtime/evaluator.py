"""Region-wise NumPy evaluation of stage definitions.

The interpreter backend's core: evaluates a stage's piece-wise definition
over a rectangular region, reading producer values from
:class:`~repro.runtime.buffers.BufferView` objects.  Two access paths
exist, mirroring the paper's vectorization discussion:

* a *strided-slice* path for affine accesses ``a*v + b`` aligned with the
  region axes — this is the vectorized regime generated C reaches through
  ``ivdep`` inner loops;
* a *gather* path (clipped fancy indexing) for sampled, transposed and
  data-dependent accesses.

Passing ``vectorize=False`` forces every access through the gather path,
standing in for the paper's scalar (non-vectorized) variants.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import (
    BinOp, BoolExpr, Call, Cast, CondAnd, Condition, CondNot, CondOr, Expr,
    Literal, Reference, Select, TrueCond, UnOp,
)
from repro.lang.function import Reduction
from repro.pipeline.ir import StageIR
from repro.poly.affine import analyze_access
from repro.poly.interval import IntInterval
from repro.runtime.buffers import BufferView

_CALL_IMPL = {
    "exp": np.exp, "log": np.log, "sqrt": np.sqrt, "sin": np.sin,
    "cos": np.cos, "tan": np.tan, "atan": np.arctan, "abs": np.abs,
    "floor": np.floor, "ceil": np.ceil,
}


class EvaluationError(RuntimeError):
    """An expression could not be evaluated (missing buffer, bad call)."""


class Evaluator:
    """Evaluates stage definitions over regions against a buffer set.

    Note: array-granularity common-subexpression caching was tried here
    and measured *slower* — holding references to intermediate arrays
    defeats NumPy's refcount-1 temporary elision, so every subsequent
    operation allocates fresh buffers.  Subexpression reuse is left to
    the C backend, whose compiler CSEs scalars for free.
    """

    def __init__(self, param_env: Mapping[Parameter, int],
                 buffers: Mapping[Hashable, BufferView],
                 vectorize: bool = True):
        self.param_env = dict(param_env)
        self.buffers = buffers
        self.vectorize = vectorize

    # -- grids --------------------------------------------------------------
    @staticmethod
    def grids(variables: Sequence[Variable],
              region: Sequence[IntInterval]) -> dict[Variable, np.ndarray]:
        """Broadcastable integer index arrays, one per region dimension."""
        ndim = len(region)
        env = {}
        for d, (var, ivl) in enumerate(zip(variables, region)):
            shape = [1] * ndim
            shape[d] = ivl.size
            env[var] = np.arange(ivl.lo, ivl.hi + 1,
                                 dtype=np.int64).reshape(shape)
        return env

    # -- stage evaluation ----------------------------------------------------
    def stage_values(self, stage_ir: StageIR,
                     region: Sequence[IntInterval]) -> np.ndarray:
        """Evaluate a function stage over ``region``.

        Cases whose conditions are pure bound constraints are evaluated
        over the exact sub-box (the paper's domain splitting); cases with
        residual conditions are masked point-wise.  Points covered by no
        case are left at zero.
        """
        shape = tuple(ivl.size for ivl in region)
        dtype = stage_ir.stage.dtype.np_dtype
        result = np.zeros(shape, dtype=dtype)
        for case in stage_ir.cases:
            sub_box = self._case_region(case, region)
            if sub_box is None:
                continue
            env = self.grids(stage_ir.variables, sub_box)
            values = self.eval_expr(case.expression, env)
            target = result[tuple(
                slice(s.lo - r.lo, s.hi - r.lo + 1)
                for s, r in zip(sub_box, region))]
            if case.split.residual:
                mask = self._eval_residual(case.split.residual, env)
                mask = np.broadcast_to(mask, target.shape)
                np.copyto(target, np.asarray(values, dtype=dtype),
                          where=mask)
            else:
                target[...] = values
        return result

    def _case_region(self, case, region: Sequence[IntInterval]
                     ) -> tuple[IntInterval, ...] | None:
        box = case.box.concretize(self.param_env)
        if box is None:
            return None
        out = []
        for b, r in zip(box, region):
            inter = b.intersect(r)
            if inter is None:
                return None
            out.append(inter)
        return tuple(out)

    def _eval_residual(self, residual, env) -> np.ndarray:
        mask = None
        for cond in residual:
            m = self.eval_condition(cond, env)
            mask = m if mask is None else np.logical_and(mask, m)
        return mask if mask is not None else np.bool_(True)

    # -- accumulators ---------------------------------------------------------
    @staticmethod
    def reduction_init(op: str, dtype: np.dtype) -> float | int:
        """Identity element of a reduction operator for the given dtype."""
        if op == Reduction.Sum:
            return 0
        if op == Reduction.Min:
            return (np.inf if np.issubdtype(dtype, np.floating)
                    else np.iinfo(dtype).max)
        if op == Reduction.Max:
            return (-np.inf if np.issubdtype(dtype, np.floating)
                    else np.iinfo(dtype).min)
        raise ValueError(f"unknown reduction {op!r}")

    def accumulate(self, stage_ir: StageIR, out: BufferView) -> None:
        """Evaluate an accumulator over its reduction domain into ``out``.

        Contributions whose (possibly data-dependent) target index falls
        outside the accumulator's variable domain are dropped.
        """
        acc = stage_ir.accumulate
        assert acc is not None and stage_ir.reduction_domain is not None
        red_box = stage_ir.reduction_domain.concretize(self.param_env)
        var_box = stage_ir.domain.concretize(self.param_env)
        if red_box is None or var_box is None:
            return
        env = self.grids(stage_ir.stage.red_variables, red_box)
        red_shape = tuple(ivl.size for ivl in red_box)

        index_arrays = []
        in_range = np.ones(red_shape, dtype=bool)
        for d, arg in enumerate(acc.target.args):
            idx = np.broadcast_to(
                np.asarray(self.eval_expr(arg, env)), red_shape)
            idx = idx.astype(np.int64, copy=True)
            in_range &= (idx >= var_box[d].lo) & (idx <= var_box[d].hi)
            index_arrays.append(idx)

        values = np.broadcast_to(
            np.asarray(self.eval_expr(acc.value, env),
                       dtype=out.array.dtype), red_shape)

        flat_ok = in_range.ravel()
        rel = tuple((idx - org).ravel()[flat_ok]
                    for idx, org in zip(index_arrays, out.origin))
        vals = values.ravel()[flat_ok]
        if acc.op == Reduction.Sum:
            np.add.at(out.array, rel, vals)
        elif acc.op == Reduction.Min:
            np.minimum.at(out.array, rel, vals)
        else:
            np.maximum.at(out.array, rel, vals)

    # -- expressions ------------------------------------------------------------
    def eval_expr(self, expr: Expr, env: Mapping[Variable, np.ndarray]):
        """Evaluate a value expression over index-grid environment ``env``."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Variable):
            try:
                return env[expr]
            except KeyError:
                raise EvaluationError(
                    f"free variable {expr.name!r} in expression") from None
        if isinstance(expr, Parameter):
            try:
                return self.param_env[expr]
            except KeyError:
                raise EvaluationError(
                    f"no value for parameter {expr.name!r}") from None
        if isinstance(expr, Reference):
            return self._eval_reference(expr, env)
        if isinstance(expr, BinOp):
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return np.true_divide(left, right)
            if expr.op == "//":
                return np.floor_divide(left, right)
            return np.mod(left, right)
        if isinstance(expr, UnOp):
            return -self.eval_expr(expr.operand, env)
        if isinstance(expr, Cast):
            value = self.eval_expr(expr.operand, env)
            return np.asarray(value).astype(expr.dtype.np_dtype)
        if isinstance(expr, Select):
            cond = self.eval_condition(expr.condition, env)
            return np.where(cond,
                            self.eval_expr(expr.true_expr, env),
                            self.eval_expr(expr.false_expr, env))
        if isinstance(expr, Call):
            args = [self.eval_expr(a, env) for a in expr.args]
            if expr.name == "min":
                out = args[0]
                for a in args[1:]:
                    out = np.minimum(out, a)
                return out
            if expr.name == "max":
                out = args[0]
                for a in args[1:]:
                    out = np.maximum(out, a)
                return out
            if expr.name == "pow":
                return np.power(args[0], args[1])
            impl = _CALL_IMPL.get(expr.name)
            if impl is None:
                raise EvaluationError(f"no implementation for {expr.name!r}")
            return impl(*args)
        raise EvaluationError(f"cannot evaluate {expr!r}")

    def eval_condition(self, cond: BoolExpr, env):
        """Evaluate a condition tree to a boolean array/scalar."""
        if isinstance(cond, TrueCond):
            return np.bool_(True)
        if isinstance(cond, Condition):
            lhs = self.eval_expr(cond.lhs, env)
            rhs = self.eval_expr(cond.rhs, env)
            op = cond.op
            if op == "<":
                return np.less(lhs, rhs)
            if op == "<=":
                return np.less_equal(lhs, rhs)
            if op == ">":
                return np.greater(lhs, rhs)
            if op == ">=":
                return np.greater_equal(lhs, rhs)
            if op == "==":
                return np.equal(lhs, rhs)
            return np.not_equal(lhs, rhs)
        if isinstance(cond, CondAnd):
            return np.logical_and(self.eval_condition(cond.left, env),
                                  self.eval_condition(cond.right, env))
        if isinstance(cond, CondOr):
            return np.logical_or(self.eval_condition(cond.left, env),
                                 self.eval_condition(cond.right, env))
        if isinstance(cond, CondNot):
            return np.logical_not(self.eval_condition(cond.operand, env))
        raise EvaluationError(f"cannot evaluate condition {cond!r}")

    # -- references ------------------------------------------------------------
    def _eval_reference(self, ref: Reference, env):
        buffer = self.buffers.get(ref.function)
        if buffer is None:
            raise EvaluationError(
                f"no buffer for {getattr(ref.function, 'name', ref.function)!r}")
        if self.vectorize:
            specs = self._strided_specs(ref, env)
            if specs is not None:
                view = buffer.read_strided(specs)
                if view is not None:
                    return view
        index_arrays = [self.eval_expr(arg, env) for arg in ref.args]
        index_arrays = [np.floor_divide(np.asarray(i), 1).astype(np.int64)
                        if not np.issubdtype(np.asarray(i).dtype, np.integer)
                        else i
                        for i in index_arrays]
        return buffer.read_gather(index_arrays)

    def _strided_specs(self, ref: Reference, env):
        """Slice specs when every index is ``a*v + b`` on its own axis."""
        specs = []
        for d, arg in enumerate(ref.args):
            form = analyze_access(arg)
            if form is None or form.divisor != 1:
                return None
            variables = form.aff.variables()
            if len(variables) != 1 or form.aff.parameters():
                return None
            var = variables[0]
            grid = env.get(var)
            if grid is None:
                return None
            # the variable must lie on axis d of the evaluation grid
            axis = _grid_axis(grid)
            if axis != d:
                return None
            coeff = form.aff.coefficient(var)
            const = form.aff.const
            if coeff.denominator != 1 or const.denominator != 1 or coeff <= 0:
                return None
            lo = int(grid.min())
            hi = int(grid.max())
            specs.append((int(coeff), int(const), lo, hi))
        return specs


def _grid_axis(grid: np.ndarray) -> int | None:
    """Axis along which a broadcastable grid array varies (None if 0-d)."""
    axes = [i for i, n in enumerate(grid.shape) if n > 1]
    if len(axes) == 1:
        return axes[0]
    if len(axes) == 0:
        # single-element grid: treat its position as unknown but harmless;
        # strided read with lo == hi works on any axis, so pick by shape.
        return None
    return None
