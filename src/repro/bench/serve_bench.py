"""Serving benchmark: sustained throughput and tail latency under load.

Usage::

    python -m repro.bench.serve_bench [--app harris] [--scale small]
        [--frames 120] [--clients 4] [--workers 2] [--threads 1]
        [--backend auto] [--warmup 16] [--max-batch 8] [--no-coalesce]
        [--process-workers 0] [--workers-sweep 1,2,4] [--burst]
        [--events events.jsonl] [--metrics-port 0]
        [--metrics-out metrics.prom] [--sample-rate 0.0]
        [--json BENCH_serve.json]

Streams frames through one :class:`~repro.serve.PipelineService` from
``--clients`` closed-loop client threads (submit → wait → release) and
reports the serving-centric numbers single-shot benchmarks hide:

* sustained **frames/sec** over the measured window,
* client-observed latency **p50/p90/p99** (queue wait included — that is
  what a caller experiences, unlike per-call kernel time),
* the **pool hit rate across the measured window only** — steady-state
  serving should allocate nothing, so after warmup the rate must be
  100% (asserted into the JSON, not just printed),
* the **server-side stage breakdown** (queue_wait / batch_wait /
  execute / total medians from the service's lifecycle histograms) so a
  latency regression points at the guilty stage, not just the total.

``--events PATH`` streams every lifecycle event to a JSON-lines file;
``--metrics-port N`` starts the Prometheus endpoint during the run,
scrapes it after the measured phase, validates the exposition text and
records the result (``--metrics-out`` keeps the scraped text).

``--process-workers N`` serves the run through the process-sharded
tier (:class:`~repro.serve.ShardedService`, N spawn-mode workers)
instead of the in-process thread service.  ``--workers-sweep 1,2,4``
additionally benchmarks the sharded tier at each worker count and
records an fps-vs-workers ``scaling`` block (with the machine's CPU
count — scaling past the physical cores is not expected).  ``--burst``
measures overload behaviour: it probes the sustainable closed-loop
rate, then open-loop submits at twice that rate for two seconds and
records how the backlog resolved — completions, bounded p99, and
:class:`~repro.serve.Overloaded` rejections (never hangs).

The warmup phase batch-submits all its frames and holds every result
until the last completes before releasing them: the pool ends warmup
holding one buffer set per warmup frame, which upper-bounds the measured
phase's peak concurrency (``clients`` waiting + ``workers`` executing),
so steady state is guaranteed — not just likely — to allocate nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro import compile_pipeline
from repro.bench.harness import (
    APP_BUILDERS, DEFAULT_TILES, make_instance,
)
from repro.compiler.options import CompileOptions
from repro.observe.metrics import LatencyWindow
from repro.serve import Overloaded, PipelineService, ShardedService


def _run_phase(service: PipelineService, instance, clients: int,
               frames_per_client: int,
               window: LatencyWindow | None = None) -> list[str]:
    """Closed-loop clients: each submits, waits, releases, repeats."""
    import threading

    errors: list[str] = []

    def client(k: int) -> None:
        for i in range(frames_per_client):
            t0 = time.perf_counter()
            try:
                with service.run(instance.values, instance.inputs):
                    pass
            except Exception as exc:  # noqa: BLE001 - reported in JSON
                errors.append(f"client {k} frame {i}: "
                              f"{type(exc).__name__}: {exc}")
                continue
            if window is not None:
                window.record(time.perf_counter() - t0)

    threads = [threading.Thread(target=client, args=(k,))
               for k in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


def _scrape_metrics(service) -> dict:
    """Scrape the service's own metrics endpoint over HTTP (stdlib
    urllib) and validate the exposition text; returns the scrape record
    (including the raw text for ``--metrics-out``)."""
    import urllib.request

    from repro.observe.export import validate_exposition_text

    server = service.serve_metrics()
    with urllib.request.urlopen(server.url, timeout=10) as resp:
        text = resp.read().decode("utf-8")
        content_type = resp.headers.get("Content-Type", "")
    problems = validate_exposition_text(text)
    return {
        "url": server.url,
        "content_type": content_type,
        "bytes": len(text),
        "problems": problems,
        "scrape_ok": not problems,
        "text": text,
    }


def _make_service(compiled, *, workers: int, process_workers: int,
                  backend: str, max_queue: int, max_batch: int,
                  coalesce: bool, n_threads: int,
                  events_path: str | None = None,
                  sample_rate: float = 0.0):
    """Thread service by default; the process-sharded tier when
    ``process_workers`` ≥ 1 (``workers`` then means threads per shard)."""
    if process_workers:
        return ShardedService(compiled, workers=process_workers,
                              max_queue=max_queue, backend=backend,
                              max_batch=max_batch, coalesce=coalesce,
                              n_threads=n_threads,
                              inner_workers=workers,
                              events_path=events_path)
    return PipelineService(compiled, workers=workers,
                           max_queue=max_queue, backend=backend,
                           max_batch=max_batch, coalesce=coalesce,
                           n_threads=n_threads, events_path=events_path,
                           sample_rate=sample_rate)


def bench_serving(app: str, scale: str, *, frames: int, clients: int,
                  workers: int, n_threads: int, backend: str,
                  warmup: int, max_batch: int = 8,
                  coalesce: bool = True,
                  process_workers: int = 0,
                  events_path: str | None = None,
                  metrics_port: int | None = None,
                  sample_rate: float = 0.0) -> dict:
    """Benchmark one app behind a service; returns the JSON record."""
    instance = make_instance(app, scale)
    options = CompileOptions.optimized(DEFAULT_TILES[app])
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name=f"serve_{app}")

    per_client = max(1, frames // clients)
    # warmup must seed at least one buffer set per concurrently leased
    # frame: clients waiting on results + workers mid-execution
    warmup = max(warmup, clients + workers + 1)
    window = LatencyWindow(capacity=max(2048, per_client * clients))

    with _make_service(compiled, workers=workers,
                       process_workers=process_workers,
                       backend=backend,
                       max_queue=max(64, clients * 4, warmup),
                       max_batch=max_batch, coalesce=coalesce,
                       n_threads=n_threads, events_path=events_path,
                       sample_rate=sample_rate) as service:
        if backend != "interpreter" or process_workers:
            service.wait_ready()
        if metrics_port is not None:
            service.serve_metrics(port=metrics_port)

        # batch-submit and hold every warmup frame so the pool ends
        # warmup owning `warmup` buffer sets (see module docstring)
        futures = [service.submit(instance.values, instance.inputs)
                   for _ in range(warmup)]
        held = []
        warm_errors = []
        for future in futures:
            try:
                held.append(future.result())
            except Exception as exc:  # noqa: BLE001 - reported in JSON
                warm_errors.append(f"warmup: {type(exc).__name__}: {exc}")
        for frame in held:
            frame.release()
        pool_before = service.stats().pool

        t0 = time.perf_counter()
        errors = _run_phase(service, instance, clients, per_client,
                            window)
        elapsed = time.perf_counter() - t0

        stats = service.stats()
        pool_after = stats.pool
        transport = service.transport() if process_workers else None
        scrape = _scrape_metrics(service) \
            if metrics_port is not None else None

    measured = per_client * clients - len(errors)
    hits = pool_after.get("hits", 0) - pool_before.get("hits", 0)
    misses = pool_after.get("misses", 0) - pool_before.get("misses", 0)
    latency = window.snapshot()
    return {
        "app": app,
        "scale": scale,
        "backend": stats.backend,
        "clients": clients,
        "workers": workers,
        "process_workers": process_workers,
        "n_threads": n_threads,
        "max_batch": max_batch,
        "coalesce": coalesce,
        "warmup_frames": warmup,
        "measured_frames": measured,
        "elapsed_s": elapsed,
        "fps": measured / elapsed if elapsed > 0 else 0.0,
        "batching": {
            "batches": stats.batches,
            "batched_frames": stats.batched_frames,
            "mean_batch_size": stats.mean_batch_size,
        },
        "latency_ms": latency,
        "stages": stats.to_dict()["stages"],
        "pool_window": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 1.0,
        },
        "service": stats.as_dict(),
        "transport": transport,
        "metrics_scrape": scrape,
        "errors": warm_errors + errors,
    }


def bench_scaling(app: str, scale: str, *, worker_counts, frames: int,
                  clients: int, n_threads: int, backend: str,
                  inner_workers: int = 2, max_batch: int = 8) -> dict:
    """fps-vs-workers sweep over the process-sharded tier.

    Speedups are relative to the 1-worker run; ``cpus`` records how
    many cores the sweep actually had — on a single-core box the
    honest speedup is ~1.0 regardless of worker count.
    """
    points = []
    base_fps = None
    for count in worker_counts:
        record = bench_serving(
            app, scale, frames=frames,
            clients=max(clients, 2 * count), workers=inner_workers,
            n_threads=n_threads, backend=backend, warmup=8,
            max_batch=max_batch, process_workers=count)
        if base_fps is None:
            base_fps = record["fps"] or 1e-9
        points.append({
            "workers": count,
            "fps": record["fps"],
            "speedup_vs_1": record["fps"] / base_fps,
            "latency_ms": record["latency_ms"],
            "measured_frames": record["measured_frames"],
            "errors": len(record["errors"]),
        })
    return {
        "app": app,
        "scale": scale,
        "backend": backend,
        "cpus": os.cpu_count() or 1,
        "inner_workers": inner_workers,
        "points": points,
    }


def bench_burst(app: str, scale: str, *, process_workers: int,
                n_threads: int, backend: str, inner_workers: int = 2,
                burst_factor: float = 2.0, burst_s: float = 2.0,
                probe_s: float = 3.0) -> dict:
    """Overload burst: probe the sustainable rate, then submit at
    ``burst_factor``× that rate for ``burst_s`` seconds (open loop) and
    report how the backlog resolved — every future must settle, the
    overflow must surface as :class:`Overloaded` rejections, and the
    completion p99 stays bounded by the queue depth, not the burst."""
    instance = make_instance(app, scale)
    options = CompileOptions.optimized(DEFAULT_TILES[app])
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name=f"burst_{app}")
    max_queue = 32
    with _make_service(compiled, workers=inner_workers,
                       process_workers=process_workers,
                       backend=backend, max_queue=max_queue,
                       max_batch=8, coalesce=True,
                       n_threads=n_threads) as service:
        service.wait_ready()
        # closed-loop probe: one client at a time = sustainable rate
        done = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < probe_s:
            with service.run(instance.values, instance.inputs):
                pass
            done += 1
        sustainable_fps = done / (time.perf_counter() - t0)

        target_fps = burst_factor * sustainable_fps
        interval = 1.0 / target_fps if target_fps > 0 else 0.01
        window = LatencyWindow(capacity=65536)
        window_lock = threading.Lock()
        futures = []
        submitted = rejected = 0
        t0 = time.perf_counter()

        def on_done(started, future):
            # completion latency stamps at resolution time, not at the
            # post-burst drain (which would read as ~burst_s for every
            # frame that finished early)
            elapsed = time.perf_counter() - started
            if future.exception() is None:
                with window_lock:
                    window.record(elapsed)

        while True:
            now = time.perf_counter()
            if now - t0 >= burst_s:
                break
            # absolute schedule: sleep only when ahead, so a loaded box
            # degrades to submitting flat-out instead of under-driving
            due = t0 + (submitted + rejected) * interval
            if due > now:
                time.sleep(due - now)
            started = time.perf_counter()
            try:
                future = service.submit(instance.values, instance.inputs)
            except Overloaded:
                rejected += 1
                continue
            future.add_done_callback(
                lambda f, s=started: on_done(s, f))
            futures.append(future)
            submitted += 1

        completed = failed = 0
        for future in futures:
            try:
                future.result(timeout=120).release()
                completed += 1
            except Exception:  # noqa: BLE001 - counted, must not hang
                failed += 1
        drained_s = time.perf_counter() - t0
    return {
        "app": app,
        "scale": scale,
        "process_workers": process_workers,
        "sustainable_fps": sustainable_fps,
        "burst_factor": burst_factor,
        "burst_s": burst_s,
        "max_queue": max_queue,
        "submitted": submitted,
        "rejected": rejected,
        "completed": completed,
        "failed": failed,
        "resolved_all": completed + failed == submitted,
        "drained_s": drained_s,
        "latency_ms": window.snapshot(),
    }


def bench_cold_start(app: str, scale: str, *, process_workers: int = 2,
                     n_threads: int = 1, inner_workers: int = 2,
                     cache_dir: str | None = None) -> dict:
    """Warm-store cold start: time-to-first-native-frame with and
    without a populated schedule store.

    Two runs against the same (initially empty) artifact cache: the
    first serves with ``store="rw"`` — full pipeline, codegen, gcc —
    and publishes the schedule; the second serves with ``store="ro"``
    and must cold-start every shard by ``dlopen``-ing the published
    artifact (``loaded_from_store`` per shard, zero compile seconds).
    Records both times; the robust invariants CI asserts are
    ``warm_from_store`` and ``warm_compile_s == 0``, not the absolute
    speedup (which varies with machine load).
    """
    import tempfile

    instance = make_instance(app, scale)
    options = CompileOptions.optimized(DEFAULT_TILES[app])
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_coldstart_")
        cache_dir = tmp.name

    def one_run(store: str) -> dict:
        # a fresh middle-end compile per run — a real cold process
        # would not inherit the parent's plan either
        compiled = compile_pipeline(instance.app.outputs,
                                    instance.values, options,
                                    name=f"cold_{app}")
        t0 = time.perf_counter()
        with ShardedService(compiled, workers=process_workers,
                            backend="auto", n_threads=n_threads,
                            inner_workers=inner_workers,
                            build_kwargs={"store": store,
                                          "cache_dir": cache_dir}
                            ) as service:
            backend = service.wait_ready(300)
            with service.run(instance.values, instance.inputs) as frame:
                first_native_s = time.perf_counter() - t0
                frame_backend = frame.backend
            provenance = service.build_provenance()
        return {
            "store": store,
            "backend": backend,
            "first_frame_backend": frame_backend,
            "time_to_first_native_s": first_native_s,
            "shards": provenance,
        }

    try:
        cold = one_run("rw")
        warm = one_run("ro")
    finally:
        if tmp is not None:
            tmp.cleanup()
    shards = [p for p in warm["shards"].values() if p]
    warm_from_store = bool(shards) and \
        all(p.get("loaded_from_store") for p in shards)
    warm_compile_s = sum(p.get("compile_s") or 0.0 for p in shards)
    warm_s = warm["time_to_first_native_s"]
    return {
        "app": app,
        "scale": scale,
        "process_workers": process_workers,
        "cold": cold,
        "warm": warm,
        "warm_from_store": warm_from_store,
        "warm_compile_s": warm_compile_s,
        "speedup": (cold["time_to_first_native_s"] / warm_s)
        if warm_s > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve_bench",
        description=__doc__.split("\n")[0])
    parser.add_argument("--app", default="harris",
                        choices=sorted(APP_BUILDERS))
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--frames", type=int, default=120)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--warmup", type=int, default=16)
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "interpreter", "native"))
    parser.add_argument("--max-batch", type=int, default=8,
                        help="cap on frames coalesced per native batch "
                             "call (1 disables)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable request coalescing entirely")
    parser.add_argument("--process-workers", type=int, default=0,
                        metavar="N",
                        help="serve through N worker processes "
                             "(ShardedService); 0 = thread service")
    parser.add_argument("--workers-sweep", default=None, metavar="LIST",
                        help="comma-separated worker counts (e.g. "
                             "1,2,4): benchmark the sharded tier at "
                             "each and record an fps-vs-workers "
                             "scaling block")
    parser.add_argument("--burst", action="store_true",
                        help="measure an overload burst (2x the "
                             "sustainable rate for 2s) through the "
                             "sharded tier and record how it resolved")
    parser.add_argument("--cold-start", action="store_true",
                        help="measure warm-store cold start: "
                             "time-to-first-native-frame with an empty "
                             "vs populated schedule store, through the "
                             "sharded tier")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="stream lifecycle events to this "
                             "JSON-lines file")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="expose and scrape the Prometheus metrics "
                             "endpoint during the run (0 = ephemeral)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the scraped exposition text here "
                             "(implies --metrics-port 0)")
    parser.add_argument("--sample-rate", type=float, default=0.0,
                        help="fraction of requests promoted to "
                             "Chrome-trace async spans")
    parser.add_argument("--json", default="BENCH_serve.json",
                        help="output path (default BENCH_serve.json)")
    args = parser.parse_args(argv)
    metrics_port = args.metrics_port
    if metrics_port is None and args.metrics_out is not None:
        metrics_port = 0

    record = bench_serving(args.app, args.scale, frames=args.frames,
                           clients=args.clients, workers=args.workers,
                           n_threads=args.threads, backend=args.backend,
                           warmup=args.warmup, max_batch=args.max_batch,
                           coalesce=not args.no_coalesce,
                           process_workers=args.process_workers,
                           events_path=args.events,
                           metrics_port=metrics_port,
                           sample_rate=args.sample_rate)
    scrape = record.get("metrics_scrape")
    if scrape is not None:
        text = scrape.pop("text")  # keep BENCH_serve.json small
        if args.metrics_out:
            Path(args.metrics_out).write_text(text)
    doc = {
        "benchmark": "serving",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count() or 1,
        },
        "runs": [record],
    }
    if args.workers_sweep:
        counts = [int(c) for c in args.workers_sweep.split(",") if c]
        doc["scaling"] = bench_scaling(
            args.app, args.scale, worker_counts=counts,
            frames=args.frames, clients=args.clients,
            n_threads=args.threads, backend=args.backend,
            inner_workers=args.workers, max_batch=args.max_batch)
        print(f"scaling ({doc['scaling']['cpus']} cpu(s)): " + ", ".join(
            f"{p['workers']}w {p['fps']:.1f} fps "
            f"({p['speedup_vs_1']:.2f}x)"
            for p in doc["scaling"]["points"]))
    if args.burst:
        doc["overload_burst"] = bench_burst(
            args.app, args.scale,
            process_workers=max(args.process_workers, 2),
            n_threads=args.threads, backend=args.backend,
            inner_workers=args.workers)
        burst = doc["overload_burst"]
        print(f"burst ({burst['burst_factor']:.0f}x sustainable "
              f"{burst['sustainable_fps']:.1f} fps for "
              f"{burst['burst_s']:.0f}s): {burst['submitted']} accepted, "
              f"{burst['rejected']} rejected, {burst['completed']} "
              f"completed, p99 {burst['latency_ms']['p99_ms']:.1f} ms, "
              f"resolved_all={burst['resolved_all']}")
    if args.cold_start:
        doc["cold_start"] = bench_cold_start(
            args.app, args.scale,
            process_workers=max(args.process_workers, 2),
            n_threads=args.threads, inner_workers=args.workers)
        cs = doc["cold_start"]
        print(f"cold start ({cs['process_workers']} workers): "
              f"cold {cs['cold']['time_to_first_native_s']:.2f}s, "
              f"warm {cs['warm']['time_to_first_native_s']:.2f}s "
              f"({cs['speedup']:.1f}x), "
              f"from_store={cs['warm_from_store']}, "
              f"warm_compile_s={cs['warm_compile_s']:.2f}")
    Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    lat = record["latency_ms"]
    pool = record["pool_window"]
    print(f"{record['app']} @ {record['scale']} "
          f"({record['clients']} clients / {record['workers']} workers, "
          f"backend={record['backend']}):")
    print(f"  {record['fps']:.1f} fps over "
          f"{record['measured_frames']} frames")
    print(f"  latency p50 {lat['p50_ms']:.2f} ms, "
          f"p90 {lat['p90_ms']:.2f} ms, p99 {lat['p99_ms']:.2f} ms")
    batching = record["batching"]
    print(f"  batching: {batching['batched_frames']} frames in "
          f"{batching['batches']} batches "
          f"(mean size {batching['mean_batch_size']:.1f})")
    stages = record["stages"]
    if any(s.get("count") for s in stages.values()):
        print("  stages (p50 ms): " + ", ".join(
            f"{name} {stages[name]['p50_ms']:.2f}"
            for name in ("queue_wait", "batch_wait", "execute", "total")
            if name in stages and stages[name]["count"]))
    print(f"  pool (measured window): {pool['hits']} hits / "
          f"{pool['misses']} misses "
          f"({pool['hit_rate'] * 100.0:.1f}% hit rate)")
    if scrape is not None:
        verdict = "ok" if scrape["scrape_ok"] else \
            f"INVALID ({len(scrape['problems'])} problem(s))"
        print(f"  metrics scrape: {verdict}, {scrape['bytes']} bytes "
              f"from {scrape['url']}")
    if args.events:
        print(f"  events streamed to {args.events}")
    if args.metrics_out and scrape is not None:
        print(f"  exposition text written to {args.metrics_out}")
    if record["errors"]:
        print(f"  {len(record['errors'])} frame error(s), first: "
              f"{record['errors'][0]}")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
