"""Regenerate Figure 8: the grouping of the Pyramid Blending pipeline.

Usage::

    python -m repro.bench.figure8 [--levels L] [--size N] [--tiles a,b,c]
                                  [--explain] [--trace PATH] [--dot]

Compiles pyramid blending at the paper's scale and prints the groups the
heuristic forms (the dashed boxes of Figure 8), each with its stages,
their pyramid scales, and the storage classification.  The property to
verify: groups span pyramid levels (mixed scales within a box) and the
number of groups is far below the stage count.

``--explain`` additionally replays every merge decision Algorithm 1
evaluated (``CompiledPipeline.explain()``); ``--trace PATH`` writes the
compiler-phase spans as a Chrome trace_event JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro import CompileOptions, compile_pipeline
from repro.apps import pyramid
from repro.bench.harness import format_table
from repro.compiler.storage import SCRATCH
from repro.observe import tracing


def run_figure8(levels: int = 4, size: int = 2048,
                tiles: tuple[int, ...] = (8, 64, 256),
                explain: bool = False, trace_path=None, out=sys.stdout):
    """Compile pyramid blending and print its grouping (Figure 8 analog)."""
    app = pyramid.build_pipeline(levels=levels)
    values = {app.params["R"]: size, app.params["C"]: size}
    with tracing() as tracer:
        tracer.enabled = trace_path is not None
        compiled = compile_pipeline(app.outputs, values,
                                    CompileOptions.optimized(tiles),
                                    name="figure8")
        if trace_path:
            tracer.write_chrome(trace_path)
            print(f"wrote trace {trace_path}", file=sys.stderr)
    plan = compiled.plan
    print(f"\n## Figure 8 analog: pyramid blending grouping "
          f"(levels={levels}, {size}x{size}, tiles={tiles})\n", file=out)
    print(f"{len(plan.ir.stages)} stages -> "
          f"{len(plan.group_plans)} groups\n", file=out)
    rows = []
    for i, gp in enumerate(plan.group_plans):
        scales = set()
        scratch = 0
        for stage in gp.ordered_stages:
            if gp.transforms is not None:
                scales.update(str(s)
                              for s in gp.transforms[stage].scales)
            if plan.storage[stage].kind == SCRATCH:
                scratch += 1
        rows.append([
            i, len(gp.ordered_stages),
            ", ".join(s.name for s in gp.ordered_stages),
            "{" + ", ".join(sorted(scales)) + "}",
            scratch,
        ])
    print(format_table(
        ["group", "#stages", "stages", "scales", "#scratch"], rows),
        file=out)
    if explain:
        print(f"\n{compiled.explain()}", file=out)
    print("\nGraphviz rendering (dashed clusters = groups, as in the "
          "paper's figure):\nrun with --dot to print it.", file=out)
    return plan


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=4)
    parser.add_argument("--size", type=int, default=2048)
    parser.add_argument("--tiles", default="8,64,256")
    parser.add_argument("--dot", action="store_true",
                        help="also print the clustered graphviz source")
    parser.add_argument("--explain", action="store_true",
                        help="replay every Algorithm 1 merge decision")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write compiler-phase spans as Chrome trace")
    args = parser.parse_args()
    tiles = tuple(int(t) for t in args.tiles.split(","))
    plan = run_figure8(args.levels, args.size, tiles,
                       explain=args.explain, trace_path=args.trace)
    if args.dot:
        print()
        print(plan.grouping.dot())


if __name__ == "__main__":
    main()
