"""Regenerate Figure 10: speedup of each variant over base (1 thread).

Usage::

    python -m repro.bench.figure10 [--scale small|paper] [--apps ...]
                                   [--threads 1,2,4]

For each application, times the four PolyMage variants — base, base+vec,
opt, opt+vec — across thread counts and prints speedups relative to
``base`` on one thread, the same normalisation as the paper's bar
charts.  The claims to check: ``opt+vec`` dominates; vectorization helps
far more *with* tiling than without (the paper measures 3.74x vs 1.12x
on one Harris thread); ``base`` saturates early as bandwidth binds.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import (
    APP_BUILDERS, VARIANTS, build_variant, format_table, make_instance,
    time_ms,
)


def run_figure10(scale: str = "small",
                 apps: list[str] | None = None,
                 threads: tuple[int, ...] = (1, 2, 4),
                 out=sys.stdout) -> dict[str, dict]:
    """Measure and print per-app variant speedups (Figure 10 analog)."""
    apps = apps or list(APP_BUILDERS)
    results: dict[str, dict] = {}
    for name in apps:
        instance = make_instance(name, scale)
        times: dict[tuple[str, int], float] = {}
        for variant in VARIANTS:
            run = build_variant(instance, variant)
            for n in threads:
                times[(variant, n)] = time_ms(lambda: run(n))
        base_1 = times[("base", 1)]
        headers = ["variant"] + [f"{n} thr" for n in threads]
        rows = []
        for variant in VARIANTS:
            rows.append([variant] + [base_1 / times[(variant, n)]
                                     for n in threads])
        print(f"\n## Figure 10 analog: {name} (scale={scale}; "
              f"speedup over base @1 thread)\n", file=out)
        print(format_table(headers, rows), file=out)
        results[name] = {"times": times, "base_1": base_1}
        print(f"  [{name}] done", file=sys.stderr)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--apps", default=None)
    parser.add_argument("--threads", default="1,2,4")
    args = parser.parse_args()
    apps = args.apps.split(",") if args.apps else None
    threads = tuple(int(t) for t in args.threads.split(","))
    run_figure10(args.scale, apps, threads)


if __name__ == "__main__":
    main()
