"""Shared infrastructure for regenerating the paper's tables and figures.

Provides app instantiation at several scales (``paper`` = Table 2's image
sizes; ``small``/``tiny`` for quick runs), the paper's four PolyMage
variants (base / base+vec / opt / opt+vec, Figure 10's solid series),
timing with the paper's protocol (six runs, first discarded), and
markdown table formatting.

Substitution note: the Halide comparison points (H-tuned / H-matched /
OpenTuner) cannot be measured without Halide binaries.  Their *roles* are
covered by: ``base+vec`` (per-stage parallel + vectorized, no fusion — the
no-fusion schedules Halide's tuned schedules use on several benchmarks),
the OpenCV-style routine library (:mod:`repro.baselines.opencv_like`),
and stochastic wide-space search (:mod:`repro.autotune.random_search`)
for the OpenTuner axis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Mapping

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.apps import bilateral, camera, harris, interpolate, iunsharp
from repro.apps import laplacian, pyramid, unsharp
from repro.apps.base import AppSpec

#: builders at full structural scale (levels etc. as in the paper)
APP_BUILDERS: dict[str, Callable[[], AppSpec]] = {
    "unsharp": unsharp.build_pipeline,
    "bilateral": bilateral.build_pipeline,
    "harris": harris.build_pipeline,
    "camera": camera.build_pipeline,
    "pyramid_blend": pyramid.build_pipeline,
    "interpolate": interpolate.build_pipeline,
    "local_laplacian": laplacian.build_pipeline,
    "iunsharp": iunsharp.build_pipeline,
}

#: reduced-structure builders for tiny scales (pyramids need divisibility)
SMALL_BUILDERS: dict[str, Callable[[], AppSpec]] = {
    **APP_BUILDERS,
    "pyramid_blend": lambda: pyramid.build_pipeline(levels=3),
    "interpolate": lambda: interpolate.build_pipeline(levels=4),
    "local_laplacian": lambda: laplacian.build_pipeline(j_levels=4,
                                                        levels=3),
}

#: image sizes per scale: (rows, cols); paper sizes from Table 2
SIZES: dict[str, dict[str, tuple[int, int]]] = {
    "paper": {
        "unsharp": (2048, 2048),
        "bilateral": (2560, 1536),
        "harris": (6400, 6400),
        "camera": (2528, 1920),
        "pyramid_blend": (2048, 2048),
        "interpolate": (2560, 1536),
        "local_laplacian": (2560, 1536),
        "iunsharp": (2048, 2048),
    },
    "small": {name: (512, 512) for name in APP_BUILDERS},
    "tiny": {name: (128, 128) for name in APP_BUILDERS},
}

#: sensible default tile sizes per app (group-dimension order); the
#: autotuner refines these
DEFAULT_TILES: dict[str, tuple[int, ...]] = {
    "unsharp": (4, 32, 256),
    "bilateral": (32, 64, 16),
    "harris": (32, 256),
    "camera": (32, 256),
    "pyramid_blend": (8, 64, 256),
    "interpolate": (8, 64, 256),
    "local_laplacian": (64, 256),
    "iunsharp": (32, 256),
}

#: which table/figure variants use which paper image sizes.  ``iunsharp``
#: is not a paper benchmark (it anchors the precision-narrowing path),
#: so it carries no Table 2 reference numbers.
PAPER_TABLE2 = {
    "unsharp": dict(stages=4, lines=16, size="2048x2048x3",
                    t16_ms=3.95, opencv_ms=84.44,
                    speedup_opentuner=1.39, speedup_htuned=1.63),
    "bilateral": dict(stages=7, lines=43, size="2560x1536",
                      t16_ms=8.47, opencv_ms=None,
                      speedup_opentuner=1.09, speedup_htuned=0.89),
    "harris": dict(stages=11, lines=43, size="6400x6400",
                   t16_ms=18.69, opencv_ms=810.24,
                   speedup_opentuner=2.61, speedup_htuned=2.59),
    "camera": dict(stages=32, lines=86, size="2528x1920",
                   t16_ms=5.86, opencv_ms=None,
                   speedup_opentuner=10.05, speedup_htuned=1.04),
    "pyramid_blend": dict(stages=44, lines=71, size="2048x2048x3",
                          t16_ms=21.91, opencv_ms=197.28,
                          speedup_opentuner=27.61, speedup_htuned=4.61),
    "interpolate": dict(stages=49, lines=41, size="2560x1536x3",
                        t16_ms=18.18, opencv_ms=None,
                        speedup_opentuner=12.72, speedup_htuned=1.81),
    "local_laplacian": dict(stages=99, lines=107, size="2560x1536x3",
                            t16_ms=32.35, opencv_ms=None,
                            speedup_opentuner=9.41, speedup_htuned=1.54),
}


@dataclass
class AppInstance:
    """An application, concrete parameter values and inputs, ready to run."""

    name: str
    app: AppSpec
    values: dict
    inputs: dict
    scale: str

    @property
    def output_name(self) -> str:
        return self.app.outputs[-1].name


def spec_lines(name: str) -> int:
    """Lines of DSL specification — Table 2's 'Lines' analog.

    Counts the non-blank, non-comment lines of the app's
    ``build_pipeline`` up to (excluding) the input/reference scaffolding.
    """
    import inspect

    source = inspect.getsource(APP_BUILDERS[name])
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("def make_inputs"):
            break
        if not stripped or stripped.startswith("#") \
                or stripped.startswith('"""'):
            continue
        count += 1
    return count


def make_instance(name: str, scale: str = "small",
                  seed: int = 0) -> AppInstance:
    """Build an application with inputs at the requested scale."""
    builder = (APP_BUILDERS if scale == "paper" else SMALL_BUILDERS)[name]
    app = builder()
    rows, cols = SIZES[scale][name]
    values = {app.params["R"]: rows, app.params["C"]: cols}
    rng = np.random.default_rng(seed)
    inputs = app.make_inputs(values, rng)
    return AppInstance(name, app, values, inputs, scale)


#: Figure 10's PolyMage variant axis
VARIANTS = ("base", "base+vec", "opt", "opt+vec")


def variant_options(name: str, variant: str) -> tuple[CompileOptions, bool]:
    """(compile options, vectorize-flag) for one Figure 10 variant.

    The non-vectorized variants also turn off the fast path's
    ``#pragma omp simd`` so that "no vectorization" means what it says
    at both the compiler-flag and the generated-pragma level.
    """
    tiles = DEFAULT_TILES[name]
    vectorize = variant.endswith("+vec")
    if variant.startswith("base"):
        options = CompileOptions.base()
    else:
        options = CompileOptions.optimized(tiles)
    if not vectorize:
        options = replace(options, simd=False)
    return options, vectorize


def build_variant(instance: AppInstance, variant: str,
                  cache_dir=None, instrument: bool = False):
    """Compile one variant with the native backend; returns a callable
    ``run(n_threads) -> outputs``.  With ``instrument=True`` the build
    carries per-group timers, readable as ``run.native.last_stats``
    after a call."""
    from repro.codegen.build import build_native
    options, vectorize = variant_options(instance.name, variant)
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options,
                                name=f"{instance.name}_{variant}")
    native = build_native(compiled.plan,
                          f"{instance.name}_{variant}".replace("+", "_"),
                          vectorize=vectorize, instrument=instrument,
                          cache_dir=cache_dir)

    def run(n_threads: int = 1):
        return native(instance.values, instance.inputs,
                      n_threads=n_threads)

    run.plan = compiled.plan  # type: ignore[attr-defined]
    run.build_info = native.build_info  # type: ignore[attr-defined]
    run.native = native  # type: ignore[attr-defined]
    return run


def cache_summary(cache_dir=None) -> str:
    """One-line description of the compile cache used by the harnesses."""
    from repro.codegen.build import get_cache
    cache = get_cache(cache_dir)
    stats = cache.stats()
    n = len(cache.entries())
    return (f"compile cache: {cache.root} — {n} artifacts, "
            f"{cache.size_bytes() / 1e6:.1f} MB, "
            f"{stats.hits} hits / {stats.misses} misses this process")


@dataclass(frozen=True)
class TimingStats:
    """Timing distribution of one measured configuration (milliseconds).

    Follows the paper's protocol: the first (warm-up) run is discarded
    and the statistics summarize the remaining ``runs`` measurements.
    """

    min_ms: float
    mean_ms: float
    std_ms: float
    runs: int

    @classmethod
    def from_times(cls, times_ms: list[float]) -> "TimingStats":
        arr = np.asarray(times_ms, dtype=np.float64)
        return cls(float(arr.min()), float(arr.mean()),
                   float(arr.std()), len(times_ms))

    def as_dict(self) -> dict:
        return {"min_ms": self.min_ms, "mean_ms": self.mean_ms,
                "std_ms": self.std_ms, "runs": self.runs}

    def render(self) -> str:
        return (f"{self.min_ms:.2f} ms min, {self.mean_ms:.2f} ms mean "
                f"(± {self.std_ms:.2f}, n={self.runs})")


def time_stats(fn: Callable[[], object], runs: int = 6) -> TimingStats:
    """The paper's protocol with the full distribution: run ``runs``
    times, discard the first (warm-up), and summarize the rest."""
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1000.0)
    kept = times[1:] if len(times) > 1 else times
    return TimingStats.from_times(kept)


def time_ms(fn: Callable[[], object], runs: int = 6) -> float:
    """Mean-only view of :func:`time_stats`, kept for compatibility."""
    return time_stats(fn, runs).mean_ms


@dataclass(frozen=True)
class ThroughputStats:
    """Sustained throughput of one configuration (frames per second).

    Where :class:`TimingStats` asks "how fast is one frame", this asks
    "how many frames per second does the pipeline sustain" — the view a
    video/streaming deployment cares about, and the one that rewards
    eliminating per-invocation overheads (allocations, pool spin-up)
    that a min-of-runs latency figure can hide.
    """

    frames: int
    seconds: float
    warmup_frames: int

    @property
    def fps(self) -> float:
        return self.frames / self.seconds if self.seconds > 0 else 0.0

    @property
    def ms_per_frame(self) -> float:
        return self.seconds / self.frames * 1000.0 if self.frames else 0.0

    def as_dict(self) -> dict:
        return {"frames": self.frames, "seconds": self.seconds,
                "warmup_frames": self.warmup_frames, "fps": self.fps,
                "ms_per_frame": self.ms_per_frame}

    def render(self) -> str:
        return (f"{self.fps:.2f} frames/s "
                f"({self.ms_per_frame:.2f} ms/frame, n={self.frames})")


def throughput_stats(fn: Callable[[], object], *, min_frames: int = 8,
                     min_seconds: float = 0.5,
                     warmup: int = 2) -> ThroughputStats:
    """Measure sustained frames/sec: ``warmup`` untimed calls, then at
    least ``min_frames`` calls and ``min_seconds`` of wall clock."""
    for _ in range(warmup):
        fn()
    frames = 0
    t0 = time.perf_counter()
    while True:
        fn()
        frames += 1
        elapsed = time.perf_counter() - t0
        if frames >= min_frames and elapsed >= min_seconds:
            return ThroughputStats(frames, elapsed, warmup)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Markdown-style table with aligned columns."""
    def fmt(v):
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = ["| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths))
             + " |"]
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in cells:
        lines.append("| " + " | ".join(c.ljust(w)
                                       for c, w in zip(row, widths)) + " |")
    return "\n".join(lines)
