"""Ablation benches for the design decisions DESIGN.md calls out.

Usage::

    python -m repro.bench.ablations [--scale small|paper] [--app harris]

Measures, on one application:

1. point-wise inlining on/off;
2. grouping (fusion) on/off, tiling held constant per mode;
3. overlap threshold sweep (group-count / time trade-off);
4. tight vs naive tile shapes (Section 3.4's contribution);
5. storage: scratchpad bytes vs the full buffers fusion replaces
   (Section 3.6's footprint reduction).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import CompileOptions, compile_pipeline
from repro.bench.harness import (
    DEFAULT_TILES, build_variant, format_table, make_instance, time_ms,
)
from repro.codegen.build import build_native
from repro.compiler.storage import storage_footprint


def _run(instance, options, label, n_threads):
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name=f"abl_{label}")
    native = build_native(compiled.plan,
                          f"abl_{instance.name}_{label}".replace(".", "_"))
    t = time_ms(lambda: native(instance.values, instance.inputs,
                               n_threads=n_threads))
    return t, compiled.plan


def run_ablations(scale: str = "small", app: str = "harris",
                  n_threads: int = 2, out=sys.stdout) -> None:
    """Measure each optimization knob in isolation and print the tables."""
    instance = make_instance(app, scale)
    tiles = DEFAULT_TILES[app]
    opt = CompileOptions.optimized(tiles)

    rows = []
    for label, options in [
        ("full (opt)", opt),
        ("no inlining", replace(opt, inline=False)),
        ("no grouping", replace(opt, group=False)),
        ("no tiling", CompileOptions.base()),
        ("naive overlap", replace(opt, tight_overlap=False)),
    ]:
        t, plan = _run(instance, options, label.replace(" ", "_"),
                       n_threads)
        rows.append([label, t, len(plan.group_plans),
                     len(plan.ir.stages)])
    print(f"\n## Ablations: {app} (scale={scale}, "
          f"{n_threads} threads)\n", file=out)
    print(format_table(["configuration", "time ms", "groups", "stages"],
                       rows), file=out)

    # threshold sweep
    rows = []
    for th in (0.1, 0.2, 0.4, 0.5, 0.8):
        t, plan = _run(instance, opt.with_threshold(th),
                       f"th{int(th * 100)}", n_threads)
        rows.append([th, t, len(plan.group_plans)])
    print(f"\n### Overlap threshold sweep\n", file=out)
    print(format_table(["threshold", "time ms", "groups"], rows), file=out)

    # storage footprint
    compiled = compile_pipeline(instance.app.outputs, instance.values, opt)
    fp = storage_footprint(compiled.plan, instance.values)
    print(f"\n### Storage footprint (Section 3.6)\n", file=out)
    print(format_table(
        ["full buffers (bytes)", "scratchpads (bytes)",
         "unfused would need (bytes)", "reduction"],
        [[fp["full_bytes"], fp["scratch_bytes"], fp["unfused_bytes"],
          f'{fp["unfused_bytes"] / max(fp["full_bytes"] + fp["scratch_bytes"], 1):.1f}x']]),
        file=out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--app", default="harris")
    parser.add_argument("--threads", type=int, default=2)
    args = parser.parse_args()
    run_ablations(args.scale, args.app, args.threads)


if __name__ == "__main__":
    main()
