"""Regenerate Figure 5: overlapped vs split vs parallelogram tiling.

Usage::

    python -m repro.bench.figure5 [--size N] [--tile T]

Builds the paper's three-function 1-D chain (``f1 = fin``, ``f2 =
f1(x-1) + f1(x+1)``, ``fout = f2(x-1) * f2(x+1)``), fuses it, and prints
the quantitative version of Figure 5's property table for each strategy:
concurrent tiles, phases, redundant-computation fraction, and values
live across tile boundaries.  The paper's qualitative claims to verify:
only overlapped tiling combines full parallelism with zero cross-tile
communication, at the price of bounded redundancy.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import format_table
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.alt_tiling import compare_strategies
from repro.lang import Case, Condition, Float, Function, Image, Int, \
    Interval, Parameter, Variable
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


def figure5_chain():
    """The chain from Figure 5 (bottom left)."""
    N = Parameter(Int, "N")
    fin = Image(Float, [N + 2], name="fin")
    x = Variable("x")
    dom = Interval(0, N + 1, 1)
    inner = Condition(x, ">=", 1) & Condition(x, "<=", N)

    f1 = Function(varDom=([x], [dom]), typ=Float, name="f1")
    f1.defn = fin(x)
    f2 = Function(varDom=([x], [dom]), typ=Float, name="f2")
    f2.defn = [Case(inner, f1(x - 1) + f1(x + 1))]
    fout = Function(varDom=([x], [dom]), typ=Float, name="fout")
    fout.defn = [Case(inner, f2(x - 1) * f2(x + 1))]
    return N, fin, (f1, f2, fout)


def run_figure5(size: int = 4096, tile: int = 64, out=sys.stdout):
    """Print the quantitative Figure 5 strategy comparison."""
    N, fin, stages = figure5_chain()
    f1, f2, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    assert transforms is not None
    stats = compare_strategies(ir, transforms, stages, dim=0, tile=tile,
                               params={N: size})
    headers = ["strategy", "concurrent tiles", "phases",
               "redundancy", "cross-tile live values", "parallel?"]
    rows = [[s.strategy, s.concurrent_tiles, s.phases,
             f"{s.redundancy:.4f}", s.cross_tile_live_values,
             "yes" if s.parallel else "no (wavefront)"] for s in stats]
    print(f"\n## Figure 5 analog (N={size}, tile={tile})\n", file=out)
    print(format_table(headers, rows), file=out)
    return stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=4096)
    parser.add_argument("--tile", type=int, default=64)
    args = parser.parse_args()
    run_figure5(args.size, args.tile)


if __name__ == "__main__":
    main()
