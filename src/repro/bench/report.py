"""Generate the full experiment report in one command.

Usage::

    python -m repro.bench.report [--scale small|paper] [--threads N]
                                 [-o report.md]

Runs every table/figure harness in sequence — Figure 5 (tiling-strategy
models), Figure 6 (tight vs naive overlap, measured), Figure 8 (pyramid
grouping), Table 2, Figure 10 (variants), Figure 9 (autotuning sweep),
and the ablations — and writes a single markdown report.  This is how
EXPERIMENTS.md's measured sections are produced.
"""

from __future__ import annotations

import argparse
import io
import platform
import sys
import time


def generate_report(scale: str = "small", threads: int = 2,
                    search_budget: int = 8,
                    grid: str = "coarse", workers: int = 1) -> str:
    """Run every harness and return the full markdown report."""
    from repro.bench import (
        ablations, figure5, figure6, figure8, figure9, figure10, table2,
    )

    out = io.StringIO()
    start = time.time()
    print(f"# Experiment report (scale={scale}, threads={threads})", file=out)
    print(f"\nmachine: {platform.platform()}, "
          f"python {platform.python_version()}", file=out)

    figure5.run_figure5(out=out)
    figure6.run_figure6(measure=True, out=out)
    figure8.run_figure8(size=2048 if scale == "paper" else 512, out=out)
    table2.run_table2(scale, threads, search_budget=search_budget, out=out)
    figure10.run_figure10(scale, threads=(1, threads), out=out)
    figure9.run_figure9(scale, threads=threads, grid=grid,
                        workers=workers, out=out)
    ablations.run_ablations(scale, "harris", threads, out=out)

    print(f"\n\n_total report generation time: "
          f"{time.time() - start:.0f}s_", file=out)
    return out.getvalue()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--search-budget", type=int, default=8)
    parser.add_argument("--grid", default="coarse",
                        choices=["coarse", "paper"])
    parser.add_argument("--workers", type=int, default=1,
                        help="compile-farm processes for the autotune sweep")
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args()
    report = generate_report(args.scale, args.threads, args.search_budget,
                             args.grid, args.workers)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
