"""Regenerate Figure 9: autotuning scatter (1-thread vs N-thread time).

Usage::

    python -m repro.bench.figure9 [--scale small|paper] [--apps ...]
                                  [--threads N] [--grid coarse|paper]
                                  [--workers N] [--json PATH]

For the three applications of the paper's Figure 9 (Pyramid Blending,
Camera Pipeline, Multiscale Interpolation) the model-restricted space is
swept — tile sizes per tiled dimension and the three overlap thresholds —
and each configuration's single-thread / N-thread times are printed (the
figure's scatter points), plus the best configuration and total sweep
time (the paper reports under 30 minutes per benchmark).

``--workers N`` fans the compile jobs out over N processes (timing stays
serialized); ``--json PATH`` writes every app's serialized
:class:`~repro.autotune.tuner.TuningReport` to one JSON file, including
per-configuration compile times and compile-cache hits.

``--profile`` builds every configuration with in-library per-group
timers and folds the per-group seconds / tile counts into the report;
``--trace out.json`` records compiler-phase spans for every
configuration compiled in-process and writes a Chrome
``chrome://tracing`` / Perfetto-loadable trace file.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path

from repro.autotune.tuner import TuneConfig, autotune
from repro.bench.harness import cache_summary, format_table, make_instance
from repro.observe import tracing

FIGURE9_APPS = ("pyramid_blend", "camera", "interpolate")

#: tuned dimensions per app (group-dim order used by its main group)
APP_NDIMS = {"pyramid_blend": 3, "camera": 2, "interpolate": 3}


def space_for(name: str, grid: str) -> list[TuneConfig]:
    """The tuning space for one app: the paper's 147-point grid, a coarse
    subset, or a single-point smoke grid (CI)."""
    if grid == "paper":
        tiles = (8, 16, 32, 64, 128, 256, 512)
        thresholds = (0.2, 0.4, 0.5)
    elif grid == "smoke":
        tiles = (64,)
        thresholds = (0.4,)
    else:
        tiles = (16, 64, 256)
        thresholds = (0.2, 0.5)
    ndims = APP_NDIMS[name]
    out = []
    spatial = itertools.product(tiles, repeat=min(2, ndims))
    for t in spatial:
        full = ((4,) + t) if ndims == 3 else t
        for th in thresholds:
            out.append(TuneConfig(full, th))
    return out


def run_figure9(scale: str = "small", apps=None, threads: int = 4,
                grid: str = "coarse", workers: int = 1,
                json_path: str | Path | None = None,
                trace_path: str | Path | None = None,
                profile: bool = False,
                out=sys.stdout) -> dict:
    """Sweep and print the Figure 9 scatter data per app."""
    apps = apps or FIGURE9_APPS
    results = {}
    with tracing() as tracer:
        tracer.enabled = trace_path is not None
        for name in apps:
            with tracer.span("figure9", cat="bench", app=name,
                             scale=scale, grid=grid):
                instance = make_instance(name, scale)
                report = autotune(
                    instance.app.outputs, instance.values, instance.values,
                    instance.inputs, space=space_for(name, grid),
                    n_threads=threads, n_workers=workers,
                    name=f"fig9_{name}", profile=profile)
            rows = [[str(r.config), r.time_single_ms, r.time_parallel_ms,
                     r.time_parallel_std_ms, r.n_groups, r.compile_s,
                     "hit" if r.cache_hit else "miss"]
                    for r in report.results]
            print(f"\n## Figure 9 analog: {name} (scale={scale}, "
                  f"{len(report.results)} configs, "
                  f"{len(report.skipped)} skipped, workers={workers}, "
                  f"sweep took {report.elapsed_s:.1f}s)\n", file=out)
            print(format_table(
                ["config", "t(1) ms", f"t({threads}) ms", "std ms",
                 "groups", "compile s", "cache"], rows),
                file=out)
            best = report.best()
            print(f"\nbest: {best.config} -> "
                  f"{best.time_parallel_ms:.2f} ms "
                  f"({threads} threads)", file=out)
            if profile and best.profile:
                seconds = best.profile.get("group_seconds", [])
                tiles = best.profile.get("group_tiles", [])
                for i, (s, t) in enumerate(zip(seconds, tiles)):
                    print(f"  best profile: group {i}: {s * 1e3:.3f} ms"
                          + (f", {t} tiles" if t else ""), file=out)
            for skip in report.skipped:
                print(f"skipped: {skip.config} ({skip.reason})", file=out)
            results[name] = report
            print(f"  [{name}] done", file=sys.stderr)
        print(f"\n{cache_summary()}", file=out)
        if trace_path:
            tracer.write_chrome(trace_path)
            print(f"wrote trace {trace_path}", file=sys.stderr)
    if json_path:
        payload = {name: report.to_dict()
                   for name, report in results.items()}
        Path(json_path).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {json_path}", file=sys.stderr)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--apps", default=None)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--grid", default="coarse",
                        choices=["coarse", "paper", "smoke"])
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--json", default=None,
                        help="write all TuningReports to this JSON file")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace_event JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="build with per-group native timers and "
                             "report per-group times")
    args = parser.parse_args()
    apps = args.apps.split(",") if args.apps else None
    run_figure9(args.scale, apps, args.threads, args.grid,
                workers=args.workers, json_path=args.json,
                trace_path=args.trace, profile=args.profile)


if __name__ == "__main__":
    main()
