"""Regenerate Figure 6: tight vs over-approximated overlapped tiles.

Usage::

    python -m repro.bench.figure6 [--size N] [--tile T] [--measure]

Builds the paper's heterogeneous five-function chain (down-sampling then
up-sampling) and reports, per stage, the halo computed by the tight
per-level construction of Section 3.4 against the naive uniform
dependence-cone over-approximation, plus the total redundancy fraction of
each.  With ``--measure`` it additionally compiles Harris with both
constructions (the ``tight_overlap`` option) and times them, showing the
over-approximation costs real execution time.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro.bench.harness import build_variant, format_table, make_instance, \
    time_ms
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.tiling import group_halos, naive_halos
from repro.lang import Float, Function, Image, Int, Interval, Parameter, \
    Variable
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


def figure6_chain():
    """The paper's heterogeneous five-function up/down-sampling chain."""
    R = Parameter(Int, "R")
    fin = Image(Float, [16 * R], name="fin6")
    x = Variable("x")

    def fn(name, lo, hi):
        return Function(varDom=([x], [Interval(lo, hi, 1)]), typ=Float,
                        name=name)

    f = fn("f", 0, 8 * R)
    f.defn = fin(x)
    g = fn("g", 1, 4 * R - 1)
    g.defn = f(2 * x - 1) * f(2 * x + 1)
    h = fn("h", 1, 2 * R - 1)
    h.defn = g(2 * x - 1) * g(2 * x + 1)
    fup = fn("fup", 2, 2 * R - 4)
    fup.defn = h(x // 2) * h(x // 2 + 1)
    fout = fn("fout", 4, 2 * R - 4)
    fout.defn = fup(x // 2)
    return R, (f, g, h, fup, fout)


def run_figure6(size: int = 1024, tile: int = 64, measure: bool = False,
                out=sys.stdout):
    """Print tight-vs-naive halos; optionally measure the runtime cost."""
    R, stages = figure6_chain()
    ir = PipelineIR(PipelineGraph([stages[-1]]))
    transforms = compute_group_transforms(ir, stages, stages[-1])
    assert transforms is not None
    tight = group_halos(ir, transforms, stages)
    naive = naive_halos(ir, transforms, stages)
    headers = ["stage", "scale", "tight halo", "naive halo"]
    rows = []
    total_tight = Fraction(0)
    total_naive = Fraction(0)
    for s in stages:
        t = tight[s].widths()[0]
        n = naive[s].widths()[0]
        total_tight += t
        total_naive += n
        rows.append([s.name, str(transforms[s].scales[0]), str(t), str(n)])
    print(f"\n## Figure 6 analog (heterogeneous chain, tile={tile})\n",
          file=out)
    print(format_table(headers, rows), file=out)
    print(f"\ntotal overlap: tight={total_tight} naive={total_naive} "
          f"(over-approximation {float(total_naive / max(total_tight, Fraction(1))):.2f}x)",
          file=out)

    if measure:
        times, halo_widths = measure_tight_vs_naive()
        print(f"\nheterogeneous 8-stage group (wide stencil mid-chain), "
              f"1536x1536:", file=out)
        print(f"  tight construction: halo {halo_widths['tight']}, "
              f"{times['tight']:.2f} ms", file=out)
        print(f"  naive construction: halo {halo_widths['naive']}, "
              f"{times['naive']:.2f} ms "
              f"({times['naive'] / times['tight']:.2f}x slower)", file=out)
    return tight, naive


def heterogeneous_group(n_stages: int = 8, wide_at: int = 4):
    """A chain with one wide (9x9) stencil mid-group and narrow (3x1)
    stencils elsewhere — the shape on which the naive uniform-cone
    construction badly over-approximates the tight per-level one."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    Ih = Image(Float, [R + 80, C + 80], name="Ihet")
    x, y = Variable("x"), Variable("y")
    from repro.lang import Case, Condition, Stencil
    dom = [Interval(0, R + 79, 1), Interval(0, C + 79, 1)]
    cond = (Condition(x, ">=", 40) & Condition(x, "<=", R + 39)
            & Condition(y, ">=", 40) & Condition(y, "<=", C + 39))
    prev = Ih
    stages = []
    for i in range(n_stages):
        f = Function(varDom=([x, y], dom), typ=Float, name=f"het{i}")
        if i == wide_at:
            f.defn = [Case(cond, Stencil(prev(x, y), 1.0 / 81,
                                         [[1] * 9 for _ in range(9)]))]
        else:
            f.defn = [Case(cond, Stencil(prev(x, y), 1.0 / 3,
                                         [[1], [1], [1]]))]
        stages.append(f)
        prev = f
    return (R, C), Ih, stages


def measure_tight_vs_naive(size: int = 1536):
    """Time the tight and naive constructions on the heterogeneous group."""
    import numpy as np
    from dataclasses import replace
    from repro import CompileOptions, compile_pipeline
    from repro.codegen.build import build_native

    (R, C), Ih, stages = heterogeneous_group()
    values = {R: size, C: size}
    inputs = {Ih: np.random.default_rng(0).random(
        (size + 80, size + 80), dtype=np.float32)}
    times = {}
    halo_widths = {}
    for label, tight_flag in (("tight", True), ("naive", False)):
        options = replace(CompileOptions.optimized((32, 128), 5.0),
                          tight_overlap=tight_flag, inline=False)
        plan = compile_pipeline(stages[-1:], values, options,
                                name=f"fig6m_{label}").plan
        bottom = plan.stage_by_name("het0")
        halo_widths[label] = tuple(
            str(w) for w in plan.group_plans[0].group.halos[bottom]
            .widths())
        native = build_native(plan, f"fig6m_{label}")
        times[label] = time_ms(lambda: native(values, inputs))
    return times, halo_widths


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1024)
    parser.add_argument("--tile", type=int, default=64)
    parser.add_argument("--measure", action="store_true")
    args = parser.parse_args()
    run_figure6(args.size, args.tile, args.measure)


if __name__ == "__main__":
    main()
