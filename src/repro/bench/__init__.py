"""Benchmark harness: one module per paper table/figure.

Run ``python -m repro.bench.<name>`` where name is one of ``table2``,
``figure5``, ``figure6``, ``figure8``, ``figure9``, ``figure10``,
``ablations``.  See EXPERIMENTS.md for the recorded results.
"""
