"""Fast-path codegen benchmark: specialized vs legacy generated code.

Usage::

    python -m repro.bench.codegen_bench [--scale small|paper|tiny]
        [--apps harris,unsharp|all] [--runs 9] [--threads N]
        [--json BENCH_codegen.json] [--throughput] [--batch-sweep]

Compares, per application at its default tile sizes, the native backend
with fast-path specialization on (interior/boundary loop splitting,
clamp elimination, floor-div strength reduction, load CSE, ``omp simd``,
persistent scratch arenas) against the legacy always-safe code
(``specialize=False, simd=False``).

Measurement protocol: the two variants are *interleaved* run-for-run
(A, B, A, B, ...) so slow drift on a shared/1-core machine hits both
equally, the first pair is discarded as warm-up, and the reported
figure is the **median** over the remaining runs — robust against the
occasional scheduler hiccup that poisons a mean.  Bit-identity of the
two variants' outputs is asserted as part of the run.

With ``--throughput`` a sustained frames/sec figure (after warm-up) is
measured as well — the view that rewards removing per-call overheads
such as scratch allocation, which single-shot latency can hide.

Each app is additionally recompiled with ``CompileOptions.narrow`` on;
the record carries the per-thread scratch-arena bytes with and without
narrowing, the footprint-reduction ratio and the narrowed-stage count.
When narrowing actually fires the narrowed build is also timed
interleaved with the other variants (bit-identity of its outputs
asserted); with zero decisions the emitted source is byte-identical —
the compile cache returns the same artifact — so no third timing is
taken.

With ``--batch-sweep`` each app additionally sweeps the batched entry
point over N in {1, 2, 4, 8, 16}: ``run_batch`` on N identical frames
against N sequential single-frame calls, asserting bit-identical
outputs and reporting the per-frame amortization of the fixed dispatch
costs (ctypes crossing, argument marshalling, arena/thread-team setup)
the batch ABI exists to remove.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import compile_pipeline
from repro.bench.harness import (
    APP_BUILDERS, DEFAULT_TILES, format_table, make_instance,
    throughput_stats, variant_options,
)
from repro.codegen.build import build_native


def _build(instance, options, label, n_threads):
    """Compile + build one configuration; returns run() and the plan."""
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options,
                                name=f"cgb_{instance.name}_{label}")
    native = build_native(compiled.plan,
                          f"cgb_{instance.name}_{label}",
                          vectorize=True)

    def run():
        return native(instance.values, instance.inputs,
                      n_threads=n_threads)

    return run, compiled.plan, native


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1000.0


def _scratch_bytes(plan) -> int:
    """Total per-thread scratch arena footprint across tiled groups."""
    from repro.codegen.cgen import CGenerator
    gen = CGenerator(plan)
    return sum(gen._arena_layout(gp)[1]
               for gp in plan.group_plans if gp.is_tiled)


#: batch sizes explored by --batch-sweep
BATCH_SIZES = (1, 2, 4, 8, 16)


def batch_sweep(instance, native, n_threads: int,
                min_frames: int = 64) -> list[dict]:
    """Sweep ``run_batch`` over :data:`BATCH_SIZES` for one built app.

    Per batch size N: at least ``min_frames`` frames go through
    ``run_batch`` in N-sized calls and through N sequential single-frame
    calls, interleaved chunk-for-chunk so drift hits both equally.
    Outputs are asserted bit-identical; the record carries both
    frames/sec figures and the batch/sequential speedup.
    """
    out_name = instance.output_name
    want = native(instance.values, instance.inputs,
                  n_threads=n_threads)[out_name]
    records = []
    for size in BATCH_SIZES:
        frames = [instance.inputs] * size
        got = native.run_batch(instance.values, frames,
                               n_threads=n_threads)
        identical = all(
            bool(np.array_equal(result[out_name], want))
            for result in got)
        chunks = max(1, min_frames // size)
        batch_s = seq_s = 0.0
        for _ in range(chunks):
            t0 = time.perf_counter()
            native.run_batch(instance.values, frames,
                             n_threads=n_threads)
            batch_s += time.perf_counter() - t0
            t0 = time.perf_counter()
            for frame in frames:
                native(instance.values, frame, n_threads=n_threads)
            seq_s += time.perf_counter() - t0
        n_frames = chunks * size
        records.append({
            "batch": size,
            "frames": n_frames,
            "batch_fps": n_frames / batch_s if batch_s > 0 else 0.0,
            "sequential_fps": n_frames / seq_s if seq_s > 0 else 0.0,
            "speedup": seq_s / batch_s if batch_s > 0 else 0.0,
            "outputs_identical": identical,
        })
    return records


def bench_app(name: str, scale: str, runs: int, n_threads: int,
              throughput: bool = False, batch: bool = False) -> dict:
    """Measure one application; returns the JSON-ready record."""
    instance = make_instance(name, scale)
    base_opts, _ = variant_options(name, "opt+vec")
    on_opts = base_opts.with_specialize(True, simd=True)
    off_opts = base_opts.with_specialize(False, simd=False)

    narrow_opts = on_opts.with_narrow(True)

    run_on, plan_on, native_on = _build(instance, on_opts, "spec",
                                        n_threads)
    run_off, plan_off, _ = _build(instance, off_opts, "legacy", n_threads)

    # the narrowing leg is only *timed* when decisions exist: with none,
    # the emitted source is byte-identical and the compile cache returns
    # the same artifact, so a third timing would measure pure noise
    narrow_plan = compile_pipeline(
        instance.app.outputs, instance.values, narrow_opts,
        name=f"cgb_{instance.name}_nplan").plan
    narrow_timed = bool(narrow_plan.narrowing)
    native_nar = None
    if narrow_timed:
        run_nar, plan_nar, native_nar = _build(instance, narrow_opts,
                                               "narrow", n_threads)
    else:
        run_nar, plan_nar = run_on, narrow_plan

    out_name = instance.output_name
    want = run_on()[out_name]
    identical = bool(np.array_equal(want, run_off()[out_name]))
    narrow_identical = not narrow_timed or bool(
        np.array_equal(want, run_nar()[out_name]))

    # interleaved A/B(/C) timing; first round is warm-up
    on_ms, off_ms, nar_ms = [], [], []
    for i in range(runs + 1):
        a = _time_once(run_on)
        b = _time_once(run_off)
        c = _time_once(run_nar) if narrow_timed else a
        if i == 0:
            continue
        on_ms.append(a)
        off_ms.append(b)
        nar_ms.append(c)

    median_on = float(np.median(on_ms))
    median_off = float(np.median(off_ms))
    median_nar = float(np.median(nar_ms))
    scratch = _scratch_bytes(plan_on)
    narrow_scratch = _scratch_bytes(plan_nar)
    record = {
        "app": name,
        "scale": scale,
        "tile_sizes": list(DEFAULT_TILES[name]),
        "n_threads": n_threads,
        "runs": runs,
        "median_on_ms": median_on,
        "median_off_ms": median_off,
        "speedup": median_off / median_on if median_on > 0 else 0.0,
        "times_on_ms": on_ms,
        "times_off_ms": off_ms,
        "outputs_identical": identical,
        "uses_arena": native_on.has_arena,
        # precision narrowing (CompileOptions.narrow) on top of the
        # specialized variant: per-thread scratch arena bytes, the
        # footprint reduction, and the runtime cost/benefit
        "scratch_bytes": scratch,
        "narrow_scratch_bytes": narrow_scratch,
        "narrow_footprint_ratio":
            scratch / narrow_scratch if narrow_scratch > 0 else 1.0,
        "narrowed_stages": len(plan_nar.narrowing or {}),
        "narrow_timed": narrow_timed,
        "median_narrow_ms": median_nar,
        "narrow_overhead":
            median_nar / median_on if median_on > 0 else 1.0,
        "narrow_outputs_identical": narrow_identical,
    }
    if throughput:
        record["throughput_on"] = throughput_stats(run_on).as_dict()
        record["throughput_off"] = throughput_stats(run_off).as_dict()
    if batch:
        record["batch_sweep"] = batch_sweep(instance, native_on,
                                            n_threads)
    native_on.release()
    if native_nar is not None:
        native_nar.release()
    return record


def run_bench(apps: list[str], scale: str, runs: int, n_threads: int,
              json_path: str | Path | None, throughput: bool,
              batch: bool = False, out=sys.stdout) -> dict:
    """Benchmark every requested app and write the JSON report."""
    records = []
    for name in apps:
        print(f"[codegen_bench] {name} (scale={scale}) ...", file=out,
              flush=True)
        records.append(bench_app(name, scale, runs, n_threads,
                                 throughput, batch))

    speedups = [r["speedup"] for r in records]
    doc = {
        "benchmark": "codegen_specialization",
        "scale": scale,
        "n_threads": n_threads,
        "runs_per_variant": runs,
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version()},
        "apps": records,
        "summary": {
            "apps_at_or_above_1_25x":
                sum(1 for s in speedups if s >= 1.25),
            "median_speedup": float(np.median(speedups)) if speedups
                else 0.0,
            "min_speedup": min(speedups) if speedups else 0.0,
            "all_outputs_identical":
                all(r["outputs_identical"] for r in records),
            "all_narrow_outputs_identical":
                all(r["narrow_outputs_identical"] for r in records),
            "max_narrow_footprint_ratio":
                max((r["narrow_footprint_ratio"] for r in records),
                    default=1.0),
            "max_narrow_overhead":
                max((r["narrow_overhead"] for r in records), default=1.0),
        },
    }
    if json_path:
        Path(json_path).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"[codegen_bench] wrote {json_path}", file=out)

    headers = ["app", "legacy ms", "specialized ms", "speedup",
               "identical"]
    rows = [[r["app"], r["median_off_ms"], r["median_on_ms"],
             f'{r["speedup"]:.2f}x',
             "yes" if r["outputs_identical"] else "NO"]
            for r in records]
    if throughput:
        headers += ["legacy fps", "specialized fps"]
        for row, r in zip(rows, records):
            row += [f'{r["throughput_off"]["fps"]:.2f}',
                    f'{r["throughput_on"]["fps"]:.2f}']
    print(f"\n## Fast-path codegen: specialize on vs off "
          f"(scale={scale}, medians of {runs} interleaved runs)\n",
          file=out)
    print(format_table(headers, rows), file=out)
    s = doc["summary"]
    print(f"\nmedian speedup {s['median_speedup']:.2f}x, "
          f"{s['apps_at_or_above_1_25x']}/{len(records)} apps >= 1.25x, "
          f"min {s['min_speedup']:.2f}x, outputs identical: "
          f"{s['all_outputs_identical']}", file=out)

    print(f"\n## Precision narrowing: scratch footprint and runtime "
          f"(scale={scale})\n", file=out)
    nheaders = ["app", "scratch B", "narrowed B", "ratio", "stages",
                "overhead", "identical"]
    nrows = [[r["app"], r["scratch_bytes"], r["narrow_scratch_bytes"],
              f'{r["narrow_footprint_ratio"]:.2f}x', r["narrowed_stages"],
              f'{r["narrow_overhead"]:.2f}x' if r["narrow_timed"]
              else "-",
              "yes" if r["narrow_outputs_identical"] else "NO"]
             for r in records]
    print(format_table(nheaders, nrows), file=out)

    if batch:
        print(f"\n## Batch entry point: run_batch(N) vs N sequential "
              f"calls (scale={scale})\n", file=out)
        bheaders = ["app"] + [f"N={n}" for n in BATCH_SIZES] \
            + ["identical"]
        brows = []
        for r in records:
            sweep = r["batch_sweep"]
            brows.append(
                [r["app"]]
                + [f'{e["speedup"]:.2f}x' for e in sweep]
                + ["yes" if all(e["outputs_identical"] for e in sweep)
                   else "NO"])
        print(format_table(bheaders, brows), file=out)
    return doc


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark fast-path specialization vs legacy codegen")
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--apps", default="all",
                        help="comma-separated app names, or 'all'")
    parser.add_argument("--runs", type=int, default=9,
                        help="timed runs per variant (after warm-up pair)")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--json", default="BENCH_codegen.json",
                        help="output JSON path ('' disables)")
    parser.add_argument("--throughput", action="store_true",
                        help="also measure sustained frames/sec")
    parser.add_argument("--batch-sweep", action="store_true",
                        help="sweep run_batch over N in "
                             f"{list(BATCH_SIZES)} vs sequential calls")
    args = parser.parse_args(argv)

    if args.apps == "all":
        apps = list(APP_BUILDERS)
    else:
        apps = [a.strip() for a in args.apps.split(",") if a.strip()]
        unknown = [a for a in apps if a not in APP_BUILDERS]
        if unknown:
            parser.error(f"unknown apps: {unknown}; "
                         f"choose from {sorted(APP_BUILDERS)}")
    run_bench(apps, args.scale, args.runs, args.threads,
              args.json or None, args.throughput, args.batch_sweep)


if __name__ == "__main__":
    main()
