"""Regenerate Table 2: absolute times and comparator speedups per app.

Usage::

    python -m repro.bench.table2 [--scale paper|small|tiny] [--threads N]
                                 [--apps a,b,...] [--search-budget K]

Columns mirror the paper's: stage count, image size, PolyMage (opt+vec)
times at 1/2/N threads — reported as the *minimum* over the protocol's
runs, with the N-thread standard deviation alongside — the OpenCV-style
library time (the three apps the paper reports it for), and speedups of
PolyMage (opt+vec, N threads) over (a) the best configuration found by
stochastic wide-space search with a small budget (the OpenTuner
stand-in) and (b) the no-fusion tuned variant (``base+vec``, standing in
for Halide's hand-tuned schedules where those do not fuse).  Paper
values are printed alongside for comparison.

``--profile`` builds the opt+vec variant with in-library per-group
timers and prints each group's time and tile count; ``--trace PATH``
writes the compiler-phase spans as a Chrome trace_event JSON.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.autotune.random_search import random_search
from repro.baselines import opencv_like
from repro.bench.harness import (
    APP_BUILDERS, PAPER_TABLE2, AppInstance, build_variant, format_table,
    make_instance, spec_lines, time_ms, time_stats,
)
from repro.observe import tracing
from repro.pipeline.graph import PipelineGraph


def opencv_time(instance: AppInstance) -> float | None:
    """Time the OpenCV-style composition (None where the paper has '-')."""
    name = instance.name
    imgs = list(instance.inputs.values())
    if name == "unsharp":
        return time_ms(lambda: opencv_like.unsharp_like(imgs[0]))
    if name == "harris":
        return time_ms(lambda: opencv_like.harris_like(imgs[0]))
    if name == "pyramid_blend":
        a, b, m = imgs
        levels = 4 if instance.scale == "paper" else 3
        return time_ms(lambda: opencv_like.pyramid_blend_like(
            a, b, m, levels))
    return None


def run_table2(scale: str = "small", threads: int = 4,
               apps: list[str] | None = None,
               search_budget: int = 12,
               trace_path=None, profile: bool = False,
               out=sys.stdout) -> list[list]:
    """Measure and print the Table 2 analog; returns the rows."""
    apps = apps or list(APP_BUILDERS)
    headers = ["Benchmark", "Stages", "LoC", "Size",
               "t(1) ms", "t(2) ms", f"t({threads}) ms", "std ms",
               "OpenCV ms", "x RandSearch", "x NoFusion",
               "paper t(16)", "paper x OT", "paper x H-tuned"]
    rows = []
    profiles: list[tuple[str, object]] = []
    with tracing() as tracer:
        tracer.enabled = trace_path is not None
        for name in apps:
            instance = make_instance(name, scale)
            # non-paper apps (iunsharp) have no Table 2 reference row
            paper = PAPER_TABLE2.get(name, {})
            n_stages = len(PipelineGraph(instance.app.outputs))

            opt = build_variant(instance, "opt+vec", instrument=profile)
            t1 = time_stats(lambda: opt(1))
            t2 = time_stats(lambda: opt(2))
            tn = time_stats(lambda: opt(threads))
            if profile and opt.native.last_stats is not None:
                profiles.append((name, opt.native.last_stats))

            nofusion = build_variant(instance, "base+vec")
            t_nf = time_ms(lambda: nofusion(threads))

            report = random_search(
                instance.app.outputs, instance.values, instance.values,
                instance.inputs, budget=search_budget, n_threads=threads,
                name=f"t2rand_{name}")
            t_rand = report.best().time_ms if report.results else None

            t_cv = opencv_time(instance)
            rows.append([
                name, n_stages, spec_lines(name),
                "x".join(str(v) for v in instance.values.values()),
                t1.min_ms, t2.min_ms, tn.min_ms, tn.std_ms, t_cv,
                (t_rand / tn.min_ms) if t_rand else None,
                t_nf / tn.min_ms,
                paper.get("t16_ms"), paper.get("speedup_opentuner"),
                paper.get("speedup_htuned"),
            ])
            print(f"  [{name}] done", file=sys.stderr)
        if trace_path:
            tracer.write_chrome(trace_path)
            print(f"wrote trace {trace_path}", file=sys.stderr)
    print(f"\n## Table 2 analog (scale={scale}, threads={threads}; "
          f"times are min over runs)\n", file=out)
    print(format_table(headers, rows), file=out)
    for name, stats in profiles:
        print(f"\nper-group profile ({name}, opt+vec, last run):", file=out)
        for line in stats.render().splitlines():
            print(f"  {line}", file=out)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["paper", "small", "tiny"])
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--apps", default=None)
    parser.add_argument("--search-budget", type=int, default=12)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write compiler-phase spans as Chrome trace")
    parser.add_argument("--profile", action="store_true",
                        help="instrument opt+vec builds and print "
                             "per-group times")
    args = parser.parse_args()
    apps = args.apps.split(",") if args.apps else None
    run_table2(args.scale, args.threads, apps, args.search_budget,
               trace_path=args.trace, profile=args.profile)


if __name__ == "__main__":
    main()
