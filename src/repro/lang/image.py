"""The ``Image`` construct — a typed multi-dimensional pipeline input."""

from __future__ import annotations

from typing import Iterable

from repro.lang.constructs import _fresh_name
from repro.lang.expr import Expr, Reference, wrap
from repro.lang.types import DType


class Image:
    """An input image: a function on an integer grid supplied by the caller.

    ``Image(Float, [R + 2, C + 2])`` declares a 2-D input whose extent along
    each dimension is an affine expression in parameters and constants.  The
    valid coordinate range of dimension ``d`` is ``[0, extent[d] - 1]``.

    Accessing pixels is done by calling the image like a function:
    ``I(x, y)`` yields a :class:`~repro.lang.expr.Reference`.
    """

    __slots__ = ("dtype", "extents", "name")

    def __init__(self, dtype: DType, extents: Iterable, name: str | None = None):
        if not isinstance(dtype, DType):
            raise TypeError("Image expects a DType as its first argument")
        self.dtype = dtype
        self.extents = tuple(wrap(e) for e in extents)
        if not self.extents:
            raise ValueError("Image needs at least one dimension")
        self.name = name or _fresh_name("img")

    @property
    def ndim(self) -> int:
        return len(self.extents)

    def __call__(self, *args) -> Reference:
        if len(args) != self.ndim:
            raise TypeError(
                f"image {self.name!r} has {self.ndim} dimensions, "
                f"accessed with {len(args)} indices")
        return Reference(self, args)

    def __repr__(self) -> str:
        return f"Image({self.dtype}, {list(self.extents)!r}, name={self.name!r})"

    def __hash__(self) -> int:
        return id(self)
