"""Core user-facing constructs: Parameter, Variable, Interval, Case.

``Condition`` lives in :mod:`repro.lang.expr` (conditions are part of the
expression tree) and is re-exported here so user code can import everything
from one place, as in the paper's examples.
"""

from __future__ import annotations

import itertools

from repro.lang.expr import (  # noqa: F401  (re-exports)
    BoolExpr, Condition, Expr, TrueCond, wrap,
)
from repro.lang.types import DType, Int

_counter = itertools.count()


def _fresh_name(prefix: str) -> str:
    return f"_{prefix}{next(_counter)}"


class Parameter(Expr):
    """A named scalar input to the pipeline (e.g. image width/height).

    Parameters may appear in interval bounds, conditions and value
    expressions.  Their concrete values are supplied when the compiled
    pipeline is executed; *estimates* are supplied at compile time to guide
    grouping (see :class:`repro.compiler.grouping.GroupingContext`).
    """

    __slots__ = ("dtype", "name")

    def __init__(self, dtype: DType = Int, name: str | None = None):
        if not isinstance(dtype, DType):
            raise TypeError("Parameter expects a DType")
        self.dtype = dtype
        self.name = name or _fresh_name("p")

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return id(self)


class Variable(Expr):
    """An integer variable labelling one dimension of a function domain."""

    __slots__ = ("name",)

    def __init__(self, name: str | None = None):
        self.name = name or _fresh_name("x")

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return id(self)


class Interval:
    """An inclusive integer range ``[lower, upper]`` with a step.

    Bounds must be affine expressions in parameters and constants; this is
    validated when the pipeline is compiled (the front end rejects bounds
    mentioning variables or function values).
    """

    __slots__ = ("lower", "upper", "step")

    def __init__(self, lower, upper, step: int = 1):
        self.lower = wrap(lower)
        self.upper = wrap(upper)
        if not isinstance(step, int) or step == 0:
            raise ValueError("Interval step must be a non-zero integer")
        self.step = step

    def __repr__(self) -> str:
        return f"Interval({self.lower!r}, {self.upper!r}, {self.step})"


class Case:
    """One piece of a piece-wise function definition.

    ``Case(condition, expression)`` — the expression defines the function
    wherever the condition holds.  Cases of one function must be mutually
    exclusive; the front end checks the *bound-constraint* fragment of this
    statically and reports overlaps it can prove.
    """

    __slots__ = ("condition", "expression")

    def __init__(self, condition: BoolExpr, expression):
        if not isinstance(condition, BoolExpr):
            raise TypeError("Case expects a Condition as its first argument")
        self.condition = condition
        self.expression = wrap(expression)

    def __repr__(self) -> str:
        return f"Case({self.condition!r}, {self.expression!r})"
