"""Function and Accumulator — the stages of a pipeline.

A :class:`Function` maps a multi-dimensional integer domain to scalar
values, defined piece-wise by :class:`~repro.lang.constructs.Case` objects.
An :class:`Accumulator` is the stateful variant used for histograms and
other reductions: it is *defined* on a variable domain but *evaluated* over
a reduction domain, folding values in with a combining operator.

:func:`Stencil` is the convenience constructor from the paper for spatial
filters: it expands a weight matrix into an explicit sum of shifted
references, so downstream analyses see ordinary expressions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.constructs import Case, Interval, Variable, _fresh_name
from repro.lang.expr import (
    BoolExpr, Expr, Literal, Reference, TrueCond, wrap,
)
from repro.lang.types import DType


def _check_var_dom(var_dom) -> tuple[tuple[Variable, ...], tuple[Interval, ...]]:
    try:
        variables, intervals = var_dom
    except (TypeError, ValueError):
        raise TypeError(
            "varDom must be a pair ([variables], [intervals])") from None
    variables = tuple(variables) if isinstance(variables, (list, tuple)) \
        else (variables,)
    intervals = tuple(intervals) if isinstance(intervals, (list, tuple)) \
        else (intervals,)
    if len(variables) != len(intervals):
        raise ValueError("varDom needs one interval per variable")
    for v in variables:
        if not isinstance(v, Variable):
            raise TypeError(f"domain labels must be Variables, got {v!r}")
    for ivl in intervals:
        if not isinstance(ivl, Interval):
            raise TypeError(f"domain ranges must be Intervals, got {ivl!r}")
    if len(set(variables)) != len(variables):
        raise ValueError("domain variables must be distinct")
    return variables, intervals


class Function:
    """A pipeline stage mapping an integer domain to scalar values.

    Parameters
    ----------
    varDom:
        A pair ``([variables], [intervals])`` declaring the domain.
    typ:
        The scalar :class:`~repro.lang.types.DType` of the values.
    name:
        Optional stage name (auto-generated otherwise); names appear in the
        pipeline graph, generated code and error messages.

    The body is assigned through :attr:`defn` after construction, as a
    single expression, a list of expressions, or a list of ``Case`` objects
    for piece-wise definitions, exactly as in the paper's examples.
    """

    def __init__(self, varDom, typ: DType, name: str | None = None):
        if not isinstance(typ, DType):
            raise TypeError("Function expects a DType for typ")
        self.variables, self.intervals = _check_var_dom(varDom)
        self.dtype = typ
        self.name = name or _fresh_name("f")
        self._defn: tuple[Case, ...] | None = None

    # -- definition -------------------------------------------------------
    @property
    def defn(self) -> tuple[Case, ...]:
        if self._defn is None:
            raise ValueError(f"function {self.name!r} has no definition yet")
        return self._defn

    @defn.setter
    def defn(self, body) -> None:
        if self._defn is not None:
            raise ValueError(f"function {self.name!r} is already defined")
        if isinstance(body, (Expr, int, float, Case)):
            body = [body]
        cases = []
        for item in body:
            if isinstance(item, Case):
                cases.append(item)
            else:
                cases.append(Case(TrueCond(), wrap(item)))
        if not cases:
            raise ValueError("a definition needs at least one case")
        self._defn = tuple(cases)

    @property
    def is_defined(self) -> bool:
        return self._defn is not None

    # -- structure --------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.variables)

    def __call__(self, *args) -> Reference:
        if len(args) != self.ndim:
            raise TypeError(
                f"function {self.name!r} has {self.ndim} dimensions, "
                f"accessed with {len(args)} indices")
        return Reference(self, args)

    def __repr__(self) -> str:
        return f"Function({self.name!r}, {self.ndim}D, {self.dtype})"

    def __hash__(self) -> int:
        return id(self)


class Reduction:
    """Combining operators for :class:`Accumulator` definitions."""

    Sum = "sum"
    Min = "min"
    Max = "max"

    ALL = (Sum, Min, Max)


#: Paper-style spellings: ``Accumulate(hist(I(x, y)), 1, Sum)``.
Sum = Reduction.Sum
MinOp = Reduction.Min
MaxOp = Reduction.Max


class Accumulate:
    """The body of an accumulator: fold ``value`` into ``target`` with ``op``.

    ``target`` must be a reference to the accumulator itself; its index
    expressions are evaluated over the reduction domain and may be
    data-dependent, e.g. ``hist(I(x, y))`` for a histogram.
    """

    __slots__ = ("target", "value", "op")

    def __init__(self, target: Reference, value, op: str = Reduction.Sum):
        if not isinstance(target, Reference):
            raise TypeError("Accumulate target must be a function reference")
        if op not in Reduction.ALL:
            raise ValueError(f"unknown reduction operator: {op!r}")
        self.target = target
        self.value = wrap(value)
        self.op = op

    def __repr__(self) -> str:
        return f"Accumulate({self.target!r}, {self.value!r}, {self.op})"


class Accumulator:
    """A reduction stage (histogram-like), per Section 2 of the paper.

    ``redDom`` is the domain iterated during evaluation; ``varDom`` is the
    domain on which the result is defined.  The accumulator is initialised
    to the identity of its combining operator (0 for Sum, +inf/-inf for
    Min/Max) before evaluation.
    """

    def __init__(self, redDom, varDom, typ: DType, name: str | None = None):
        if not isinstance(typ, DType):
            raise TypeError("Accumulator expects a DType for typ")
        self.red_variables, self.red_intervals = _check_var_dom(redDom)
        self.variables, self.intervals = _check_var_dom(varDom)
        if set(self.red_variables) & set(self.variables):
            raise ValueError("reduction and variable domains must not share "
                             "variables")
        self.dtype = typ
        self.name = name or _fresh_name("acc")
        self._defn: Accumulate | None = None

    @property
    def defn(self) -> Accumulate:
        if self._defn is None:
            raise ValueError(f"accumulator {self.name!r} has no definition yet")
        return self._defn

    @defn.setter
    def defn(self, body: Accumulate) -> None:
        if self._defn is not None:
            raise ValueError(f"accumulator {self.name!r} is already defined")
        if not isinstance(body, Accumulate):
            raise TypeError("accumulator definitions use Accumulate(...)")
        if body.target.function is not self:
            raise ValueError("Accumulate target must reference the "
                             "accumulator being defined")
        if len(body.target.args) != self.ndim:
            raise ValueError(
                f"Accumulate target indexes {len(body.target.args)} "
                f"dimensions; accumulator has {self.ndim}")
        self._defn = body

    @property
    def is_defined(self) -> bool:
        return self._defn is not None

    @property
    def ndim(self) -> int:
        return len(self.variables)

    def __call__(self, *args) -> Reference:
        if len(args) != self.ndim:
            raise TypeError(
                f"accumulator {self.name!r} has {self.ndim} dimensions, "
                f"accessed with {len(args)} indices")
        return Reference(self, args)

    def __repr__(self) -> str:
        return f"Accumulator({self.name!r}, {self.ndim}D, {self.dtype})"

    def __hash__(self) -> int:
        return id(self)


def Stencil(ref: Reference, factor, weights: Sequence,
            origin: Sequence[int] | None = None) -> Expr:
    """Expand a spatial filter into a weighted sum of shifted references.

    ``Stencil(I(x, y), 1.0/12, [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])``
    produces ``(1/12) * sum_{i,j} w[i][j] * I(x + i - oi, y + j - oj)``
    where ``(oi, oj)`` is the stencil origin (the centre by default).
    Zero weights are skipped.  Works for any dimensionality matching the
    nesting depth of ``weights``.
    """
    if not isinstance(ref, Reference):
        raise TypeError("Stencil expects a function reference like I(x, y)")

    # Determine the shape from the nesting of the weight matrix.
    shape = []
    probe = weights
    while isinstance(probe, (list, tuple)):
        shape.append(len(probe))
        if len(probe) == 0:
            raise ValueError("stencil weights must be non-empty")
        probe = probe[0]
    if len(shape) != len(ref.args):
        raise ValueError(
            f"stencil weights are {len(shape)}-D but the reference has "
            f"{len(ref.args)} indices")

    if origin is None:
        origin = [s // 2 for s in shape]
    origin = list(origin)
    if len(origin) != len(shape):
        raise ValueError("stencil origin must have one entry per dimension")

    def weight_at(idx: tuple[int, ...]):
        w = weights
        for i in idx:
            w = w[i]
        if isinstance(w, (list, tuple)):
            raise ValueError("ragged stencil weight matrix")
        return w

    def all_indices(shape: list[int]):
        if not shape:
            yield ()
            return
        for head in range(shape[0]):
            for rest in all_indices(shape[1:]):
                yield (head,) + rest

    total: Expr | None = None
    for idx in all_indices(shape):
        w = weight_at(idx)
        if w == 0:
            continue
        shifted = [arg + (i - o) if (i - o) != 0 else arg
                   for arg, i, o in zip(ref.args, idx, origin)]
        term = Reference(ref.function, shifted)
        term = term if w == 1 else Literal(w) * term
        total = term if total is None else total + term
    if total is None:
        total = Literal(0)

    factor = wrap(factor)
    if isinstance(factor, Literal) and factor.value == 1:
        return total
    return factor * total
