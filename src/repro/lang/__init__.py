"""The PolyMage DSL, embedded in Python (paper Section 2).

Everything a pipeline author needs is importable from this package::

    from repro.lang import (
        Parameter, Variable, Interval, Condition, Case,
        Image, Function, Accumulator, Accumulate, Stencil, Sum,
        Int, Float, Double, UChar,
    )
"""

from repro.lang.constructs import Case, Condition, Interval, Parameter, Variable
from repro.lang.expr import (
    Abs, Atan, BoolExpr, Cast, Ceil, Cos, Exp, Expr, Floor, Literal, Log, Max,
    Min, Pow, Reference, Select, Sin, Sqrt, Tan, TrueCond,
)
from repro.lang.function import (
    Accumulate, Accumulator, Function, MaxOp, MinOp, Reduction, Stencil, Sum,
)
from repro.lang.image import Image
from repro.lang.types import (
    Char, Double, DType, Float, Int, Long, Short, UChar, UInt, ULong, UShort,
)

__all__ = [
    "Abs", "Accumulate", "Accumulator", "Atan", "BoolExpr", "Case", "Cast",
    "Ceil", "Char", "Condition", "Cos", "Double", "DType", "Exp", "Expr",
    "Float", "Floor", "Function", "Image", "Int", "Interval", "Literal",
    "Log", "Long", "Max", "MaxOp", "Min", "MinOp", "Parameter", "Pow",
    "Reduction", "Reference", "Select", "Short", "Sin", "Sqrt", "Stencil",
    "Sum", "Tan", "TrueCond", "UChar", "UInt", "ULong", "UShort", "Variable",
]
