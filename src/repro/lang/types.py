"""Scalar data types of the PolyMage DSL.

Each :class:`DType` pairs a DSL-level name with the NumPy dtype used by the
interpreter backend and the C type name used by the code generator.  The
module-level constants (``Int``, ``Float``, ``UChar``, ...) are the values
users pass to :class:`~repro.lang.function.Function` and
:class:`~repro.lang.image.Image`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """A scalar type usable for images, functions and parameters."""

    name: str
    np_dtype: np.dtype
    c_name: str
    is_float: bool

    def __repr__(self) -> str:
        return self.name


Char = DType("Char", np.dtype(np.int8), "signed char", False)
UChar = DType("UChar", np.dtype(np.uint8), "unsigned char", False)
Short = DType("Short", np.dtype(np.int16), "short", False)
UShort = DType("UShort", np.dtype(np.uint16), "unsigned short", False)
Int = DType("Int", np.dtype(np.int32), "int", False)
UInt = DType("UInt", np.dtype(np.uint32), "unsigned int", False)
Long = DType("Long", np.dtype(np.int64), "long", False)
ULong = DType("ULong", np.dtype(np.uint64), "unsigned long", False)
Float = DType("Float", np.dtype(np.float32), "float", True)
Double = DType("Double", np.dtype(np.float64), "double", True)

ALL_TYPES = (Char, UChar, Short, UShort, Int, UInt, Long, ULong, Float, Double)

_BY_NAME = {t.name: t for t in ALL_TYPES}


def dtype_by_name(name: str) -> DType:
    """Look up a :class:`DType` by its DSL name (e.g. ``"Float"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown DSL type name: {name!r}") from None


def promote(a: DType, b: DType) -> DType:
    """Return the type of an arithmetic result combining ``a`` and ``b``.

    Mirrors NumPy promotion, restricted to the DSL type set.
    """
    res = np.promote_types(a.np_dtype, b.np_dtype)
    for t in ALL_TYPES:
        if t.np_dtype == res:
            return t
    # Fall back to Double for anything NumPy widens beyond our set.
    return Double
