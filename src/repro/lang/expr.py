"""Expression AST of the PolyMage DSL.

Functions, images and scalar parameters combine into expression trees via
standard Python operators.  The tree is deliberately small: literals, binary
and unary arithmetic, math-function calls, casts, selections, and
:class:`Reference` nodes that access another function's value at a
(possibly affine, possibly data-dependent) coordinate.

Boolean conditions (used by ``Case`` and ``Select``) form a parallel little
tree: :class:`Condition` for a single comparison, combined into
conjunctions/disjunctions with ``&`` and ``|`` as in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.lang import types as dsl_types
from repro.lang.types import DType

_NUMERIC = (int, float)

#: Binary operators supported in expressions, in C spelling.
BINARY_OPS = ("+", "-", "*", "/", "//", "%")

#: Comparison operators supported in conditions.
COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")

#: Math builtins understood by both backends.
MATH_FUNCTIONS = (
    "exp", "log", "sqrt", "sin", "cos", "tan", "atan", "abs",
    "floor", "ceil", "pow", "min", "max",
)


def wrap(value: "Expr | int | float") -> "Expr":
    """Coerce a Python number to a :class:`Literal`; pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not DSL values; use Condition")
    if isinstance(value, _NUMERIC):
        return Literal(value)
    raise TypeError(f"cannot use {value!r} in a DSL expression")


class Expr:
    """Base class for all value expressions."""

    __slots__ = ()

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, wrap(other))

    def __radd__(self, other):
        return BinOp("+", wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other):
        return BinOp("-", wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other):
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", wrap(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, wrap(other))

    def __rfloordiv__(self, other):
        return BinOp("//", wrap(other), self)

    def __mod__(self, other):
        return BinOp("%", self, wrap(other))

    def __rmod__(self, other):
        return BinOp("%", wrap(other), self)

    def __neg__(self):
        return UnOp("-", self)

    def __pos__(self):
        return self

    # -- comparisons produce conditions ----------------------------------
    def __lt__(self, other):
        return Condition(self, "<", wrap(other))

    def __le__(self, other):
        return Condition(self, "<=", wrap(other))

    def __gt__(self, other):
        return Condition(self, ">", wrap(other))

    def __ge__(self, other):
        return Condition(self, ">=", wrap(other))

    # NOTE: __eq__/__ne__ keep identity semantics so exprs remain hashable
    # and usable as dict keys.  Use Condition(a, '==', b) for equality tests.

    def children(self) -> Iterable["Expr"]:
        """Direct sub-expressions of this node."""
        return ()

    def substitute(self, mapping: dict["Expr", "Expr"]) -> "Expr":
        """Return a copy with occurrences of keys replaced by values."""
        if self in mapping:
            return mapping[self]
        return self._rebuild(mapping)

    def _rebuild(self, mapping: dict["Expr", "Expr"]) -> "Expr":
        return self


class Literal(Expr):
    """An integer or floating point constant."""

    __slots__ = ("value",)

    def __init__(self, value: int | float):
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)


class BinOp(Expr):
    """A binary arithmetic operation.

    ``//`` is floor (integer) division, used for upsampling accesses such as
    ``g((x + sx) // 2)``; ``/`` is true division on values.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ValueError(f"unsupported binary operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def _rebuild(self, mapping):
        return BinOp(self.op, self.left.substitute(mapping),
                     self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    """A unary operation (currently only negation)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op != "-":
            raise ValueError(f"unsupported unary operator: {op!r}")
        self.op = op
        self.operand = operand

    def children(self):
        return (self.operand,)

    def _rebuild(self, mapping):
        return UnOp(self.op, self.operand.substitute(mapping))

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


class Call(Expr):
    """A call to a math builtin, e.g. ``Exp(x)`` or ``Min(a, b)``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[Expr]):
        if name not in MATH_FUNCTIONS:
            raise ValueError(f"unknown math function: {name!r}")
        self.name = name
        self.args = tuple(wrap(a) for a in args)

    def children(self):
        return self.args

    def _rebuild(self, mapping):
        return Call(self.name, [a.substitute(mapping) for a in self.args])

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


class Cast(Expr):
    """An explicit conversion of a value to a DSL scalar type."""

    __slots__ = ("dtype", "operand")

    def __init__(self, dtype: DType, operand: Expr | int | float):
        if not isinstance(dtype, DType):
            raise TypeError("Cast expects a DType as its first argument")
        self.dtype = dtype
        self.operand = wrap(operand)

    def children(self):
        return (self.operand,)

    def _rebuild(self, mapping):
        return Cast(self.dtype, self.operand.substitute(mapping))

    def __repr__(self) -> str:
        return f"Cast({self.dtype}, {self.operand!r})"


class Select(Expr):
    """``Select(cond, then, else)`` — a value-level conditional."""

    __slots__ = ("condition", "true_expr", "false_expr")

    def __init__(self, condition: "BoolExpr", true_expr, false_expr):
        if not isinstance(condition, BoolExpr):
            raise TypeError("Select condition must be a Condition expression")
        self.condition = condition
        self.true_expr = wrap(true_expr)
        self.false_expr = wrap(false_expr)

    def children(self):
        return (self.true_expr, self.false_expr) + tuple(
            self.condition.value_children())

    def _rebuild(self, mapping):
        return Select(self.condition.substitute(mapping),
                      self.true_expr.substitute(mapping),
                      self.false_expr.substitute(mapping))

    def __repr__(self) -> str:
        return (f"Select({self.condition!r}, {self.true_expr!r}, "
                f"{self.false_expr!r})")


class Reference(Expr):
    """An access ``f(e0, e1, ...)`` to a function, image or accumulator."""

    __slots__ = ("function", "args")

    def __init__(self, function: Any, args: Iterable[Expr | int | float]):
        self.function = function
        self.args = tuple(wrap(a) for a in args)

    def children(self):
        return self.args

    def _rebuild(self, mapping):
        return Reference(self.function, [a.substitute(mapping) for a in self.args])

    def __repr__(self) -> str:
        return f"{self.function.name}({', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------

class BoolExpr:
    """Base class for boolean condition trees used by Case and Select."""

    __slots__ = ()

    def __and__(self, other):
        if not isinstance(other, BoolExpr):
            raise TypeError("conditions combine only with other conditions")
        return CondAnd(self, other)

    def __or__(self, other):
        if not isinstance(other, BoolExpr):
            raise TypeError("conditions combine only with other conditions")
        return CondOr(self, other)

    def __invert__(self):
        return CondNot(self)

    def value_children(self) -> Iterable[Expr]:
        """All value expressions referenced inside this condition."""
        return ()

    def substitute(self, mapping: dict[Expr, Expr]) -> "BoolExpr":
        return self

    def conjuncts(self) -> Iterator["BoolExpr"]:
        """Iterate over top-level AND-ed terms (self if not a conjunction)."""
        yield self


class Condition(BoolExpr):
    """A single comparison ``lhs op rhs``.

    Matches the paper's ``Condition(x, '>=', 1)`` form, and is also produced
    by Python comparison operators on expressions (``x >= 1``).
    """

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs, op: str, rhs):
        if op not in COMPARE_OPS:
            raise ValueError(f"unsupported comparison operator: {op!r}")
        self.lhs = wrap(lhs)
        self.op = op
        self.rhs = wrap(rhs)

    def value_children(self):
        return (self.lhs, self.rhs)

    def substitute(self, mapping):
        return Condition(self.lhs.substitute(mapping), self.op,
                         self.rhs.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class CondAnd(BoolExpr):
    """Conjunction of two conditions."""

    __slots__ = ("left", "right")

    def __init__(self, left: BoolExpr, right: BoolExpr):
        self.left = left
        self.right = right

    def value_children(self):
        return tuple(self.left.value_children()) + tuple(
            self.right.value_children())

    def substitute(self, mapping):
        return CondAnd(self.left.substitute(mapping),
                       self.right.substitute(mapping))

    def conjuncts(self):
        yield from self.left.conjuncts()
        yield from self.right.conjuncts()

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class CondOr(BoolExpr):
    """Disjunction of two conditions."""

    __slots__ = ("left", "right")

    def __init__(self, left: BoolExpr, right: BoolExpr):
        self.left = left
        self.right = right

    def value_children(self):
        return tuple(self.left.value_children()) + tuple(
            self.right.value_children())

    def substitute(self, mapping):
        return CondOr(self.left.substitute(mapping),
                      self.right.substitute(mapping))

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class CondNot(BoolExpr):
    """Negation of a condition."""

    __slots__ = ("operand",)

    def __init__(self, operand: BoolExpr):
        self.operand = operand

    def value_children(self):
        return tuple(self.operand.value_children())

    def substitute(self, mapping):
        return CondNot(self.operand.substitute(mapping))

    def __repr__(self) -> str:
        return f"(~{self.operand!r})"


class TrueCond(BoolExpr):
    """The always-true condition; used for single-expression definitions."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "True"


# ---------------------------------------------------------------------------
# Convenience math constructors (capitalised to avoid builtin shadowing)
# ---------------------------------------------------------------------------

def _math(name: str) -> Callable[..., Call]:
    def make(*args) -> Call:
        return Call(name, args)
    make.__name__ = name.capitalize()
    make.__doc__ = f"DSL math builtin ``{name}``."
    return make


Exp = _math("exp")
Log = _math("log")
Sqrt = _math("sqrt")
Sin = _math("sin")
Cos = _math("cos")
Tan = _math("tan")
Atan = _math("atan")
Abs = _math("abs")
Floor = _math("floor")
Ceil = _math("ceil")
Pow = _math("pow")
Min = _math("min")
Max = _math("max")


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth first, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def references(expr: Expr) -> Iterator[Reference]:
    """Yield every :class:`Reference` in ``expr`` (including nested ones)."""
    for node in walk(expr):
        if isinstance(node, Reference):
            yield node


def condition_references(cond: BoolExpr) -> Iterator[Reference]:
    """Yield every :class:`Reference` inside a condition tree."""
    for value in cond.value_children():
        yield from references(value)
