"""The serving worker process: one shard of a :class:`ShardedService`.

Each worker is a **spawn-mode** process that owns everything hot for
its shard: the unpickled plan, a private background native build (the
content-addressed :class:`~repro.codegen.build.CompileCache` dedups the
actual ``gcc`` run across workers), its own
:class:`~repro.serve.fallback.FallbackPolicy`, scratch arenas, and an
output :class:`~repro.serve.shm.ShmBufferPool` — so native calls in
different shards never serialize on a per-artifact lock and the
interpreter fallback escapes the GIL entirely.

Internally a worker is simply a :class:`~repro.serve.service.
PipelineService` (threads, bounded queue, deadlines, coalescing —
PR 6's batch windows form in the worker's own queue) fed by a command
pipe.  The pipe carries **headers only**: a ``frame`` message is the
request id, parameter values by name, and one
:meth:`~repro.serve.shm.SlotLease.header` per input; the reply is the
request id plus one header per output.  Pixels move exclusively through
the shared-memory slabs (:mod:`repro.serve.shm`).

Protocol (router → worker)::

    ("frame", rid, {param: value}, {image: header}, deadline_s | None)
    ("free",  [(slot_key, gen), ...])     # client released outputs
    ("stats", seq) / ("pause",) / ("resume",) / ("release",)
    ("close", drain)

Protocol (worker → router)::

    ("hello", pid)                        # command loop is live
    ("segment", name, size)               # new output slab announced
    ("backend", state)                    # background build resolved
    ("done", rid, {out: header}, backend, marks, latency_s)
    ("err",  rid, kind, detail, marks)    # kind: deadline | error | ...
                                          # deadline detail = the `where`
    ("stats", seq, payload)
    ("bye", [segment names])              # graceful exit (router unlinks)

Workers never unlink shared memory — segment lifetime is owned by the
router (see :mod:`repro.serve.shm`), which also reaps a killed worker's
slabs by name prefix.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from concurrent.futures import CancelledError

from repro.serve.deadlines import DeadlineExceeded
from repro.serve.queue import Overloaded, ServiceClosed
from repro.serve.shm import SegmentMap, ShmBufferPool, SlabAllocator

#: inner-service defaults a shard runs with unless the router overrides
DEFAULT_INNER_WORKERS = 2


def _relative_marks(timeline, anchor: float) -> list[tuple]:
    """Compress a worker-side timeline into picklable ``(dt, kind,
    fields)`` marks relative to ``anchor`` — the router grafts them back
    onto the client-facing timeline."""
    if timeline is None:
        return []
    marks = []
    for event in timeline.events():
        fields = {k: v for k, v in event.fields.items()
                  if isinstance(k, str)
                  and isinstance(v, (str, int, float, bool, type(None)))}
        marks.append((event.ts - anchor, event.kind, fields))
    return marks


def worker_main(conn, plan_bytes: bytes, cfg: dict) -> None:
    """Entry point of one worker process (spawn target).

    ``conn`` is the shard's command pipe, ``plan_bytes`` the pickled
    ``(plan, name)`` pair, ``cfg`` the picklable knobs (token, shard
    index, respawn generation, backend, threads, queue and batch
    limits).  Runs until a ``close`` message or the pipe breaks (router
    gone), then shuts the inner service down and exits.
    """
    from repro.api import CompiledPipeline
    from repro.serve.service import PipelineService

    send_lock = threading.Lock()

    def send(msg) -> bool:
        with send_lock:
            try:
                conn.send(msg)
                return True
            except (BrokenPipeError, OSError):
                return False

    try:
        plan, name = pickle.loads(plan_bytes)
        compiled = CompiledPipeline(plan, name)
        role = f"w{cfg['shard']}g{cfg['gen']}"
        allocator = SlabAllocator(
            cfg["token"], role,
            on_segment=lambda seg, size: send(("segment", seg, size)))
        pool = ShmBufferPool(allocator)
        inputs_map = SegmentMap()
        service = PipelineService(
            compiled,
            workers=cfg.get("inner_workers", DEFAULT_INNER_WORKERS),
            max_queue=cfg.get("max_queue", 64),
            backend=cfg.get("backend", "auto"),
            n_threads=cfg.get("n_threads", 1),
            vectorize=cfg.get("vectorize", True),
            pool=pool,
            max_batch=cfg.get("max_batch", 8),
            coalesce=cfg.get("coalesce", True),
            build_kwargs=cfg.get("build_kwargs") or {},
            name=f"{name}#{cfg['shard']}")
    except Exception:  # noqa: BLE001 - startup failure, report and die
        send(("fatal", traceback.format_exc()))
        conn.close()
        return

    send(("hello", os.getpid()))
    params_by_name = {p.name: p for p in plan.estimates}
    images_by_name = {img.name: img for img in plan.ir.graph.inputs}

    if cfg.get("backend", "auto") == "interpreter":
        send(("backend", "interpreter"))
    else:
        def _announce_backend() -> None:
            send(("backend", service.wait_ready()))

        threading.Thread(target=_announce_backend, daemon=True,
                         name="repro-shard-build-watch").start()

    copied_out = 0  # outputs that were not pool-backed (should be 0)

    def _ship(rid: int, future) -> None:
        """Completion callback: turn an inner-service result into a
        header-only reply.  Runs on an inner worker thread."""
        nonlocal copied_out
        anchor = time.monotonic()
        try:
            frame = future.result()
        except (Exception, CancelledError) as exc:  # noqa: BLE001 - relayed
            marks = _relative_marks(getattr(exc, "timeline", None), anchor)
            if isinstance(exc, DeadlineExceeded):
                # ship the checkpoint name so the router's reason
                # buckets stay as precise as the thread service's
                send(("err", rid, "deadline", exc.where, marks))
            elif isinstance(exc, CancelledError):
                send(("err", rid, "cancelled", "cancelled", marks))
            else:
                send(("err", rid, "error",
                      f"{type(exc).__name__}: {exc}", marks))
            return
        leases = pool.export(frame.outputs.values())
        headers = {}
        for out_name, array in frame.outputs.items():
            lease = leases.get(id(array))
            if lease is None:
                # defensive: an output that bypassed the pool gets
                # staged into a fresh slot (counted — tests pin this
                # path at zero)
                lease = allocator.alloc(array.nbytes)
                staged = lease.ndarray(array.shape, array.dtype)
                staged[...] = array
                leases[id(array)] = lease
                copied_out += 1
            headers[out_name] = lease.header(array.shape, array.dtype)
        marks = _relative_marks(frame.timeline(), anchor)
        send(("done", rid, headers, frame.backend, marks,
              frame.latency_s))

    closing_drain = True
    graceful = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # router is gone; drain and exit
        kind = msg[0]
        if kind == "frame":
            _rid, params, input_headers, deadline_s = msg[1:5]
            try:
                inputs = {images_by_name[image]: inputs_map.view(header)
                          for image, header in input_headers.items()}
                values = {params_by_name[param]: value
                          for param, value in params.items()}
                future = service.submit(values, inputs,
                                        deadline_s=deadline_s)
            except Overloaded as exc:
                send(("err", _rid, "overloaded", str(exc), []))
                continue
            except ServiceClosed as exc:
                send(("err", _rid, "closed", str(exc), []))
                continue
            except Exception as exc:  # noqa: BLE001 - bad header/params
                send(("err", _rid, "error",
                      f"{type(exc).__name__}: {exc}", []))
                continue
            future.add_done_callback(
                lambda fut, rid=_rid: _ship(rid, fut))
        elif kind == "free":
            for key, gen in msg[1]:
                pool.free_slot(tuple(key), gen)
        elif kind == "stats":
            payload = {
                "stats": service.stats().to_dict(),
                "metrics": service.metrics.as_dict(),
                "transport": allocator.stats(),
                "copied_out": copied_out,
                "build": service.build_provenance(),
            }
            send(("stats", msg[1], payload))
        elif kind == "pause":
            service.pause()
        elif kind == "resume":
            service.resume()
        elif kind == "release":
            service.release()
        elif kind == "close":
            closing_drain = bool(msg[1])
            graceful = True
            break
    try:
        service.close(drain=closing_drain)
    except Exception:  # noqa: BLE001 - exit anyway
        pass
    if graceful:
        send(("bye", allocator.segment_names()))
    allocator.close(unlink=False)  # the router owns every unlink
    inputs_map.close()
    conn.close()


class WorkerHandle:
    """Router-side proxy for one worker process.

    Owns the process object, the command pipe and its send lock, and
    the respawn generation baked into the worker's segment names.  The
    handle is deliberately dumb — placement, bookkeeping and fault
    handling live in the router.
    """

    def __init__(self, ctx, plan_bytes: bytes, cfg: dict):
        self.cfg = dict(cfg)
        self.role = f"w{cfg['shard']}g{cfg['gen']}"
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main, args=(child, plan_bytes, self.cfg),
            daemon=True,
            name=f"repro-shard-{cfg['name']}-{self.role}")
        self._send_lock = threading.Lock()
        self.process.start()
        child.close()  # the child's end lives in the child now

    def send(self, msg) -> bool:
        """Best-effort send; False once the pipe is down."""
        with self._send_lock:
            try:
                self.conn.send(msg)
                return True
            except (BrokenPipeError, OSError, ValueError):
                return False

    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout)

    def terminate(self) -> None:
        try:
            self.process.terminate()
        except Exception:  # noqa: BLE001 - already gone
            pass

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:  # noqa: BLE001 - already gone
            pass

    def close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
