"""The streaming pipeline service: compile once, serve frames forever.

A :class:`PipelineService` turns a :class:`~repro.api.CompiledPipeline`
into a long-lived, thread-based execution service:

* **Amortized compilation** — the native build runs on a background
  thread (warm :class:`~repro.codegen.build.CompileCache` integration);
  frames are served by the interpreter from the first ``submit`` and
  switch to the native artifact the moment it is ready.
* **Bounded ingress** — ``submit`` enqueues into a fixed-capacity queue
  and returns a future; a full queue rejects with
  :class:`~repro.serve.queue.Overloaded` instead of growing a hidden
  backlog.
* **Deadlines** — per-request budgets are enforced cooperatively at
  group/tile boundaries in the interpreter and by wall-clock checks
  around native calls; late frames fail with
  :class:`~repro.serve.deadlines.DeadlineExceeded` and their buffers are
  recycled.
* **Graceful degradation** — build/load failures and runtime native
  errors route frames to the interpreter via
  :class:`~repro.serve.fallback.FallbackPolicy`; every degradation is
  counted and (when tracing is on) recorded as ``repro.observe``
  counters/spans, surfaced by :meth:`PipelineService.stats`.
* **Zero per-frame output allocation** — outputs and full intermediates
  come from a per-service :class:`~repro.runtime.buffers.BufferPool`;
  steady-state serving recycles every buffer (callers hand arrays back
  with :meth:`Frame.release`).
* **Request coalescing** — once the native artifact is serving, a worker
  that dequeues a frame opportunistically pops consecutive *compatible*
  queued requests (same parameter values, same input shapes/dtypes) and
  serves them through one ``NativePipeline.run_batch`` call, amortizing
  the ctypes crossing, thread-team wakeup and arena setup that dominate
  small-frame latency.  Per-request deadlines survive batching: members
  already late are failed before the call, and late members are dropped
  individually on return.  See ``docs/internals.md`` §17.
* **Request-lifecycle observability** — every request is stamped with a
  :class:`~repro.observe.events.Timeline`
  (``submitted → dequeued → coalesced → dispatched → completed |
  dropped``) mirrored into a bounded service
  :class:`~repro.observe.events.EventLog`; per-stage latencies
  (``queue_wait``/``batch_wait``/``execute``/``total``) land in
  mergeable :class:`~repro.observe.metrics.Histogram`\\ s, deadline
  drops are counted *by reason*, and
  :meth:`PipelineService.serve_metrics` exposes everything in
  Prometheus text format.  ``sample_rate=`` promotes a deterministic
  subset of requests to cross-thread Chrome-trace async spans on the
  service tracer.  See ``docs/internals.md`` §18.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.codegen import build as _build
from repro.observe.events import EventLog, Timeline
from repro.observe.metrics import LatencyWindow, MetricsRegistry
from repro.observe.trace import Tracer, get_tracer
from repro.runtime.buffers import BufferPool
from repro.runtime.executor import execute_plan
from repro.serve.deadlines import Deadline, DeadlineExceeded
from repro.serve.fallback import (
    BUILDING, INTERPRETER, NATIVE, FallbackPolicy,
)
from repro.serve.queue import (
    BoundedQueue, Overloaded, QueueClosed, ServiceClosed,
)

#: lifecycle stages recorded as service histograms (seconds)
STAGES = ("queue_wait", "batch_wait", "execute", "total")


def _timeout_reason(where: str) -> str:
    """Classify a :class:`DeadlineExceeded` checkpoint into the drop-
    reason buckets ``stats()`` reports: expiry while still queued
    (``queue_wait``), behind a paused gate (``paused_at_gate``), after
    an uninterruptible native call (``late_native`` /
    ``late_batch_member``), or at a cooperative checkpoint inside
    interpreter execution (``in_execution``)."""
    if "paused at gate" in where:
        return "paused_at_gate"
    if "after batched native call" in where:
        return "late_batch_member"
    if "after native call" in where:
        return "late_native"
    if where in ("queue wait", "before native call"):
        return "queue_wait"
    return "in_execution"


@dataclass
class Frame:
    """One served frame: the outputs plus how and how fast they came.

    ``outputs`` maps output stage names to arrays leased from the
    service's buffer pool — call :meth:`release` (or use the frame as a
    context manager) once the data has been consumed so steady-state
    serving stays allocation-free.  An unreleased frame is safe, merely
    a pool miss for some later frame.
    """

    outputs: dict[str, np.ndarray]
    backend: str
    latency_s: float
    _pool: BufferPool | None = field(default=None, repr=False)
    _released: bool = field(default=False, repr=False)
    _timeline: Timeline | None = field(default=None, repr=False)

    def timeline(self) -> Timeline | None:
        """This frame's lifecycle :class:`~repro.observe.events.
        Timeline` — ``timeline().durations()`` decomposes the observed
        latency into queue_wait + batch_wait + execute stages that sum
        to total exactly."""
        return self._timeline

    def release(self) -> None:
        """Return the output buffers to the service's pool (idempotent).

        The arrays must not be touched afterwards — the next frame may
        already be writing into them.
        """
        if self._released or self._pool is None:
            return
        self._released = True
        arrays = {id(a): a for a in self.outputs.values()}
        self._pool.release(*arrays.values())

    def __enter__(self) -> "Frame":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of a service's counters, rates and latency distribution.

    ``submitted`` counts only *accepted* enqueues — a rejected
    submission increments ``rejected`` alone, so
    ``submitted == accepted`` and ``completed / submitted`` measures
    accepted throughput.  ``batches``/``batched_frames`` count coalesced
    native dispatches of two or more frames and the frames they carried;
    singleton dispatches contribute to neither.

    ``timeouts_by_reason`` splits the aggregate ``timeouts`` count by
    *where* each deadline died (``queue_wait``, ``paused_at_gate``,
    ``late_native``, ``late_batch_member``, ``in_execution``);
    ``stages`` carries per-stage latency summaries (count/mean/p50/p90/
    p99 in ms) derived from the service's histograms.  The snapshot
    round-trips through :meth:`to_dict`/:meth:`from_dict`, so shards can
    ship stats across process boundaries.
    """

    name: str
    backend: str
    submitted: int
    completed: int
    rejected: int
    timeouts: int
    failures: int
    cancelled: int
    native_frames: int
    interp_frames: int
    batches: int
    batched_frames: int
    fallbacks: dict[str, int]
    queue_depth: int
    inflight: int
    pool: dict
    latency: dict
    timeouts_by_reason: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)

    @property
    def accepted(self) -> int:
        # submitted is counted on successful enqueue only, so the two
        # are synonymous; kept for callers of the old name
        return self.submitted

    @property
    def rejection_rate(self) -> float:
        offered = self.submitted + self.rejected
        return self.rejected / offered if offered else 0.0

    @property
    def timeout_rate(self) -> float:
        return self.timeouts / self.accepted if self.accepted else 0.0

    @property
    def native_rate(self) -> float:
        return self.native_frames / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Mean frames per coalesced batch (0.0 while nothing batched)."""
        return self.batched_frames / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot; :meth:`from_dict` restores it."""
        return {
            "name": self.name, "backend": self.backend,
            "submitted": self.submitted, "completed": self.completed,
            "rejected": self.rejected, "timeouts": self.timeouts,
            "timeouts_by_reason": dict(self.timeouts_by_reason),
            "failures": self.failures, "cancelled": self.cancelled,
            "native_frames": self.native_frames,
            "interp_frames": self.interp_frames,
            "batches": self.batches,
            "batched_frames": self.batched_frames,
            "mean_batch_size": self.mean_batch_size,
            "fallbacks": dict(self.fallbacks),
            "queue_depth": self.queue_depth, "inflight": self.inflight,
            "rejection_rate": self.rejection_rate,
            "timeout_rate": self.timeout_rate,
            "native_rate": self.native_rate,
            "pool": dict(self.pool), "latency": dict(self.latency),
            "stages": {name: dict(summary)
                       for name, summary in self.stages.items()},
        }

    # legacy name, kept for existing callers
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceStats":
        """Rebuild a snapshot from :meth:`to_dict` output (derived rates
        are recomputed from the counters, extra keys are ignored)."""
        return cls(
            name=data["name"], backend=data["backend"],
            submitted=data["submitted"], completed=data["completed"],
            rejected=data["rejected"], timeouts=data["timeouts"],
            failures=data["failures"], cancelled=data["cancelled"],
            native_frames=data["native_frames"],
            interp_frames=data["interp_frames"],
            batches=data["batches"],
            batched_frames=data["batched_frames"],
            fallbacks=dict(data.get("fallbacks", {})),
            queue_depth=data["queue_depth"], inflight=data["inflight"],
            pool=dict(data.get("pool", {})),
            latency=dict(data.get("latency", {})),
            timeouts_by_reason=dict(data.get("timeouts_by_reason", {})),
            stages={name: dict(summary)
                    for name, summary in data.get("stages", {}).items()},
        )

    def render(self) -> str:
        """Human-readable multi-line report (``explain()``-style)."""
        fb = ", ".join(f"{k}={v}" for k, v in sorted(self.fallbacks.items())) \
            or "none"
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(self.timeouts_by_reason.items()))
        timeouts = f"{self.timeouts} deadline-exceeded"
        if reasons:
            timeouts += f" ({reasons})"
        lat = self.latency
        pool = self.pool
        lines = [
            f"service {self.name}: backend={self.backend}",
            f"  frames: {self.submitted} submitted, "
            f"{self.completed} completed "
            f"({self.native_frames} native / {self.interp_frames} interp), "
            f"{self.inflight} in flight, {self.queue_depth} queued",
            f"  degradations: {self.rejected} rejected "
            f"({self.rejection_rate * 100.0:.1f}%), "
            f"{timeouts}, {self.failures} failed, "
            f"{self.cancelled} cancelled; fallbacks: {fb}",
            f"  batching: {self.batched_frames} frames in "
            f"{self.batches} batches "
            f"(mean size {self.mean_batch_size:.1f})",
            f"  latency: p50 {lat.get('p50_ms', 0.0):.2f} ms, "
            f"p90 {lat.get('p90_ms', 0.0):.2f} ms, "
            f"p99 {lat.get('p99_ms', 0.0):.2f} ms "
            f"(n={lat.get('count', 0)})",
        ]
        if any(summary.get("count") for summary in self.stages.values()):
            lines.append("  stages (p50/p99 ms): " + ", ".join(
                f"{name} {self.stages[name]['p50_ms']:.2f}/"
                f"{self.stages[name]['p99_ms']:.2f}"
                for name in STAGES if name in self.stages))
        lines.append(
            f"  pool: {pool.get('hits', 0)} hits / "
            f"{pool.get('misses', 0)} misses "
            f"({pool.get('hit_rate', 0.0) * 100.0:.1f}%), "
            f"{pool.get('outstanding', 0)} leased, "
            f"{pool.get('idle', 0)} idle")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class _Request:
    """One queued frame submission."""

    __slots__ = ("params", "inputs", "deadline", "future", "timeline",
                 "submitted_at")

    def __init__(self, params, inputs, deadline, future, timeline):
        self.params = params
        self.inputs = inputs
        self.deadline = deadline
        self.future = future
        self.timeline = timeline
        self.submitted_at = time.monotonic()


class PipelineService:
    """A thread-based streaming execution service for one pipeline.

    Parameters
    ----------
    compiled:
        The :class:`~repro.api.CompiledPipeline` to serve (anything with
        ``.plan`` and ``.name`` works).
    workers:
        Consumer threads draining the submission queue.  Note native
        artifacts with scratch arenas serialize concurrent calls on a
        per-artifact lock (see
        :attr:`repro.codegen.build.NativePipeline.needs_call_lock`), so
        extra workers mainly overlap interpreter frames and queue
        management; use ``n_threads`` for intra-frame parallelism.
    max_queue:
        Submission queue capacity; a full queue rejects with
        :class:`Overloaded`.
    backend:
        ``"auto"`` (background native build, interpreter until ready),
        ``"interpreter"`` (never build), or ``"native"`` (like auto —
        still degrades gracefully if the build fails).
    default_deadline_s:
        Deadline applied to submissions that do not carry their own.
    pool:
        ``True`` (default) pools output/intermediate buffers per
        service; ``False`` allocates per frame.  A
        :class:`~repro.runtime.buffers.BufferPool` *instance* is used
        as-is — the process-backed worker tier injects a
        :class:`~repro.serve.shm.ShmBufferPool` here so outputs land
        directly in shared memory.
    max_batch:
        Upper bound on frames coalesced into one native batch call
        (``1`` disables coalescing).  The batching window is whatever
        the bounded queue already holds — no artificial delay is added.
    coalesce:
        ``False`` turns request coalescing off regardless of
        ``max_batch``; frames are then always dispatched one at a time.
    sample_rate:
        Fraction (0..1) of requests promoted to full cross-thread
        Chrome-trace async spans on the service tracer (deterministic:
        every ``round(1/rate)``-th request).  ``0`` (default) disables
        trace promotion; lifecycle events are captured regardless.
    event_capacity:
        Ring capacity of the service :class:`~repro.observe.events.
        EventLog` (older events are evicted).
    events_path:
        Optional JSON-lines file every lifecycle event is streamed to
        as it happens (the full history, beyond the bounded ring).
    event_log:
        Share an existing :class:`EventLog` instead of creating one
        (overrides ``event_capacity``/``events_path``).
    build_kwargs:
        Forwarded to :func:`repro.codegen.build.build_native`
        (``vectorize``, ``instrument``, ``cache_dir``, ...).
    """

    def __init__(self, compiled, *,
                 workers: int = 2,
                 max_queue: int = 64,
                 backend: str = "auto",
                 default_deadline_s: float | None = None,
                 n_threads: int = 1,
                 vectorize: bool = True,
                 pool: bool = True,
                 max_batch: int = 8,
                 coalesce: bool = True,
                 max_native_errors: int = 3,
                 sample_rate: float = 0.0,
                 event_capacity: int = 4096,
                 events_path: str | Path | None = None,
                 event_log: EventLog | None = None,
                 build_kwargs: Mapping | None = None,
                 name: str | None = None,
                 tracer: Tracer | None = None):
        if backend not in ("auto", "interpreter", "native"):
            raise ValueError(
                f"backend must be 'auto', 'interpreter' or 'native', "
                f"got {backend!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.plan = compiled.plan
        self.name = name or getattr(compiled, "name", "pipeline")
        self.backend_mode = backend
        self.default_deadline_s = default_deadline_s
        self._n_threads = n_threads
        self._vectorize = vectorize
        self._max_batch = max_batch
        self._coalesce = coalesce and max_batch > 1
        self._tracer = tracer if tracer is not None else get_tracer()
        self._pool = pool if isinstance(pool, BufferPool) \
            else (BufferPool() if pool else None)
        self._queue = BoundedQueue(max_queue)
        self._gate = threading.Event()  # cleared = paused
        self._gate.set()
        self._latency = LatencyWindow()

        # observability: event ring, per-stage histograms, sampling
        self._events = event_log if event_log is not None else EventLog(
            capacity=event_capacity, sink=events_path)
        self._metrics = MetricsRegistry()
        self._stage_hists = {
            stage: self._metrics.histogram(f"{stage}_seconds")
            for stage in STAGES}
        self._sample_every = round(1.0 / sample_rate) if sample_rate \
            else 0
        self._rid = itertools.count()
        self._timeout_reasons: dict[str, int] = {}
        self._metrics_server = None

        self._policy = FallbackPolicy(
            max_native_errors=max_native_errors,
            native_enabled=backend != "interpreter",
            on_transition=self._on_backend_transition)

        self._counts_lock = threading.Lock()
        self._counts = {
            "submitted": 0, "completed": 0, "rejected": 0,
            "timeouts": 0, "failures": 0, "cancelled": 0,
            "native_frames": 0, "interp_frames": 0, "inflight": 0,
            "batches": 0, "batched_frames": 0,
        }
        self._closed = False
        self._close_lock = threading.Lock()

        self._build_handle: _build.AsyncBuild | None = None
        if backend != "interpreter":
            # module attribute lookup on purpose — fault-injection tests
            # monkeypatch ``repro.codegen.build.build_native``
            self._build_handle = _build.build_native_async(
                self.plan, self.name, **dict(build_kwargs or {}))

        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-serve-{self.name}-{i}")
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- bookkeeping -------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        # the per-frame counters live in self._counts alone; they are
        # overlaid onto the metrics registry at scrape time
        # (_refresh_gauges) instead of double-booked on the hot path
        with self._counts_lock:
            self._counts[key] = self._counts.get(key, 0) + n
        self._tracer.count(f"serve.{self.name}.{key}", n)

    def _on_backend_transition(self, transition: str, fields: dict) -> None:
        """Mirror fallback state-machine transitions into the event log
        (as ``backend`` events) and the metrics registry."""
        self._events.append("backend", None, transition=transition,
                            **fields)
        self._metrics.count(f"backend_{transition}")

    def _fail_deadline(self, request: _Request,
                       exc: DeadlineExceeded) -> None:
        """Count (by reason), stamp and fail one deadline-dropped
        request; the request's timeline rides on the exception as
        ``exc.timeline`` so callers can still ask where the time went."""
        reason = _timeout_reason(exc.where)
        with self._counts_lock:
            self._counts["timeouts"] = self._counts.get("timeouts", 0) + 1
            self._timeout_reasons[reason] = \
                self._timeout_reasons.get(reason, 0) + 1
        self._tracer.count(f"serve.{self.name}.timeouts")
        timeline = request.timeline
        timeline.mark("dropped", reason=reason, where=exc.where)
        if timeline.sampled:
            self._tracer.async_end(f"serve.{self.name}.request",
                                   timeline.request_id, cat="serve",
                                   outcome="dropped", reason=reason)
        exc.timeline = timeline
        request.future.set_exception(exc)

    def _record_completion(self, request: _Request, backend: str,
                           latency: float) -> None:
        """Stamp completion and feed the per-stage histograms."""
        self._latency.record(latency)
        timeline = request.timeline
        timeline.mark("completed", backend=backend)
        durations = timeline.durations()
        for stage, hist in self._stage_hists.items():
            if stage in durations:
                hist.observe(durations[stage])
        if timeline.sampled:
            self._tracer.async_end(f"serve.{self.name}.request",
                                   timeline.request_id, cat="serve",
                                   outcome="completed", backend=backend)

    def _poll_build(self) -> None:
        """Fold a finished background build into the fallback policy."""
        handle = self._build_handle
        if handle is None or not handle.done():
            return
        exc = handle.exception()
        native = handle.result() if exc is None else None
        # the policy ingests the outcome exactly once even when several
        # workers race here, so the counter below cannot double-count
        reason = self._policy.note_build_resolved(native, exc)
        if reason is not None:
            self._count("fallbacks")  # mirrored detail in policy.fallbacks

    # -- submission --------------------------------------------------------
    def submit(self, param_values, inputs, *,
               deadline_s: float | None = None,
               deadline: Deadline | None = None) -> Future:
        """Enqueue one frame; returns a future resolving to a
        :class:`Frame`.

        Raises :class:`Overloaded` when the queue is full (the frame was
        *not* accepted) and :class:`ServiceClosed` after :meth:`close`.
        The future fails with :class:`DeadlineExceeded` on timeout or
        with the execution error on failure.
        """
        if deadline is None:
            seconds = deadline_s if deadline_s is not None \
                else self.default_deadline_s
            if seconds is not None:
                deadline = Deadline.after(seconds)
        rid = next(self._rid)
        sampled = bool(self._sample_every) \
            and rid % self._sample_every == 0
        timeline = Timeline(rid, self._events, sampled=sampled)
        future: Future = Future()
        request = _Request(dict(param_values), dict(inputs), deadline,
                           future, timeline)
        timeline.mark("submitted")
        if sampled:
            self._tracer.async_begin(f"serve.{self.name}.request", rid,
                                     cat="serve")
        # count submitted only once the queue has the request — a
        # rejected submission must inflate neither submitted nor the
        # completed/submitted throughput ratio
        try:
            self._queue.put(request)
        except (Overloaded, ServiceClosed) as exc:
            self._count("rejected")
            reason = "overloaded" if isinstance(exc, Overloaded) \
                else "closed"
            timeline.mark("rejected", reason=reason)
            if sampled:
                self._tracer.async_end(f"serve.{self.name}.request", rid,
                                       cat="serve", outcome="rejected")
            raise
        self._count("submitted")
        return future

    def run(self, param_values, inputs, *,
            deadline_s: float | None = None,
            timeout: float | None = None) -> Frame:
        """Blocking convenience: ``submit`` + ``result``."""
        return self.submit(param_values, inputs,
                           deadline_s=deadline_s).result(timeout)

    # -- worker loop -------------------------------------------------------
    def _worker_loop(self) -> None:
        self._tracer.name_thread()  # label in chrome://tracing exports
        while True:
            self._gate.wait()
            try:
                request = self._queue.get()
            except QueueClosed:
                return
            self._mark_dequeued(request)
            if not self._pass_gate(request):
                continue
            requests = [request] + self._coalesce_window(request)
            if len(requests) > 1:
                batch_id = requests[0].timeline.request_id
                for member in requests:
                    member.timeline.mark("coalesced", batch_id=batch_id,
                                         size=len(requests))
            self._count("inflight", len(requests))
            try:
                if len(requests) == 1:
                    self._handle(request)
                else:
                    self._handle_batch(requests)
            finally:
                self._count("inflight", -len(requests))

    def _mark_dequeued(self, request: _Request) -> None:
        request.timeline.mark("dequeued")
        if request.timeline.sampled:
            self._tracer.async_instant(
                f"serve.{self.name}.request",
                request.timeline.request_id, cat="serve", at="dequeued")

    def _pass_gate(self, request: _Request) -> bool:
        """Wait out a pause *without* letting the request's deadline burn
        silently.

        A worker can dequeue a frame and then find the service paused.
        Blocking on the bare gate here would strand an accepted frame
        whose deadline keeps ticking; instead the wait is bounded by the
        deadline, and an expired request fails promptly with
        :class:`DeadlineExceeded` so the caller learns within its budget.
        Returns False when the frame was failed (the worker moves on).
        """
        deadline = request.deadline
        if deadline is None:
            self._gate.wait()
            return True
        while not self._gate.wait(deadline.remaining()):
            if deadline.expired():
                if request.future.set_running_or_notify_cancel():
                    self._fail_deadline(request, DeadlineExceeded(
                        "paused at gate", -deadline.remaining()))
                else:
                    self._count("cancelled")
                    request.timeline.mark("dropped", reason="cancelled")
                return False
        # the gate reopened in time; _handle re-checks the deadline
        # before running ("queue wait"), covering the reopened-too-late
        # window as well
        return True

    # -- coalescing --------------------------------------------------------
    def _coalesce_window(self, request: _Request) -> list:
        """Pop queued requests batchable with ``request`` (maybe none).

        Coalescing only pays when the *native* batch entry point will
        serve the frames — interpreter batching would serialize frames
        that parallel workers could overlap — so the window stays shut
        until the policy is in the native state with a batch-capable
        artifact.
        """
        if not self._coalesce:
            return []
        self._poll_build()
        backend, native = self._policy.backend_for_frame()
        if backend != NATIVE or not getattr(native, "has_batch", False):
            return []
        taken = self._queue.take_while(
            lambda other: self._batchable(request, other),
            self._max_batch)
        for member in taken:
            self._mark_dequeued(member)
        return taken

    @staticmethod
    def _batchable(request: _Request, other: _Request) -> bool:
        """Same param values and same input shapes/dtypes?"""
        if other.params != request.params:
            return False
        if other.inputs.keys() != request.inputs.keys():
            return False
        for image, array in request.inputs.items():
            candidate = other.inputs[image]
            if np.shape(candidate) != np.shape(array):
                return False
            if (getattr(candidate, "dtype", None)
                    != getattr(array, "dtype", None)):
                return False
        return True

    def _handle_batch(self, requests: list) -> None:
        """Serve coalesced requests through one native batch call.

        Deadline semantics: members already expired fail before the
        call; the call itself cannot be interrupted, so on return each
        member's deadline is re-checked and *late members are dropped
        individually* — one slow batch never silently extends anyone's
        budget.  If the native call fails (or the window closed between
        take and dispatch), every claimed member is re-served through
        the ordinary single-frame path with its own fallback handling.
        """
        live = []
        for request in requests:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                self._count("cancelled")
                request.timeline.mark("dropped", reason="cancelled")
        ready = []
        for request in live:
            deadline = request.deadline
            if deadline is not None and deadline.expired():
                self._fail_deadline(request, DeadlineExceeded(
                    "queue wait", -deadline.remaining()))
            else:
                ready.append(request)
        if not ready:
            return
        self._poll_build()
        backend, native = self._policy.backend_for_frame()
        if (len(ready) == 1 or backend != NATIVE
                or not getattr(native, "has_batch", False)):
            for request in ready:
                self._execute(request)
            return
        for request in ready:
            request.timeline.mark("dispatched", backend=NATIVE,
                                  batch_size=len(ready))
        try:
            with self._tracer.span(f"serve.{self.name}.batch",
                                   cat="serve", n_frames=len(ready)):
                outputs_list = native.run_batch(
                    ready[0].params,
                    [request.inputs for request in ready],
                    n_threads=self._n_threads, tracer=self._tracer,
                    pool=self._pool)
            self._policy.note_native_ok()
        except Exception as exc:
            # crash-free native failure: re-serve each member alone so
            # a bad frame only sinks itself
            self._policy.note_native_error(exc)
            self._count("fallbacks")
            for request in ready:
                self._execute(request)
            return
        self._count("batches")
        self._count("batched_frames", len(ready))
        now = time.monotonic()
        done = 0
        for request, outputs in zip(ready, outputs_list):
            deadline = request.deadline
            if deadline is not None and deadline.expired():
                if self._pool is not None:
                    self._pool.release(
                        *{id(a): a for a in outputs.values()}.values())
                self._fail_deadline(request, DeadlineExceeded(
                    "after batched native call", -deadline.remaining()))
                continue
            latency = now - request.submitted_at
            self._record_completion(request, NATIVE, latency)
            done += 1
            request.future.set_result(
                Frame(outputs, NATIVE, latency, self._pool,
                      _timeline=request.timeline))
        if done:
            self._count("completed", done)
            self._count("native_frames", done)

    def _handle(self, request: _Request) -> None:
        if not request.future.set_running_or_notify_cancel():
            self._count("cancelled")
            request.timeline.mark("dropped", reason="cancelled")
            return
        self._execute(request)

    def _execute(self, request: _Request) -> None:
        """Run one claimed request (its future is already RUNNING)."""
        future = request.future
        deadline = request.deadline
        with self._tracer.span(f"serve.{self.name}.frame", cat="serve"):
            self._poll_build()
            backend, native = self._policy.backend_for_frame()
            try:
                if deadline is not None:
                    deadline.check("queue wait")
                request.timeline.mark("dispatched", backend=backend)
                if backend == NATIVE:
                    try:
                        outputs = self._run_native(native, request)
                        self._policy.note_native_ok()
                    except DeadlineExceeded:
                        raise
                    except Exception as exc:
                        # crash-free native failure: re-serve the frame
                        # with the interpreter
                        self._policy.note_native_error(exc)
                        self._count("fallbacks")
                        backend = INTERPRETER
                        request.timeline.mark("dispatched",
                                              backend=INTERPRETER,
                                              retry=True)
                        outputs = self._run_interp(request)
                else:
                    outputs = self._run_interp(request)
            except DeadlineExceeded as exc:
                self._fail_deadline(request, exc)
                return
            except Exception as exc:
                self._count("failures")
                request.timeline.mark(
                    "dropped", reason="error",
                    error=f"{type(exc).__name__}: {exc}")
                if request.timeline.sampled:
                    self._tracer.async_end(
                        f"serve.{self.name}.request",
                        request.timeline.request_id, cat="serve",
                        outcome="error")
                future.set_exception(exc)
                return
        latency = time.monotonic() - request.submitted_at
        self._record_completion(request, backend, latency)
        self._count("completed")
        self._count("native_frames" if backend == NATIVE
                    else "interp_frames")
        future.set_result(Frame(outputs, backend, latency, self._pool,
                                _timeline=request.timeline))

    def _run_native(self, native, request: _Request) -> dict:
        deadline = request.deadline
        if deadline is not None:
            deadline.check("before native call")
        outputs = native(request.params, request.inputs,
                         n_threads=self._n_threads, tracer=self._tracer,
                         pool=self._pool)
        if deadline is not None and deadline.expired():
            # the native call cannot be interrupted mid-flight; a late
            # frame is dropped and its buffers recycled immediately
            # (dedup by id — two outputs may alias one stage array)
            if self._pool is not None:
                self._pool.release(
                    *{id(a): a for a in outputs.values()}.values())
            raise DeadlineExceeded("after native call",
                                   -deadline.remaining())
        return outputs

    def _run_interp(self, request: _Request) -> dict:
        return execute_plan(self.plan, request.params, request.inputs,
                            vectorize=self._vectorize,
                            n_threads=self._n_threads,
                            tracer=self._tracer,
                            deadline=request.deadline,
                            out_pool=self._pool)

    # -- flow control ------------------------------------------------------
    def pause(self) -> None:
        """Stop starting new frames (submissions still queue up)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    @property
    def paused(self) -> bool:
        return not self._gate.is_set()

    # -- introspection -----------------------------------------------------
    @property
    def backend(self) -> str:
        """Current backend state: ``building``/``native``/``interpreter``."""
        self._poll_build()
        return self._policy.state

    def wait_ready(self, timeout: float | None = None) -> str:
        """Block until the background build resolves (ready or failed);
        returns the resulting backend state.  Interpreter-only services
        return immediately."""
        if self._build_handle is not None:
            self._build_handle.wait(timeout)
        return self.backend

    def build_provenance(self) -> dict | None:
        """How this service's native artifact was obtained, or ``None``
        while no native pipeline is resolved: compile seconds,
        compile-cache hit, artifact key, and whether the artifact was
        cold-started from the persistent schedule store
        (``loaded_from_store`` — no codegen, no C compiler run)."""
        self._poll_build()
        native = self._policy.native
        if native is None:
            return None
        info = getattr(native, "build_info", None)
        return {
            "key": info.key if info is not None else None,
            "compile_s": info.compile_s if info is not None else None,
            "cache_hit": info.cache_hit if info is not None else None,
            "loaded_from_store": getattr(native, "loaded_from_store",
                                         False),
        }

    @property
    def event_log(self) -> EventLog:
        """The service's lifecycle :class:`EventLog` ring."""
        return self._events

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's :class:`MetricsRegistry` (counters + stage
        histograms), refreshed from the hot-path counters on access;
        rendered by :meth:`serve_metrics`."""
        self._refresh_gauges()
        return self._metrics

    def events(self, request_id=None, kind: str | None = None) -> list:
        """Filtered snapshot of the event ring (see
        :meth:`EventLog.events`)."""
        return self._events.events(request_id=request_id, kind=kind)

    def _refresh_gauges(self) -> None:
        """Sync hot-path counters and instantaneous state into the
        metrics registry.  The per-frame counters are kept in
        ``self._counts`` alone (one lock on the serving path) and
        mirrored here, at scrape/access time — idempotent via
        ``set_counter``, so repeated scrapes never double-count."""
        metrics = self._metrics
        with self._counts_lock:
            counts = dict(self._counts)
            reasons = dict(self._timeout_reasons)
        inflight = counts.pop("inflight", 0)
        for key, value in counts.items():
            metrics.set_counter(key, value)
        for reason, value in reasons.items():
            metrics.set_counter(f"timeouts_{reason}", value)
        metrics.gauge("queue_depth", float(len(self._queue)))
        metrics.gauge("queue_max_depth", float(self._queue.max_depth))
        metrics.gauge("inflight", float(inflight))
        metrics.gauge("paused", 0.0 if self._gate.is_set() else 1.0)
        state = self._policy.state
        for candidate in (BUILDING, NATIVE, INTERPRETER):
            metrics.gauge(f"backend_is_{candidate}",
                          1.0 if state == candidate else 0.0)
        if self._pool is not None:
            pool = self._pool.stats()
            for key in ("hits", "misses", "outstanding", "idle"):
                metrics.gauge(f"pool_{key}", float(pool.get(key, 0)))

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1"):
        """Start (or return the already-running) stdlib HTTP endpoint
        exposing this service's metrics in Prometheus text format.

        ``port=0`` picks an ephemeral port — read it back from the
        returned server's ``.port``/``.url``.  The server runs on a
        daemon thread and is shut down by :meth:`close`.
        """
        if self._metrics_server is None:
            from repro.observe.export import MetricsServer

            def render() -> str:
                self._poll_build()
                self._refresh_gauges()
                return self._metrics.expose_text(prefix="repro_serve_")

            self._metrics_server = MetricsServer(render, host=host,
                                                 port=port)
        return self._metrics_server

    def stats(self) -> ServiceStats:
        """Snapshot counters, rates, latency percentiles and pool state."""
        self._poll_build()
        with self._counts_lock:
            counts = dict(self._counts)
            reasons = dict(self._timeout_reasons)
        stages = {}
        for stage in STAGES:
            summary = self._stage_hists[stage].summary()
            stages[stage] = {
                "count": summary["count"],
                "mean_ms": summary["mean"] * 1000.0,
                "p50_ms": summary["p50"] * 1000.0,
                "p90_ms": summary["p90"] * 1000.0,
                "p99_ms": summary["p99"] * 1000.0,
            }
        return ServiceStats(
            name=self.name,
            backend=self._policy.state,
            submitted=counts["submitted"],
            completed=counts["completed"],
            rejected=counts["rejected"],
            timeouts=counts["timeouts"],
            failures=counts["failures"],
            cancelled=counts["cancelled"],
            native_frames=counts["native_frames"],
            interp_frames=counts["interp_frames"],
            batches=counts["batches"],
            batched_frames=counts["batched_frames"],
            fallbacks=self._policy.fallbacks(),
            queue_depth=len(self._queue),
            inflight=counts["inflight"],
            pool=self._pool.stats() if self._pool is not None else {},
            latency=self._latency.snapshot(),
            timeouts_by_reason=reasons,
            stages=stages,
        )

    # -- resource management ----------------------------------------------
    def release(self) -> None:
        """Drop idle pooled buffers and the native scratch arenas.

        Safe to call at any time, including under traffic: in-flight
        frames keep their leased arrays, the pool merely re-allocates on
        the next acquire, and the native arena re-grows on the next
        call.
        """
        if self._pool is not None:
            self._pool.drain()
        native = self._policy.native
        if native is not None and hasattr(native, "release"):
            native.release()

    def close(self, drain: bool = True,
              timeout: float | None = None) -> None:
        """Shut down: reject new submissions, then stop the workers.

        ``drain=True`` finishes every accepted frame first;
        ``drain=False`` cancels the queued backlog (their futures are
        cancelled).  Idempotent; in-flight frames always complete.
        """
        with self._close_lock:
            already = self._closed
            self._closed = True
        abandoned = self._queue.close(drain=drain)
        self._gate.set()  # wake paused workers so they can exit
        for request in abandoned:
            if request.future.cancel():
                self._count("cancelled")
        if not already:
            for worker in self._workers:
                worker.join(timeout)
            if self._metrics_server is not None:
                self._metrics_server.close()
            self._events.close()

    @property
    def closed(self) -> bool:
        return self._queue.closed

    def __enter__(self) -> "PipelineService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"PipelineService({self.name!r}, backend={self.backend}, "
                f"queue={len(self._queue)}/{self._queue.maxsize})")
