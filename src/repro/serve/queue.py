"""Bounded submission queue with explicit backpressure.

The service's ingress: a fixed-capacity FIFO whose ``put`` *never
blocks and never grows the backlog unboundedly* — a full queue rejects
the submission with :class:`Overloaded` immediately, pushing backpressure
to the caller instead of hiding it in latency.  Consumers block in
``get``; :meth:`close` wakes them all, lets them drain what was already
accepted (or hands the backlog back for cancellation with
``drain=False``), and makes further ``put`` calls raise
:class:`ServiceClosed`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable, TypeVar

T = TypeVar("T")


class Overloaded(RuntimeError):
    """The submission queue is full; the request was rejected.

    Explicit load shedding: the caller should back off, retry later, or
    route the frame elsewhere.  Nothing was enqueued.
    """


class ServiceClosed(RuntimeError):
    """The service is shut down (or shutting down); no new submissions."""


class QueueClosed(Exception):
    """Internal: raised to consumers when the queue is closed and drained."""


class BoundedQueue:
    """Fixed-capacity FIFO: non-blocking rejecting ``put``, blocking ``get``.

    Thread-safe for any number of producers and consumers.  ``maxsize``
    must be positive — an unbounded service queue is exactly the failure
    mode this class exists to prevent.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._max_depth = 0

    def put(self, item: T) -> None:
        """Enqueue or reject; never blocks.

        Raises :class:`Overloaded` when full, :class:`ServiceClosed`
        after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("queue is closed")
            if len(self._items) >= self.maxsize:
                raise Overloaded(
                    f"queue full ({self.maxsize} pending)")
            self._items.append(item)
            if len(self._items) > self._max_depth:
                self._max_depth = len(self._items)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> T:
        """Dequeue the oldest item, blocking while empty.

        Raises :class:`QueueClosed` once the queue is closed *and*
        drained, and :class:`TimeoutError` if ``timeout`` elapses first.

        ``timeout`` is a budget for the whole call: the expiry is
        computed once and every ``Condition.wait`` gets only the
        *remaining* time, so a spurious wakeup — or a notify consumed by
        a faster sibling consumer — cannot restart the clock and stall
        the caller past its budget.
        """
        expiry = (None if timeout is None
                  else time.monotonic() + timeout)
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed
                if expiry is None:
                    self._not_empty.wait()
                    continue
                remaining = expiry - time.monotonic()
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    raise TimeoutError("queue.get timed out")
            return self._items.popleft()

    def take_while(self, pred, max_n: int) -> list:
        """Pop up to ``max_n - 1`` additional head items matching ``pred``.

        The coalescing window: called by a worker that already holds one
        request, it atomically pops consecutive head items for which
        ``pred(item)`` is true, stopping at the first mismatch (FIFO
        order is preserved — nothing behind a non-matching item is
        taken).  Never blocks; returns ``[]`` when the queue is empty or
        the head does not match.
        """
        taken: list = []
        with self._lock:
            while (len(taken) < max_n - 1 and self._items
                   and pred(self._items[0])):
                taken.append(self._items.popleft())
        return taken

    def close(self, drain: bool = True) -> list:
        """Stop accepting submissions and wake all blocked consumers.

        ``drain=True`` (the default) leaves accepted items in place for
        consumers to finish; ``drain=False`` empties the queue and
        returns the abandoned items so the caller can fail their futures.
        Idempotent.
        """
        with self._lock:
            self._closed = True
            abandoned: list = []
            if not drain:
                abandoned = list(self._items)
                self._items.clear()
            self._not_empty.notify_all()
            return abandoned

    @property
    def max_depth(self) -> int:
        """High-watermark of queued items since construction — the
        backlog-pressure signal (alongside instantaneous ``len``) the
        observability layer exposes as a gauge."""
        with self._lock:
            return self._max_depth

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
