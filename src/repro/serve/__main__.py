"""Serving demo: stream frames through a PipelineService from the CLI.

Usage::

    python -m repro.serve [--app harris] [--scale small] [--frames 32]
        [--clients 2] [--workers 0] [--service-threads 2]
        [--deadline-ms 0] [--backend auto] [--threads 1]

Compiles the chosen benchmark app, starts a service (background native
build when a C compiler is present), pushes ``--frames`` frames from
``--clients`` concurrent client threads, and prints the service's stats
report — backend transitions, rejection/timeout counts, latency
percentiles and buffer-pool hit rate.

``--workers N`` (N ≥ 1) serves through the process-sharded tier
instead — N spawn-mode worker processes behind the shared-memory
router — and prints each shard's stats followed by the merged view.
``--workers 0`` (the default) keeps the in-process thread service.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro import compile_pipeline
from repro.bench.harness import APP_BUILDERS, DEFAULT_TILES, make_instance
from repro.compiler.options import CompileOptions
from repro.serve import Overloaded, PipelineService, ShardedService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n")[0])
    parser.add_argument("--app", default="harris",
                        choices=sorted(APP_BUILDERS))
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--frames", type=int, default=32,
                        help="total frames to submit (default 32)")
    parser.add_argument("--clients", type=int, default=2,
                        help="concurrent client threads (default 2)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes; 0 = in-process thread "
                             "service (default)")
    parser.add_argument("--service-threads", type=int, default=2,
                        help="consumer threads per service/shard "
                             "(default 2)")
    parser.add_argument("--threads", type=int, default=1,
                        help="execution threads per frame (default 1)")
    parser.add_argument("--deadline-ms", type=float, default=0.0,
                        help="per-frame deadline; 0 disables (default)")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "interpreter", "native"))
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--store", default=None, choices=("ro", "rw"),
                        help="consult the persistent schedule store "
                             "during the native build (rw also "
                             "publishes)")
    parser.add_argument("--store-root", default=None,
                        help="schedule store directory (default: "
                             "<cache root>/schedules)")
    args = parser.parse_args(argv)

    instance = make_instance(args.app, args.scale)
    options = CompileOptions.optimized(DEFAULT_TILES[args.app])
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name=args.app)
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
    tier = f"{args.workers} worker processes" if args.workers \
        else "thread service"
    print(f"serving {args.app} at {args.scale} scale "
          f"({args.clients} clients x {args.frames} frames, "
          f"backend={args.backend}, {tier})")

    per_client = max(1, args.frames // args.clients)
    errors: list[str] = []

    build_kwargs = {}
    if args.store:
        build_kwargs["store"] = args.store
    if args.store_root:
        build_kwargs["store_root"] = args.store_root

    if args.workers:
        service = ShardedService(
            compiled, workers=args.workers, max_queue=args.max_queue,
            backend=args.backend, default_deadline_s=deadline_s,
            n_threads=args.threads,
            inner_workers=args.service_threads,
            build_kwargs=build_kwargs or None)
    else:
        service = PipelineService(
            compiled, workers=args.service_threads,
            max_queue=args.max_queue, backend=args.backend,
            default_deadline_s=deadline_s, n_threads=args.threads,
            build_kwargs=build_kwargs or None)

    with service:

        def client(k: int) -> None:
            for i in range(per_client):
                try:
                    future = service.submit(instance.values,
                                            instance.inputs)
                except Overloaded:
                    continue  # counted by the service as a rejection
                try:
                    with future.result() as frame:
                        _ = frame.outputs  # consume, then recycle
                except Exception as exc:  # timeouts land here too
                    errors.append(f"client {k} frame {i}: "
                                  f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(args.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if args.workers:
            for index, stats in service.shard_stats().items():
                print(f"--- shard {index} ---")
                print(stats.render())
            print("--- merged ---")
        print(service.stats().render())

    if errors:
        shown = "\n  ".join(errors[:5])
        print(f"{len(errors)} frame error(s):\n  {shown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
