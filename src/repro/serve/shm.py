"""Shared-memory frame transport: slab allocator, views, leak control.

The process-backed serving tier (:mod:`repro.serve.router` /
:mod:`repro.serve.worker`) moves pixel data between the router process
and its worker processes through POSIX shared memory — *never* through
a pipe or a pickle.  This module is the transport layer both sides
share:

* :class:`SlabAllocator` — carves fixed-size, power-of-two *slots* out
  of a small number of ``multiprocessing.shared_memory`` segments
  ("slabs").  Slots are recycled through per-size-class free lists, so
  steady-state serving creates no new segments.  Every slot carries a
  **generation tag** that is bumped on free: a header referencing a
  recycled slot carries a stale generation and is rejected instead of
  silently aliasing a live frame.
* :class:`SlotLease` — one allocated slot; :meth:`SlotLease.ndarray`
  maps it as a zero-copy numpy view, :meth:`SlotLease.header` packs the
  picklable description (segment name, offset, generation, shape,
  dtype) that crosses the command pipe — a few dozen bytes regardless
  of frame size.
* :class:`SegmentMap` — the receiving side: attaches segments lazily by
  name and turns headers back into numpy views over the *same* physical
  pages.
* :class:`ShmBufferPool` — a drop-in :class:`~repro.runtime.buffers.
  BufferPool` whose arrays live in shared memory, so a worker's
  interpreter *and* native backend write outputs straight into pages
  the router can hand to clients.  :meth:`ShmBufferPool.export`
  transfers slot ownership out of the pool when a frame's outputs are
  shipped (the slots stay leased until the router sends a ``free``).

Cleanup discipline: Python's ``resource_tracker`` registers every
``SharedMemory`` open (create *and* attach) and would unlink segments
out from under sibling processes when any one of them exits — so this
module unregisters every handle immediately and makes segment lifetime
an explicit contract: **the router owns every unlink**.  Workers never
unlink; segment names embed a service token so the router (and the
tests' leak checker) can enumerate and reap every segment of a service,
including those of a worker that died mid-frame (see
:func:`live_segments` / :func:`unlink_segments`).
"""

from __future__ import annotations

import itertools
import os
import threading
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.runtime.buffers import BufferPool

#: every segment name starts with this, followed by the service token
SEGMENT_PREFIX = "reproshm"

#: smallest slot size class (bytes); tiny frames round up to this
MIN_SLOT_BYTES = 4096

#: target slab size — small slots share a slab, huge slots get their own
MIN_SLAB_BYTES = 1 << 20

_token_counter = itertools.count()


def new_token() -> str:
    """A service-unique token embedded in every segment name, so one
    service's segments can be enumerated and reaped without touching a
    concurrent service's."""
    return f"{os.getpid():x}x{next(_token_counter)}"


def _untrack(name: str) -> None:
    """Remove ``name`` from this process's resource tracker.

    Registration happens inside ``SharedMemory.__init__`` for creates
    *and* attaches (bpo-39959); left in place, the first worker to exit
    would unlink segments the router still serves from.  Ownership is
    explicit instead: the router unlinks, everyone else just closes.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister("/" + name.lstrip("/"),
                                    "shared_memory")
    except Exception:  # noqa: BLE001 - tracker quirks must not break serving
        pass


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create an untracked shared-memory segment (owner must unlink)."""
    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(name)
    return seg


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name, untracked."""
    seg = shared_memory.SharedMemory(name=name)
    _untrack(name)
    return seg


def shm_dir() -> Path | None:
    """The tmpfs directory POSIX shm segments appear in (Linux)."""
    path = Path("/dev/shm")
    return path if path.is_dir() else None


def _unlink_quiet(seg: shared_memory.SharedMemory) -> None:
    """Unlink a segment without touching the resource tracker.

    ``SharedMemory.unlink`` unregisters the name a second time (this
    module already unregistered it at create/attach), which makes the
    tracker process print a KeyError at exit — so on Linux the name is
    removed straight from the shm filesystem instead.
    """
    root = shm_dir()
    if root is not None:
        try:
            (root / seg.name.lstrip("/")).unlink()
        except OSError:
            pass
        return
    try:
        seg.unlink()
    except OSError:
        pass


def live_segments(token: str) -> list[str]:
    """Names of this service's segments still present in ``/dev/shm`` —
    the leak checker: after ``close()`` this must be empty."""
    root = shm_dir()
    if root is None:
        return []
    prefix = f"{SEGMENT_PREFIX}-{token}-"
    return sorted(p.name for p in root.iterdir()
                  if p.name.startswith(prefix))


def unlink_segments(token: str, role: str | None = None) -> int:
    """Force-unlink segments by token (optionally one worker's ``role``).

    The router's reaper for segments whose creator can no longer unlink
    them — a worker killed mid-frame, or output slabs the worker never
    got to announce.  Already-attached views stay valid (POSIX unlink
    removes the name, not the mapping).  Returns how many were removed.
    """
    root = shm_dir()
    if root is None:
        return 0
    prefix = f"{SEGMENT_PREFIX}-{token}-"
    if role is not None:
        prefix += f"{role}-"
    removed = 0
    for path in list(root.iterdir()):
        if not path.name.startswith(prefix):
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def _size_class(nbytes: int) -> int:
    """Round a request up to its power-of-two slot class."""
    size = MIN_SLOT_BYTES
    while size < nbytes:
        size <<= 1
    return size


class StaleSlot(RuntimeError):
    """A header referenced a slot generation that has been recycled."""


class SlotLease:
    """One allocated slot: location, generation, and zero-copy views."""

    __slots__ = ("segment", "offset", "nbytes", "gen", "_buf")

    def __init__(self, segment: str, offset: int, nbytes: int, gen: int,
                 buf: memoryview):
        self.segment = segment
        self.offset = offset
        self.nbytes = nbytes
        self.gen = gen
        self._buf = buf

    @property
    def key(self) -> tuple[str, int]:
        """Stable identity of the slot (segment name, byte offset)."""
        return (self.segment, self.offset)

    def ndarray(self, shape: Sequence[int], dtype) -> np.ndarray:
        """A C-contiguous numpy view over the slot's pages (no copy)."""
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=self._buf, offset=self.offset)

    def header(self, shape: Sequence[int], dtype) -> tuple:
        """The picklable frame header: everything a peer process needs
        to map this slot — and nothing else.  Pixel data never rides
        along."""
        return (self.segment, self.offset, self.gen,
                tuple(int(n) for n in shape), np.dtype(dtype).str)

    def __repr__(self) -> str:
        return (f"SlotLease({self.segment}+{self.offset}, "
                f"{self.nbytes}B, gen={self.gen})")


class SlabAllocator:
    """Generation-tagged slot allocator over shared-memory slabs.

    One instance per owning process per direction (the router owns the
    input slabs, each worker owns its output slabs).  ``role`` becomes
    part of every segment name, so the router can reap one dead worker's
    slabs without touching its replacement's.

    ``on_segment`` (optional) is called — outside the lock — with
    ``(name, size)`` the moment a new slab is created, *before* any slot
    from it is handed out; workers use it to announce slabs over the
    command pipe so the router knows every name it may need to reap.
    """

    def __init__(self, token: str, role: str, *,
                 min_slab_bytes: int = MIN_SLAB_BYTES,
                 on_segment=None):
        self.token = token
        self.role = role
        self._min_slab = min_slab_bytes
        self._on_segment = on_segment
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        #: size class -> free (segment, offset) keys
        self._free: dict[int, list[tuple[str, int]]] = {}
        #: (segment, offset) -> [class_bytes, generation, leased?]
        self._slots: dict[tuple[str, int], list] = {}
        self._serial = itertools.count()
        self._hits = 0
        self._misses = 0
        self._leased = 0
        self._stale_frees = 0
        self._closed = False

    # -- allocation --------------------------------------------------------
    def alloc(self, nbytes: int) -> SlotLease:
        """Lease one slot big enough for ``nbytes`` (recycled if
        possible, from a freshly created slab otherwise)."""
        cls = _size_class(int(nbytes))
        created = None
        with self._lock:
            if self._closed:
                raise RuntimeError("allocator is closed")
            free = self._free.get(cls)
            if free:
                key = free.pop()
                self._hits += 1
            else:
                key, created = self._grow(cls)
                self._misses += 1
            slot = self._slots[key]
            slot[2] = True
            self._leased += 1
            lease = SlotLease(key[0], key[1], cls, slot[1],
                              self._segments[key[0]].buf)
        if created is not None and self._on_segment is not None:
            self._on_segment(*created)
        return lease

    def _grow(self, cls: int) -> tuple[tuple[str, int], tuple[str, int]]:
        """Create one new slab for size class ``cls`` (lock held);
        returns (key of the slot to lease now, (name, size) created)."""
        per_slab = max(1, self._min_slab // cls)
        size = cls * per_slab
        name = (f"{SEGMENT_PREFIX}-{self.token}-{self.role}-"
                f"{next(self._serial)}")
        seg = create_segment(name, size)
        self._segments[name] = seg
        free = self._free.setdefault(cls, [])
        for i in range(per_slab):
            key = (name, i * cls)
            self._slots[key] = [cls, 0, False]
            if i:  # slot 0 is leased to the caller
                free.append(key)
        return (name, 0), (name, size)

    def free(self, key: tuple[str, int], gen: int) -> bool:
        """Return a slot to its free list if ``gen`` is current.

        Bumps the slot's generation, so any header still referencing the
        old lease is detectably stale.  A mismatched generation (double
        free, or a free echoed after a respawn) is counted and ignored —
        the slot it names is already serving someone else.
        """
        key = (key[0], int(key[1]))
        with self._lock:
            slot = self._slots.get(key)
            if slot is None or not slot[2] or slot[1] != gen:
                self._stale_frees += 1
                return False
            slot[1] += 1
            slot[2] = False
            self._leased -= 1
            self._free.setdefault(slot[0], []).append(key)
            return True

    def check_current(self, key: tuple[str, int], gen: int) -> None:
        """Raise :class:`StaleSlot` unless ``gen`` is the slot's live
        lease — the aliasing guard receivers can apply to headers."""
        with self._lock:
            slot = self._slots.get((key[0], int(key[1])))
            if slot is None or not slot[2] or slot[1] != gen:
                raise StaleSlot(
                    f"slot {key} gen {gen} is not the live lease")

    # -- introspection -----------------------------------------------------
    def segment_names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def stats(self) -> dict:
        with self._lock:
            return {
                "segments": len(self._segments),
                "slab_bytes": sum(s.size
                                  for s in self._segments.values()),
                "slots": len(self._slots),
                "leased": self._leased,
                "hits": self._hits,
                "misses": self._misses,
                "stale_frees": self._stale_frees,
            }

    # -- teardown ----------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Close (and for the owner, unlink) every slab.  Idempotent.

        ``close`` on a segment whose pages are still exported as numpy
        views raises ``BufferError``; those handles are left for the
        garbage collector — the *name* is removed regardless, which is
        what the no-leaked-segments contract is about.
        """
        with self._lock:
            self._closed = True
            segments = list(self._segments.values())
            self._segments = {}
            self._free = {}
            self._slots = {}
        for seg in segments:
            if unlink:
                _unlink_quiet(seg)
            try:
                seg.close()
            except BufferError:
                pass  # a live view pins the mapping; GC finishes the job


class SegmentMap:
    """Receiver-side view builder: headers in, zero-copy arrays out.

    Attaches segments lazily by name and caches the handles.  The
    arrays returned by :meth:`view` share pages with the sender —
    nothing is copied, which is the entire point.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def attach(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                seg = self._segments[name] = attach_segment(name)
            return seg

    def view(self, header: tuple) -> np.ndarray:
        """Map a :meth:`SlotLease.header` as a numpy array (no copy)."""
        segment, offset, _gen, shape, dtype = header
        seg = self.attach(segment)
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=seg.buf, offset=offset)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def contains(self, array: np.ndarray) -> bool:
        """Does ``array``'s memory live inside an attached segment?
        (The zero-copy regression tests' ground truth.)"""
        addr = array.__array_interface__["data"][0]
        end = addr + array.nbytes
        with self._lock:
            segments = list(self._segments.values())
        for seg in segments:
            base = np.frombuffer(seg.buf, dtype=np.uint8)
            start = base.__array_interface__["data"][0]
            if start <= addr and end <= start + seg.size:
                return True
        return False

    def close(self) -> None:
        """Drop every attachment (views already handed out keep their
        pages alive; handles that still have exported views are left to
        the garbage collector)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments = {}
        for seg in segments:
            try:
                seg.close()
            except BufferError:
                pass


class ShmBufferPool(BufferPool):
    """A :class:`BufferPool` whose arrays are shared-memory slot views.

    Drop-in for the serving hot paths (``execute_plan(out_pool=...)``
    and ``NativePipeline(..., pool=...)`` both just call ``acquire`` /
    ``release``), so a worker's outputs and interpreter intermediates
    land directly in pages the router can map.  Ownership of a frame's
    output slots is transferred out of the pool with :meth:`export`
    when the frame ships; the slots return via :meth:`free_slot` when
    the router forwards the client's ``Frame.release()``.
    """

    def __init__(self, allocator: SlabAllocator):
        super().__init__()
        self.allocator = allocator
        #: id(array) -> (lease, array) for arrays currently pool-managed
        self._live: dict[int, tuple[SlotLease, np.ndarray]] = {}

    def acquire(self, shape: Sequence[int], dtype,
                fill: float | int = 0) -> np.ndarray:
        shape = tuple(int(n) for n in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize \
            if shape else dt.itemsize
        lease = self.allocator.alloc(max(nbytes, 1))
        array = lease.ndarray(shape, dt)
        array.fill(fill)
        with self._lock:
            self._live[id(array)] = (lease, array)
            self._outstanding += 1
            # hit/miss bookkeeping mirrors the slab reuse, so the
            # service's pool stats keep meaning "allocated nothing new"
            stats = self.allocator.stats()
            self._hits = stats["hits"]
            self._misses = stats["misses"]
        return array

    def release(self, *arrays: np.ndarray) -> None:
        with self._lock:
            leases = [self._live.pop(id(a))[0] for a in arrays
                      if id(a) in self._live]
            self._outstanding -= len(leases)
        for lease in leases:
            self.allocator.free(lease.key, lease.gen)

    def export(self, arrays: Iterable[np.ndarray]
               ) -> dict[int, SlotLease]:
        """Take ownership of these arrays' slots out of the pool.

        Returns ``id(array) -> lease`` (deduplicated — aliased outputs
        share a lease).  The slots remain leased in the allocator until
        :meth:`free_slot` is called for each.
        """
        leases: dict[int, SlotLease] = {}
        with self._lock:
            for array in arrays:
                entry = self._live.pop(id(array), None)
                if entry is not None:
                    leases[id(array)] = entry[0]
                    self._outstanding -= 1
        return leases

    def free_slot(self, key: tuple[str, int], gen: int) -> bool:
        """Return an exported slot to the allocator (gen-checked)."""
        return self.allocator.free(key, gen)

    def stats(self) -> dict:
        base = super().stats()
        base["shm"] = self.allocator.stats()
        return base

    def drain(self) -> int:
        # idle slab slots live in the allocator's free lists; there is
        # nothing numpy-side to drop
        return 0
