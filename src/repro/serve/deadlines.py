"""Per-request deadlines, enforced cooperatively.

A :class:`Deadline` is a wall-clock budget attached to one frame.  The
interpreter backend consults it at every group boundary, between the
stages of untiled groups, and at the start of every tile
(:func:`repro.runtime.executor.execute_plan` duck-types on ``check``);
the native backend cannot be interrupted mid-call, so the service checks
the clock immediately before and after each native invocation — a frame
that finishes past its deadline is *dropped* (late results are failures
in a deadline-driven serving contract), its buffers recycled.

``check`` raises :class:`DeadlineExceeded` carrying where execution was
abandoned and by how much the budget was overrun, so timeout diagnostics
point at the slow group/tile rather than just "timed out".
"""

from __future__ import annotations

import time


class DeadlineExceeded(RuntimeError):
    """A frame ran past its deadline and was abandoned.

    ``where`` names the checkpoint that observed the overrun (a group,
    stage, tile, or native-call boundary); ``overrun_s`` is how far past
    the deadline the clock already was.
    """

    def __init__(self, where: str = "", overrun_s: float = 0.0):
        self.where = where
        self.overrun_s = overrun_s
        detail = f" at {where}" if where else ""
        super().__init__(
            f"deadline exceeded{detail} "
            f"(overrun {overrun_s * 1000.0:.1f} ms)")


class Deadline:
    """An absolute point on the monotonic clock a frame must beat."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (monotonic clock)."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left until expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        This is the cooperative checkpoint the executors call at tile
        and group boundaries; it costs one clock read when the deadline
        still holds.
        """
        overrun = time.monotonic() - self.expires_at
        if overrun >= 0.0:
            raise DeadlineExceeded(where, overrun)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining() * 1000.0:.1f}ms)"
