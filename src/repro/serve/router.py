"""The sharded serving front door: route frames to worker processes.

:class:`ShardedService` exposes the same ``submit()``/``Frame`` contract
as the thread-based :class:`~repro.serve.service.PipelineService`, but
executes frames in a fleet of spawn-mode worker processes
(:mod:`repro.serve.worker`), so the interpreter fallback escapes the
GIL and native calls in different shards never serialize on a
per-artifact lock.  The router owns:

* **Admission** — a bounded count of in-flight frames across all
  shards; past it, ``submit`` rejects with
  :class:`~repro.serve.queue.Overloaded` (no hidden backlog).
* **Placement** — least-outstanding-work across live shards, with a
  *sticky* override: frames sharing a batch key (same parameter values,
  same input shapes/dtypes) chase the shard the last such frame went
  to, so the workers' coalescing windows still form under concurrent
  same-shape load.
* **Transport** — inputs are staged once into router-owned shared-
  memory slabs (zero-copy when the caller fills a
  :meth:`ShardedService.lease_input` array directly); outputs come back
  as headers and are mapped as zero-copy views over the worker's
  slabs.  Pixels never cross the command pipe (:mod:`repro.serve.shm`).
* **Fault handling** — a receiver thread per shard notices a broken
  pipe, reaps the dead worker's segments by name prefix, respawns a
  replacement under a bumped generation, and *requeues* that shard's
  in-flight frames onto live shards (inputs are router-owned, so no
  pixel is re-copied); frames out of retries fail with
  :class:`WorkerCrashed`.  Nothing ever hangs a ``Frame.result()``.
* **Scaling** — an optional autoscaler grows the fleet when outstanding
  work per shard (or the client-observed p99) stays above a high
  watermark, and retires idle shards below a low watermark, with
  consecutive-interval hysteresis in both directions
  (:class:`AutoscaleConfig`).
* **Observability** — :meth:`ShardedService.stats` merges per-worker
  :class:`~repro.serve.service.ServiceStats` (histograms bucket-exact
  via :meth:`~repro.observe.metrics.Histogram.merge`);
  :meth:`serve_metrics` renders one validated Prometheus exposition
  with a ``shard`` label per worker series.  Worker-side timeline marks
  are grafted back onto each frame's router timeline as ``worker_*``
  events.

See ``docs/internals.md`` §20 for the slab layout, the router state
machine and the autoscaler signals.
"""

from __future__ import annotations

import dataclasses
import itertools
import pickle
import threading
import time
from concurrent.futures import Future
from multiprocessing import get_context
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.observe.events import EventLog, Timeline
from repro.observe.metrics import Histogram, LatencyWindow, MetricsRegistry
from repro.serve.deadlines import Deadline, DeadlineExceeded
from repro.serve.fallback import BUILDING, INTERPRETER, NATIVE
from repro.serve.queue import Overloaded, ServiceClosed
from repro.serve.service import STAGES, Frame, ServiceStats, _timeout_reason
from repro.serve.shm import (
    SegmentMap, ShmBufferPool, SlabAllocator, live_segments, new_token,
    unlink_segments,
)
from repro.serve.worker import DEFAULT_INNER_WORKERS, WorkerHandle


class WorkerCrashed(RuntimeError):
    """A frame's worker died and the frame was out of requeue budget."""

    def __init__(self, shard: int, pid: int | None, detail: str = ""):
        self.shard = shard
        self.pid = pid
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"worker shard {shard} (pid {pid}) died mid-frame{extra}")


@dataclasses.dataclass
class AutoscaleConfig:
    """Watermark autoscaler knobs (see the module docstring).

    ``high_watermark``/``low_watermark`` are outstanding frames *per
    live shard*; ``p99_high_ms`` optionally also triggers scale-up from
    the router's client-observed latency window.  A signal must persist
    ``up_after``/``down_after`` consecutive ``interval_s`` ticks before
    the fleet changes, and scale-down only retires a shard that is
    completely idle.
    """

    min_workers: int = 1
    max_workers: int = 4
    high_watermark: float = 4.0
    low_watermark: float = 0.5
    p99_high_ms: float | None = None
    up_after: int = 2
    down_after: int = 8
    interval_s: float = 0.25


class _Pending:
    """One frame in flight between router and a worker."""

    __slots__ = ("rid", "future", "params", "headers", "leases",
                 "deadline", "timeline", "submitted_at", "retries",
                 "shard")

    def __init__(self, rid, future, params, headers, leases, deadline,
                 timeline):
        self.rid = rid
        self.future = future
        self.params = params
        self.headers = headers
        self.leases = leases
        self.deadline = deadline
        self.timeline = timeline
        self.submitted_at = time.monotonic()
        self.retries = 0
        self.shard = -1


class _RemotePool:
    """``Frame._pool`` duck-type for router-served frames: ``release``
    forwards slot frees over the producing shard's pipe (best-effort —
    a dead worker's slabs are reaped wholesale anyway)."""

    __slots__ = ("_handle", "_slots")

    def __init__(self, handle: WorkerHandle, slots: dict):
        self._handle = handle
        self._slots = slots  # id(array) -> ((segment, offset), gen)

    def release(self, *arrays) -> None:
        keys = [self._slots.pop(id(a)) for a in arrays
                if id(a) in self._slots]
        if keys:
            self._handle.send(("free", keys))


class _Shard:
    """Router-side state of one worker slot (survives respawns)."""

    def __init__(self, index: int):
        self.index = index
        self.gen = -1
        self.handle: WorkerHandle | None = None
        self.receiver: threading.Thread | None = None
        self.pending: dict[int, _Pending] = {}
        self.backend = BUILDING
        self.alive = False
        self.draining = False
        self.bye = threading.Event()
        self.segments: set[str] = set()
        self.stats_events: dict[int, threading.Event] = {}
        self.stats_replies: dict[int, dict] = {}
        self.last_stats: dict | None = None
        self.fatal: str | None = None
        self.spawned_at = 0.0
        self.fast_deaths = 0  # consecutive deaths right after spawn


class ShardedService:
    """Process-sharded pipeline serving behind one submit/Frame API.

    Parameters mirror :class:`~repro.serve.service.PipelineService`
    where they mean the same thing; the ones that differ:

    ``workers``
        Number of worker *processes* (shards) to start.
    ``max_queue``
        Total in-flight frames the router admits across all shards.
    ``shard_queue``
        Per-shard backpressure bound (and each worker's inner queue
        capacity); defaults to ``max_queue``.
    ``inner_workers``
        Consumer threads inside each worker's inner service.
    ``max_retries``
        Requeue budget per frame after a worker death (default 1).
    ``autoscale``
        :class:`AutoscaleConfig` (or a kwargs dict for one); ``None``
        keeps the fleet fixed.
    """

    def __init__(self, compiled, *,
                 workers: int = 2,
                 max_queue: int = 64,
                 backend: str = "auto",
                 default_deadline_s: float | None = None,
                 n_threads: int = 1,
                 vectorize: bool = True,
                 max_batch: int = 8,
                 coalesce: bool = True,
                 inner_workers: int = DEFAULT_INNER_WORKERS,
                 shard_queue: int | None = None,
                 max_retries: int = 1,
                 autoscale: AutoscaleConfig | Mapping | None = None,
                 event_capacity: int = 4096,
                 events_path: str | Path | None = None,
                 build_kwargs: Mapping | None = None,
                 name: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("auto", "interpreter", "native"):
            raise ValueError(
                f"backend must be 'auto', 'interpreter' or 'native', "
                f"got {backend!r}")
        self.plan = compiled.plan
        self.name = name or getattr(compiled, "name", "pipeline")
        self.backend_mode = backend
        self.default_deadline_s = default_deadline_s
        self.token = new_token()
        # identity-keyed Parameter/Image objects do not survive
        # pickling; the wire protocol is name-keyed and each worker
        # re-maps names onto its own unpickled plan objects
        self._plan_bytes = pickle.dumps(
            (dataclasses.replace(compiled.plan, verify_report=None),
             self.name))
        self._cfg = {
            "name": self.name, "token": self.token, "backend": backend,
            "n_threads": n_threads, "vectorize": vectorize,
            "inner_workers": inner_workers,
            "max_queue": shard_queue if shard_queue is not None
            else max_queue,
            "max_batch": max_batch, "coalesce": coalesce,
            "build_kwargs": dict(build_kwargs or {}),
        }
        self._max_queue = max_queue
        self._shard_queue = self._cfg["max_queue"]
        self._sticky_limit = max(1, max_batch)
        self._max_retries = max_retries
        self._ctx = get_context("spawn")

        # transport: router-owned input slabs (service-global — every
        # worker attaches, which is what makes requeue copy-free) and a
        # lazy map over the workers' announced output slabs
        self._input_alloc = SlabAllocator(self.token, "in")
        self._input_pool = ShmBufferPool(self._input_alloc)
        self.segment_map = SegmentMap()

        self._events = EventLog(capacity=event_capacity,
                                sink=events_path)
        self._metrics = MetricsRegistry()
        self._latency = LatencyWindow()
        self._rid = itertools.count()
        self._stats_seq = itertools.count()
        self._lock = threading.RLock()
        self._counts = {
            "submitted": 0, "completed": 0, "rejected": 0,
            "timeouts": 0, "failures": 0, "cancelled": 0,
            "native_frames": 0, "interp_frames": 0,
            "requeued": 0, "worker_deaths": 0, "respawns": 0,
            "input_copies": 0, "leased_inputs": 0,
            "scale_ups": 0, "scale_downs": 0,
        }
        self._timeout_reasons: dict[str, int] = {}
        self._sticky: dict[tuple, int] = {}
        self._shards: dict[int, _Shard] = {}
        self._retired_stats: list[dict] = []
        self._metrics_server = None
        self._closing = False
        self._closed = False
        self._close_lock = threading.Lock()

        for index in range(workers):
            self._spawn_shard(index)

        self._autoscale = None
        self._autoscale_thread = None
        if autoscale is not None:
            self._autoscale = autoscale if isinstance(
                autoscale, AutoscaleConfig) else AutoscaleConfig(
                    **dict(autoscale))
            self._autoscale_thread = threading.Thread(
                target=self._autoscale_loop, daemon=True,
                name=f"repro-router-{self.name}-autoscale")
            self._autoscale_thread.start()

    # -- bookkeeping -------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + n

    # -- worker lifecycle --------------------------------------------------
    def _spawn_shard(self, index: int) -> "_Shard":
        with self._lock:
            shard = self._shards.get(index)
            if shard is None:
                shard = self._shards[index] = _Shard(index)
            shard.gen += 1
            if shard.gen:
                self._count("respawns")
            cfg = dict(self._cfg, shard=index, gen=shard.gen)
            shard.handle = WorkerHandle(self._ctx, self._plan_bytes, cfg)
            shard.alive = True
            shard.draining = False
            shard.bye = threading.Event()
            shard.fatal = None
            shard.backend = INTERPRETER \
                if self.backend_mode == "interpreter" else BUILDING
            shard.spawned_at = time.monotonic()
            shard.receiver = threading.Thread(
                target=self._receive_loop, args=(shard, shard.handle),
                daemon=True,
                name=f"repro-router-{self.name}-rx{index}g{shard.gen}")
            shard.receiver.start()
        self._events.append("worker_spawn", None, shard=index,
                            gen=shard.gen)
        return shard

    def _receive_loop(self, shard: _Shard, handle: WorkerHandle) -> None:
        """Drain one worker's pipe until EOF, then handle its death."""
        conn = handle.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, ValueError):
                break
            kind = msg[0]
            if kind == "done":
                self._on_done(shard, handle, msg)
            elif kind == "err":
                self._on_err(shard, handle, msg)
            elif kind == "segment":
                with self._lock:
                    shard.segments.add(msg[1])
            elif kind == "backend":
                shard.backend = msg[1]
                self._events.append("backend", None, shard=shard.index,
                                    state=msg[1])
            elif kind == "stats":
                _, seq, payload = msg
                shard.last_stats = payload
                with self._lock:
                    shard.stats_replies[seq] = payload
                    event = shard.stats_events.pop(seq, None)
                if event is not None:
                    event.set()
            elif kind == "bye":
                shard.bye.set()
            elif kind == "fatal":
                shard.fatal = msg[1]
        self._on_pipe_down(shard, handle)

    def _on_done(self, shard: _Shard, handle: WorkerHandle,
                 msg: tuple) -> None:
        _, rid, headers, backend, marks, _worker_latency = msg
        with self._lock:
            pending = shard.pending.pop(rid, None)
        if pending is None:
            # frame already failed/requeued (death race) — hand the
            # output slots straight back so they are not stranded
            handle.send(("free", [((h[0], h[1]), h[2])
                                  for h in headers.values()]))
            return
        now = time.monotonic()
        pending.timeline.graft(marks, now)
        outputs: dict[str, np.ndarray] = {}
        slots: dict[int, tuple] = {}
        for out_name, header in headers.items():
            array = self.segment_map.view(header)
            outputs[out_name] = array
            slots[id(array)] = ((header[0], header[1]), header[2])
        self._free_inputs(pending)
        if not pending.future.set_running_or_notify_cancel():
            handle.send(("free", list(slots.values())))
            self._count("cancelled")
            pending.timeline.mark("dropped", reason="cancelled")
            return
        latency = now - pending.submitted_at
        self._latency.record(latency)
        pending.timeline.mark("completed", backend=backend,
                              shard=shard.index)
        self._count("completed")
        self._count("native_frames" if backend == NATIVE
                    else "interp_frames")
        pending.future.set_result(
            Frame(outputs, backend, latency, _RemotePool(handle, slots),
                  _timeline=pending.timeline))

    def _on_err(self, shard: _Shard, handle: WorkerHandle,
                msg: tuple) -> None:
        _, rid, kind, detail, marks = msg
        with self._lock:
            pending = shard.pending.pop(rid, None)
        if pending is None:
            return
        pending.timeline.graft(marks, time.monotonic())
        if kind == "overloaded" and self._maybe_requeue(pending):
            # shard backpressure raced the router's view; another shard
            # takes the frame and the client never notices
            return
        if kind == "deadline":
            exc: Exception = DeadlineExceeded(detail, 0.0)
            reason = _timeout_reason(detail)
            with self._lock:
                self._counts["timeouts"] += 1
                self._timeout_reasons[reason] = \
                    self._timeout_reasons.get(reason, 0) + 1
        elif kind == "overloaded":
            exc = Overloaded(detail)
            self._count("failures")
        elif kind == "cancelled":
            exc = ServiceClosed(
                f"shard {shard.index} dropped the frame: {detail}")
            self._count("cancelled")
        else:
            exc = RuntimeError(f"shard {shard.index}: {detail}")
            self._count("failures")
        pending.timeline.mark("dropped", reason=kind, shard=shard.index)
        self._free_inputs(pending)
        if pending.future.set_running_or_notify_cancel():
            pending.future.set_exception(exc)
        else:
            self._count("cancelled")

    def _on_pipe_down(self, shard: _Shard,
                      handle: WorkerHandle) -> None:
        """The receiver saw EOF: reap, maybe respawn, requeue-or-fail."""
        with self._lock:
            if handle is not shard.handle:
                return  # stale receiver of an already-replaced worker
            shard.alive = False
            orphans = list(shard.pending.values())
            shard.pending.clear()
            shard.segments.clear()
            self._sticky = {key: idx for key, idx in
                            self._sticky.items() if idx != shard.index}
            closing = self._closing
            graceful = shard.bye.is_set()
            if shard.last_stats is not None:
                self._retired_stats.append(shard.last_stats)
                shard.last_stats = None
        handle.close_conn()
        handle.join(timeout=5.0)
        if handle.alive():
            handle.kill()
            handle.join(timeout=5.0)
        # this generation can no longer unlink anything: reap its output
        # slabs by name prefix (router-owned input slabs are untouched;
        # already-mapped client views stay valid — unlink removes the
        # name, not the pages)
        unlink_segments(self.token, role=handle.role)
        if not graceful and not closing:
            self._count("worker_deaths")
            self._events.append("worker_death", None, shard=shard.index,
                                pid=handle.pid, fatal=shard.fatal)
        # crash-loop guard: a worker that keeps dying within seconds of
        # spawning (bad environment, startup fatal) is not respawned
        # forever — the shard is left dead and placement skips it
        fast = time.monotonic() - shard.spawned_at < 5.0
        shard.fast_deaths = shard.fast_deaths + 1 if fast else 0
        crash_looping = shard.fast_deaths >= 3
        if crash_looping:
            self._events.append("worker_disabled", None,
                                shard=shard.index, fatal=shard.fatal)
        if not closing and not shard.draining and not crash_looping:
            self._spawn_shard(shard.index)
        for pending in orphans:
            alive_deadline = pending.deadline is None \
                or not pending.deadline.expired()
            if (not closing and pending.retries < self._max_retries
                    and alive_deadline):
                pending.retries += 1
                if self._dispatch(pending, sticky_key=None):
                    self._count("requeued")
                    pending.timeline.mark("requeued",
                                          from_shard=shard.index)
                    continue
            exc = WorkerCrashed(shard.index, handle.pid,
                                shard.fatal or "")
            pending.timeline.mark("dropped", reason="worker_crashed")
            self._free_inputs(pending)
            self._count("failures")
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(exc)
            else:
                self._count("cancelled")

    # -- placement ---------------------------------------------------------
    @staticmethod
    def _batch_key(params: dict, headers: dict) -> tuple:
        return (tuple(sorted(params.items())),
                tuple(sorted((name, header[3], header[4])
                             for name, header in headers.items())))

    def _place(self, sticky_key, exclude: set) -> "_Shard | None":
        """Pick a shard (lock held): sticky first, else least loaded.

        Stickiness is soft: it routes compatible frames to the same
        shard only while that shard's backlog is below the coalescing
        window (``max_batch``), so a uniform workload still spreads
        across the fleet once one worker has enough queued to batch —
        hard stickiness would collapse every identical frame onto a
        single shard and forfeit scaling entirely.
        """
        candidates = [s for s in self._shards.values()
                      if s.alive and not s.draining
                      and s.index not in exclude
                      and len(s.pending) < self._shard_queue]
        if not candidates:
            return None
        if sticky_key is not None:
            index = self._sticky.get(sticky_key)
            for shard in candidates:
                if shard.index == index \
                        and len(shard.pending) < self._sticky_limit:
                    return shard
        best = min(candidates, key=lambda s: (len(s.pending), s.index))
        if sticky_key is not None:
            if len(self._sticky) > 512:
                self._sticky.clear()
            self._sticky[sticky_key] = best.index
        return best

    def _dispatch(self, pending: _Pending, sticky_key) -> bool:
        """Register + send one frame; retries across shards if a pipe
        turns out to be dead at send time.  False = nobody could take
        it."""
        exclude: set[int] = set()
        while True:
            with self._lock:
                shard = self._place(sticky_key, exclude)
                if shard is None:
                    return False
                pending.shard = shard.index
                shard.pending[pending.rid] = pending
                handle = shard.handle
            remaining = pending.deadline.remaining() \
                if pending.deadline is not None else None
            if handle.send(("frame", pending.rid, pending.params,
                            pending.headers, remaining)):
                pending.timeline.mark("shipped", shard=shard.index)
                return True
            with self._lock:
                shard.pending.pop(pending.rid, None)
            exclude.add(shard.index)

    # -- submission --------------------------------------------------------
    def lease_input(self, shape, dtype) -> np.ndarray:
        """A writable input array backed by the router's shared-memory
        slabs.  Fill it and pass it (the exact array) to :meth:`submit`
        and the input path is zero-copy end to end; the slot recycles
        automatically once the frame resolves.  Each leased array is
        consumed by one submit."""
        return self._input_pool.acquire(shape, dtype)

    def submit(self, param_values, inputs, *,
               deadline_s: float | None = None,
               deadline: Deadline | None = None) -> Future:
        """Enqueue one frame; returns a future resolving to a
        :class:`~repro.serve.service.Frame` (same contract as the
        thread service — :class:`Overloaded` on a full router,
        :class:`ServiceClosed` after :meth:`close`)."""
        if self._closing:
            raise ServiceClosed(f"service {self.name} is closed")
        if deadline is None:
            seconds = deadline_s if deadline_s is not None \
                else self.default_deadline_s
            if seconds is not None:
                deadline = Deadline.after(seconds)
        rid = next(self._rid)
        timeline = Timeline(rid, self._events)
        with self._lock:
            outstanding = sum(len(s.pending)
                              for s in self._shards.values())
        if outstanding >= self._max_queue:
            self._count("rejected")
            timeline.mark("rejected", reason="overloaded")
            raise Overloaded(
                f"router backlog {outstanding} >= {self._max_queue}")
        params = {getattr(p, "name", p): int(v)
                  for p, v in param_values.items()}
        headers: dict[str, tuple] = {}
        leases = []
        for image, array in inputs.items():
            image_name = getattr(image, "name", image)
            array = np.ascontiguousarray(array)
            lease = self._input_pool.export([array]).get(id(array))
            if lease is not None:
                self._count("leased_inputs")  # zero-copy path
            else:
                lease = self._input_alloc.alloc(max(array.nbytes, 1))
                staged = lease.ndarray(array.shape, array.dtype)
                staged[...] = array  # the one client-facing staging copy
                self._count("input_copies")
            headers[image_name] = lease.header(array.shape, array.dtype)
            leases.append(lease)
        pending = _Pending(rid, Future(), params, headers, leases,
                           deadline, timeline)
        timeline.mark("submitted")
        if not self._dispatch(pending,
                              self._batch_key(params, headers)):
            self._free_inputs(pending)
            self._count("rejected")
            timeline.mark("rejected", reason="no_shard")
            raise Overloaded("no shard can accept the frame")
        self._count("submitted")
        return pending.future

    def run(self, param_values, inputs, *,
            deadline_s: float | None = None,
            timeout: float | None = None) -> Frame:
        """Blocking convenience: ``submit`` + ``result``."""
        return self.submit(param_values, inputs,
                           deadline_s=deadline_s).result(timeout)

    def _maybe_requeue(self, pending: _Pending) -> bool:
        """Second chance on a different shard (retry budget allowing)."""
        if pending.retries >= self._max_retries or self._closing:
            return False
        if pending.deadline is not None and pending.deadline.expired():
            return False
        pending.retries += 1
        if self._dispatch(pending, sticky_key=None):
            self._count("requeued")
            pending.timeline.mark("requeued")
            return True
        return False

    def _free_inputs(self, pending: _Pending) -> None:
        for lease in pending.leases:
            self._input_alloc.free(lease.key, lease.gen)
        pending.leases = []

    # -- autoscaler --------------------------------------------------------
    def _autoscale_loop(self) -> None:
        cfg = self._autoscale
        above = below = 0
        while not self._closing:
            time.sleep(cfg.interval_s)
            if self._closing:
                return
            with self._lock:
                live = [s for s in self._shards.values()
                        if s.alive and not s.draining]
                outstanding = sum(len(s.pending) for s in live)
                n = len(live)
            if n == 0:
                continue
            per_shard = outstanding / n
            p99 = self._latency.percentile(99)
            hot = per_shard >= cfg.high_watermark or (
                cfg.p99_high_ms is not None and p99 >= cfg.p99_high_ms)
            cold = per_shard <= cfg.low_watermark and not hot
            above = above + 1 if hot else 0
            below = below + 1 if cold else 0
            if hot and above >= cfg.up_after and n < cfg.max_workers:
                above = 0
                with self._lock:
                    index = max(self._shards) + 1 if self._shards else 0
                self._spawn_shard(index)
                self._count("scale_ups")
                self._events.append(
                    "autoscale", None, action="up", workers=n + 1,
                    per_shard=round(per_shard, 2), p99_ms=round(p99, 2))
            elif cold and below >= cfg.down_after and n > cfg.min_workers:
                below = 0
                with self._lock:
                    idle = [s for s in live if not s.pending and s.alive]
                    if not idle:
                        continue
                    victim = max(idle, key=lambda s: s.index)
                    victim.draining = True
                    handle = victim.handle
                handle.send(("close", True))
                self._count("scale_downs")
                self._events.append(
                    "autoscale", None, action="down", workers=n - 1,
                    shard=victim.index)

    # -- introspection -----------------------------------------------------
    @property
    def workers(self) -> int:
        """Live (non-draining) shard count right now."""
        with self._lock:
            return sum(1 for s in self._shards.values()
                       if s.alive and not s.draining)

    @property
    def backend(self) -> str:
        """Fleet backend state, collapsed: the common state when all
        live shards agree, ``"mixed"`` otherwise."""
        with self._lock:
            states = {s.backend for s in self._shards.values()
                      if s.alive and not s.draining}
        if not states:
            return INTERPRETER
        return states.pop() if len(states) == 1 else "mixed"

    def wait_ready(self, timeout: float | None = None) -> str:
        """Block until no live shard is still ``building`` (or the
        timeout lapses); returns the collapsed backend state."""
        expiry = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                building = any(
                    s.backend == BUILDING for s in self._shards.values()
                    if s.alive and not s.draining)
            if not building:
                return self.backend
            if expiry is not None and time.monotonic() >= expiry:
                return self.backend
            time.sleep(0.01)

    @property
    def event_log(self) -> EventLog:
        return self._events

    def events(self, request_id=None, kind: str | None = None) -> list:
        return self._events.events(request_id=request_id, kind=kind)

    def _collect_worker_stats(self, timeout: float = 1.0
                              ) -> dict[int, dict]:
        """One stats round-trip per live shard (falling back to the
        shard's last known payload when it does not answer in time)."""
        seq = next(self._stats_seq)
        waits: list[tuple[_Shard, threading.Event]] = []
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            if not shard.alive or shard.handle is None:
                continue
            event = threading.Event()
            with self._lock:
                shard.stats_events[seq] = event
            if shard.handle.send(("stats", seq)):
                waits.append((shard, event))
            else:
                with self._lock:
                    shard.stats_events.pop(seq, None)
        expiry = time.monotonic() + timeout
        payloads: dict[int, dict] = {}
        for shard, event in waits:
            event.wait(max(0.0, expiry - time.monotonic()))
            with self._lock:
                payload = shard.stats_replies.pop(seq, None)
                shard.stats_events.pop(seq, None)
            if payload is None:
                payload = shard.last_stats
            if payload is not None:
                payloads[shard.index] = payload
        return payloads

    def shard_stats(self, timeout: float = 1.0
                    ) -> dict[int, ServiceStats]:
        """Per-shard :class:`ServiceStats`, straight from each worker."""
        return {index: ServiceStats.from_dict(payload["stats"])
                for index, payload in sorted(
                    self._collect_worker_stats(timeout).items())}

    def build_provenance(self, timeout: float = 1.0
                         ) -> dict[int, dict | None]:
        """Per-shard native build provenance: compile seconds,
        compile-cache hit and whether the shard cold-started from the
        persistent schedule store (``loaded_from_store``).  ``None``
        for shards whose native build has not resolved."""
        return {index: payload.get("build")
                for index, payload in sorted(
                    self._collect_worker_stats(timeout).items())}

    def stats(self, timeout: float = 1.0) -> ServiceStats:
        """Cross-shard snapshot with the same shape the thread service
        reports.

        Client-facing counters (submitted/rejected/completed/timeouts/
        failures) and the latency window are the router's own — they
        describe what callers observed, including requeues the workers
        never saw as one frame.  Backend counters, batching, fallbacks,
        pool totals and the per-stage histograms are merged from the
        workers (histograms bucket-exact via :meth:`Histogram.merge`),
        dead/retired shards included via their final payloads.
        """
        payloads = list(self._collect_worker_stats(timeout).values())
        with self._lock:
            payloads += list(self._retired_stats)
            counts = dict(self._counts)
            reasons = dict(self._timeout_reasons)
            inflight = sum(len(s.pending)
                           for s in self._shards.values())
        worker_stats = [ServiceStats.from_dict(p["stats"])
                        for p in payloads]
        fallbacks: dict[str, int] = {}
        pool = {"hits": 0, "misses": 0, "outstanding": 0, "idle": 0}
        batches = batched = queue_depth = 0
        for ws in worker_stats:
            batches += ws.batches
            batched += ws.batched_frames
            queue_depth += ws.queue_depth
            for key, value in ws.fallbacks.items():
                fallbacks[key] = fallbacks.get(key, 0) + value
            for key in pool:
                pool[key] += ws.pool.get(key, 0)
        attempts = pool["hits"] + pool["misses"]
        pool["hit_rate"] = pool["hits"] / attempts if attempts else 0.0
        stages = {}
        for stage in STAGES:
            merged: Histogram | None = None
            for payload in payloads:
                data = payload.get("metrics", {}).get(
                    "histograms", {}).get(f"{stage}_seconds")
                if data is None:
                    continue
                incoming = Histogram.from_dict(data)
                if merged is None:
                    merged = incoming
                else:
                    merged.merge(incoming)
            summary = merged.summary() if merged is not None else {
                "count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0}
            stages[stage] = {
                "count": summary["count"],
                "mean_ms": summary["mean"] * 1000.0,
                "p50_ms": summary["p50"] * 1000.0,
                "p90_ms": summary["p90"] * 1000.0,
                "p99_ms": summary["p99"] * 1000.0,
            }
        return ServiceStats(
            name=self.name,
            backend=self.backend,
            submitted=counts["submitted"],
            completed=counts["completed"],
            rejected=counts["rejected"],
            timeouts=counts["timeouts"],
            failures=counts["failures"],
            cancelled=counts["cancelled"],
            native_frames=counts["native_frames"],
            interp_frames=counts["interp_frames"],
            batches=batches,
            batched_frames=batched,
            fallbacks=fallbacks,
            queue_depth=queue_depth,
            inflight=inflight,
            pool=pool,
            latency=self._latency.snapshot(),
            timeouts_by_reason=reasons,
            stages=stages,
        )

    def transport(self) -> dict:
        """Transport-layer introspection: slab totals, copy counters,
        fault counters — what the zero-copy and leak tests pin down."""
        with self._lock:
            counts = dict(self._counts)
        copied_out = 0
        for payload in self._collect_worker_stats(timeout=0.5).values():
            copied_out += payload.get("copied_out", 0)
        return {
            "token": self.token,
            "workers": self.workers,
            "input": self._input_alloc.stats(),
            "attached_segments": len(self.segment_map.names()),
            "live_segments": len(live_segments(self.token)),
            "input_copies": counts["input_copies"],
            "leased_inputs": counts["leased_inputs"],
            "copied_out": copied_out,
            "requeued": counts["requeued"],
            "worker_deaths": counts["worker_deaths"],
            "respawns": counts["respawns"],
            "scale_ups": counts["scale_ups"],
            "scale_downs": counts["scale_downs"],
        }

    def _router_snapshot(self) -> dict:
        """Router-level registry snapshot for the exposition."""
        with self._lock:
            counts = dict(self._counts)
            reasons = dict(self._timeout_reasons)
            inflight = sum(len(s.pending)
                           for s in self._shards.values())
        for key, value in counts.items():
            self._metrics.set_counter(key, value)
        for reason, value in reasons.items():
            self._metrics.set_counter(f"timeouts_{reason}", value)
        self._metrics.gauge("workers", float(self.workers))
        self._metrics.gauge("inflight", float(inflight))
        self._metrics.gauge("attached_segments",
                            float(len(self.segment_map.names())))
        return self._metrics.as_dict()

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1"):
        """One Prometheus endpoint for the whole router: router-level
        series under ``repro_serve_router_`` plus every worker's
        registry as ``shard``-labeled series under ``repro_serve_``
        (validated by :func:`~repro.observe.export.
        validate_exposition_text`)."""
        if self._metrics_server is None:
            from repro.observe.export import (
                MetricsServer, render_exposition,
                render_sharded_exposition,
            )

            def render() -> str:
                shards = {str(index): payload.get("metrics", {})
                          for index, payload in sorted(
                              self._collect_worker_stats().items())}
                text = render_exposition(self._router_snapshot(),
                                         prefix="repro_serve_router_")
                text += render_sharded_exposition(
                    shards, prefix="repro_serve_", label="shard")
                return text

            self._metrics_server = MetricsServer(render, host=host,
                                                 port=port)
        return self._metrics_server

    # -- flow control ------------------------------------------------------
    def pause(self) -> None:
        """Pause every shard's inner service (frames keep queueing)."""
        self._broadcast(("pause",))

    def resume(self) -> None:
        self._broadcast(("resume",))

    def release(self) -> None:
        """Ask every shard to drop idle pooled buffers and arenas."""
        self._broadcast(("release",))

    def _broadcast(self, msg: tuple) -> None:
        with self._lock:
            handles = [s.handle for s in self._shards.values()
                       if s.alive and s.handle is not None]
        for handle in handles:
            handle.send(msg)

    # -- teardown ----------------------------------------------------------
    def close(self, drain: bool = True,
              timeout: float = 20.0) -> None:
        """Shut the fleet down; the no-leaked-segments contract lands
        here.  ``drain=True`` lets every accepted frame finish first;
        ``drain=False`` cancels the backlog.  Idempotent."""
        with self._close_lock:
            already = self._closed
            self._closed = True
            self._closing = True
        if already:
            return
        # refresh final per-worker stats so post-close stats() still
        # reports the merged history
        self._collect_worker_stats(timeout=min(2.0, timeout))
        with self._lock:
            shards = list(self._shards.values())
        if not drain:
            for shard in shards:
                with self._lock:
                    orphans = list(shard.pending.values())
                    shard.pending.clear()
                for pending in orphans:
                    self._free_inputs(pending)
                    if pending.future.cancel():
                        self._count("cancelled")
                    else:
                        # already running at a worker; fail it loudly
                        # rather than leaving the caller hanging
                        if pending.future.set_running_or_notify_cancel():
                            pending.future.set_exception(
                                ServiceClosed("service closed"))
        for shard in shards:
            if shard.handle is not None:
                shard.handle.send(("close", drain))
        expiry = time.monotonic() + timeout
        for shard in shards:
            handle = shard.handle
            if handle is None:
                continue
            handle.join(max(0.1, expiry - time.monotonic()))
            if handle.alive():
                handle.terminate()
                handle.join(2.0)
            if handle.alive():
                handle.kill()
                handle.join(2.0)
            handle.close_conn()
        for shard in shards:
            if shard.receiver is not None:
                shard.receiver.join(timeout=5.0)
        if self._autoscale_thread is not None:
            self._autoscale_thread.join(
                timeout=self._autoscale.interval_s + 1.0)
        # the router owns every unlink: close its own slabs, then sweep
        # whatever any generation of any worker left behind
        self.segment_map.close()
        self._input_alloc.close(unlink=True)
        unlink_segments(self.token)
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        self._events.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedService({self.name!r}, workers={self.workers}, "
                f"backend={self.backend})")
