"""Streaming serving runtime: bounded batching, deadlines, fallback.

Turn a compiled pipeline into a long-lived service::

    from repro import compile_pipeline
    from repro.serve import PipelineService

    compiled = compile_pipeline([harris], estimates={R: 512, C: 512})
    with PipelineService(compiled, workers=2, max_queue=64,
                         default_deadline_s=0.5) as service:
        future = service.submit({R: 512, C: 512}, {I: frame_array})
        with future.result() as frame:      # releases buffers on exit
            consume(frame.outputs["harris"])
        print(service.stats().render())

The service starts answering immediately with the interpreter backend
while ``gcc`` compiles the native artifact in the background, switches
to native when it is ready, and falls back to the interpreter — counting
every degradation — if the build fails, the artifact cannot be loaded,
or native calls keep erroring.  ``submit`` on a full queue raises
:class:`Overloaded`; frames that miss their deadline fail with
:class:`DeadlineExceeded`.  Under load, compatible queued requests
(same params, same input shapes/dtypes) are coalesced into one batched
native call (``max_batch=``/``coalesce=``) — late members are dropped
individually, never the whole batch.  Every request carries a lifecycle
:class:`~repro.observe.events.Timeline` (``submitted → dequeued →
coalesced → dispatched → completed | dropped``) mirrored into the
service's event ring, per-stage latencies land in mergeable histograms,
and :meth:`PipelineService.serve_metrics` exposes them over HTTP in
Prometheus text format.  See ``docs/internals.md`` §16–18.

To scale past one process, :class:`ShardedService` serves the same
``submit()``/``Frame`` contract from a fleet of spawn-mode worker
processes: pixel data moves through shared-memory slabs
(:mod:`repro.serve.shm` — headers only on the command pipe), placement
is least-outstanding-work with sticky coalescing, dead workers are
respawned with their in-flight frames requeued-or-failed (never hung),
and an optional :class:`AutoscaleConfig` grows/shrinks the fleet from
queue-depth and p99 signals.  See ``docs/internals.md`` §20.

Demo: ``python -m repro.serve --app harris`` (``--workers N`` for the
process-sharded tier).
"""

from repro.serve.deadlines import Deadline, DeadlineExceeded
from repro.serve.fallback import FallbackPolicy
from repro.serve.queue import BoundedQueue, Overloaded, ServiceClosed
from repro.serve.router import (
    AutoscaleConfig, ShardedService, WorkerCrashed,
)
from repro.serve.service import (
    STAGES, Frame, PipelineService, ServiceStats,
)

__all__ = [
    "AutoscaleConfig", "BoundedQueue", "Deadline", "DeadlineExceeded",
    "FallbackPolicy", "Frame", "Overloaded", "PipelineService",
    "STAGES", "ServiceClosed", "ServiceStats", "ShardedService",
    "WorkerCrashed",
]
