"""Native→interpreter fallback policy: the service's backend state machine.

State transitions::

    BUILDING ──build ok──────────▶ NATIVE
        │                            │
        └─build failed / load        ├─transient native error ─▶ frame
          failed ─▶ INTERPRETER      │   re-served by the interpreter
                                     └─``max_native_errors`` consecutive
                                       errors ─▶ INTERPRETER (demoted)

The policy never promotes back from INTERPRETER: a backend that failed
to build or repeatedly failed at runtime stays demoted for the service's
lifetime — predictable degradation beats flapping.  Every transition and
every fallback-served frame is counted, so ``service.stats()`` can
report *why* frames ran where they did.
"""

from __future__ import annotations

import threading

#: backend states
BUILDING = "building"
NATIVE = "native"
INTERPRETER = "interpreter"


class FallbackPolicy:
    """Tracks which backend frames should use and why, thread-safely.

    One instance per service.  Workers call :meth:`backend_for_frame`
    per frame; build/runtime outcomes feed back through the ``note_*``
    methods.
    """

    def __init__(self, max_native_errors: int = 3,
                 native_enabled: bool = True,
                 on_transition=None):
        if max_native_errors < 1:
            raise ValueError(
                f"max_native_errors must be >= 1, got {max_native_errors}")
        self.max_native_errors = max_native_errors
        #: optional ``callback(transition, fields)`` invoked outside the
        #: policy lock for every state-machine transition —
        #: ``build_ready``, ``build_failed``, ``load_failed``,
        #: ``native_error``, ``demoted`` — so the service can mirror
        #: them into its event log without risking lock-order cycles
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BUILDING if native_enabled else INTERPRETER
        self._native = None
        self._build_resolved = False
        self._consecutive_errors = 0
        #: reason -> count of fallback events ("build_failed",
        #: "load_failed", "native_error", "demoted")
        self._fallbacks: dict[str, int] = {}
        self._last_error: BaseException | None = None

    # -- state ingestion ---------------------------------------------------
    def note_build_resolved(self, native, exc: BaseException | None):
        """Ingest the background build outcome exactly once.

        Every worker polls the finished build handle, so several may
        race to report it; only the first call mutates the policy (and
        its fallback counters), the rest are no-ops.  On success the
        policy moves to NATIVE.  On failure it goes interpreter-only:
        :class:`~repro.codegen.build.BuildError` counts as
        ``build_failed``, anything else (e.g. ``OSError`` from a corrupt
        artifact at ``dlopen`` time) as ``load_failed``.

        Returns the recorded fallback reason when *this* call recorded a
        failure, ``None`` otherwise (success or already resolved).
        """
        from repro.codegen.build import BuildError
        with self._lock:
            if self._build_resolved:
                return None
            self._build_resolved = True
            if exc is None:
                promoted = self._state == BUILDING
                if promoted:
                    self._native = native
                    self._state = NATIVE
            else:
                reason = "build_failed" if isinstance(exc, BuildError) \
                    else "load_failed"
                self._state = INTERPRETER
                self._native = None
                self._last_error = exc
                self._fallbacks[reason] = self._fallbacks.get(reason, 0) + 1
        if exc is None:
            if promoted:
                self._emit("build_ready")
            return None
        self._emit(reason, error=f"{type(exc).__name__}: {exc}")
        return reason

    def _emit(self, transition: str, **fields) -> None:
        """Report a transition to the observer callback, outside the
        lock; observer errors never poison the state machine."""
        if self._on_transition is None:
            return
        try:
            self._on_transition(transition, fields)
        except Exception:  # noqa: BLE001 - observability must not wedge
            pass

    def note_build_ready(self, native) -> None:
        """The background build produced a loadable native pipeline."""
        self.note_build_resolved(native, None)

    def note_build_failed(self, exc: BaseException) -> None:
        """The build (or the subsequent load) failed; go interpreter-only."""
        self.note_build_resolved(None, exc)

    def note_native_error(self, exc: BaseException) -> bool:
        """A native call raised (without crashing the process).

        The frame is re-served by the interpreter; after
        ``max_native_errors`` *consecutive* failures the backend is
        demoted for good.  Returns True when this error demoted it.
        """
        with self._lock:
            self._last_error = exc
            self._fallbacks["native_error"] = \
                self._fallbacks.get("native_error", 0) + 1
            self._consecutive_errors += 1
            errors = self._consecutive_errors
            demoted = (self._state == NATIVE
                       and errors >= self.max_native_errors)
            if demoted:
                self._state = INTERPRETER
                self._native = None
                self._fallbacks["demoted"] = \
                    self._fallbacks.get("demoted", 0) + 1
        self._emit("native_error", error=f"{type(exc).__name__}: {exc}",
                   consecutive=errors)
        if demoted:
            self._emit("demoted", after_errors=errors)
        return demoted

    def note_native_ok(self) -> None:
        """A native call succeeded; reset the consecutive-error streak."""
        with self._lock:
            self._consecutive_errors = 0

    # -- queries -----------------------------------------------------------
    def backend_for_frame(self):
        """(backend name, native-or-None) for the next frame.

        BUILDING serves the interpreter while the build is in flight —
        callers get correct (slower) results immediately instead of
        waiting on ``gcc``.
        """
        with self._lock:
            if self._state == NATIVE:
                return NATIVE, self._native
            return INTERPRETER, None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def native(self):
        with self._lock:
            return self._native

    @property
    def last_error(self) -> BaseException | None:
        with self._lock:
            return self._last_error

    def fallbacks(self) -> dict[str, int]:
        with self._lock:
            return dict(self._fallbacks)
