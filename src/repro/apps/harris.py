"""Harris corner detection (paper Figure 1, evaluated in Table 2).

An 11-stage pipeline: Sobel-style derivative stencils ``Ix``/``Iy``,
point-wise products ``Ixx``/``Ixy``/``Iyy``, 3x3 box sums ``Sxx``/``Sxy``/
``Syy``, and the point-wise ``det``/``trace``/``harris`` response.  The
DSL specification below mirrors the paper's listing line for line.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Stencil, Variable,
)

#: Image size used in the paper's evaluation (6400 x 6400).
PAPER_SIZE = 6400


def build_pipeline(name_prefix: str = "") -> AppSpec:
    """Construct the Harris pipeline exactly as in the paper's Figure 1."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R + 2, C + 2], name=name_prefix + "I")

    x, y = Variable("x"), Variable("y")
    row, col = Interval(0, R + 1, 1), Interval(0, C + 1, 1)

    c = (Condition(x, ">=", 1) & Condition(x, "<=", R)
         & Condition(y, ">=", 1) & Condition(y, "<=", C))
    cb = (Condition(x, ">=", 2) & Condition(x, "<=", R - 1)
          & Condition(y, ">=", 2) & Condition(y, "<=", C - 1))

    def fn(name: str) -> Function:
        return Function(varDom=([x, y], [row, col]), typ=Float,
                        name=name_prefix + name)

    Iy = fn("Iy")
    Iy.defn = [Case(c, Stencil(I(x, y), 1.0 / 12,
                               [[-1, -2, -1],
                                [0, 0, 0],
                                [1, 2, 1]]))]

    Ix = fn("Ix")
    Ix.defn = [Case(c, Stencil(I(x, y), 1.0 / 12,
                               [[-1, 0, 1],
                                [-2, 0, 2],
                                [-1, 0, 1]]))]

    Ixx = fn("Ixx")
    Ixx.defn = [Case(c, Ix(x, y) * Ix(x, y))]

    Iyy = fn("Iyy")
    Iyy.defn = [Case(c, Iy(x, y) * Iy(x, y))]

    Ixy = fn("Ixy")
    Ixy.defn = [Case(c, Ix(x, y) * Iy(x, y))]

    Sxx, Syy, Sxy = fn("Sxx"), fn("Syy"), fn("Sxy")
    for out, src in [(Sxx, Ixx), (Syy, Iyy), (Sxy, Ixy)]:
        out.defn = [Case(cb, Stencil(src(x, y), 1,
                                     [[1, 1, 1],
                                      [1, 1, 1],
                                      [1, 1, 1]]))]

    det = fn("det")
    det.defn = [Case(cb, Sxx(x, y) * Syy(x, y) - Sxy(x, y) * Sxy(x, y))]

    trace = fn("trace")
    trace.defn = [Case(cb, Sxx(x, y) + Syy(x, y))]

    harris = fn("harris")
    coarsity = det(x, y) - 0.04 * trace(x, y) * trace(x, y)
    harris.defn = [Case(cb, coarsity)]

    params = {"R": R, "C": C}

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cval = values[R], values[C]
        return {I: rng.random((r + 2, cval + 2), dtype=np.float32)}

    def reference(inputs: Mapping[Image, np.ndarray],
                  values: Mapping[Parameter, int]) -> dict[str, np.ndarray]:
        return {harris.name: reference_harris(np.asarray(inputs[I],
                                                         dtype=np.float32))}

    return AppSpec(
        name="harris",
        params=params,
        images=(I,),
        outputs=(harris,),
        default_estimates={R: PAPER_SIZE, C: PAPER_SIZE},
        reference=reference,
        make_inputs=make_inputs,
    )


def reference_harris(I: np.ndarray) -> np.ndarray:
    """Stage-at-a-time NumPy oracle for the Harris pipeline.

    Matches the DSL semantics: stages are zero outside their case regions.
    """
    I = I.astype(np.float32)
    rows, cols = I.shape
    R, C = rows - 2, cols - 2

    def zeros() -> np.ndarray:
        return np.zeros_like(I)

    Ix, Iy = zeros(), zeros()
    # interior: x in [1, R], y in [1, C]
    core = np.s_[1:R + 1, 1:C + 1]
    Iy[core] = (
        -I[0:R, 0:C] - 2 * I[0:R, 1:C + 1] - I[0:R, 2:C + 2]
        + I[2:R + 2, 0:C] + 2 * I[2:R + 2, 1:C + 1] + I[2:R + 2, 2:C + 2]
    ) / 12.0
    Ix[core] = (
        -I[0:R, 0:C] + I[0:R, 2:C + 2]
        - 2 * I[1:R + 1, 0:C] + 2 * I[1:R + 1, 2:C + 2]
        - I[2:R + 2, 0:C] + I[2:R + 2, 2:C + 2]
    ) / 12.0

    Ixx, Iyy, Ixy = zeros(), zeros(), zeros()
    Ixx[core] = Ix[core] * Ix[core]
    Iyy[core] = Iy[core] * Iy[core]
    Ixy[core] = Ix[core] * Iy[core]

    def box3(src: np.ndarray) -> np.ndarray:
        """3x3 box sum on the cb interior."""
        out = zeros()
        out[2:R, 2:C] = (
            src[1:R - 1, 1:C - 1] + src[1:R - 1, 2:C] + src[1:R - 1, 3:C + 1]
            + src[2:R, 1:C - 1] + src[2:R, 2:C] + src[2:R, 3:C + 1]
            + src[3:R + 1, 1:C - 1] + src[3:R + 1, 2:C] + src[3:R + 1, 3:C + 1]
        )
        return out

    Sxx, Syy, Sxy = box3(Ixx), box3(Iyy), box3(Ixy)

    harris = zeros()
    inner = np.s_[2:R, 2:C]
    det = Sxx[inner] * Syy[inner] - Sxy[inner] * Sxy[inner]
    trace = Sxx[inner] + Syy[inner]
    harris[inner] = det - 0.04 * trace * trace
    return harris
