"""The seven benchmark applications of the paper's evaluation (Table 2),
plus ``iunsharp`` — an 8-bit fixed-point unsharp variant exercising the
integer precision-narrowing path (``CompileOptions.narrow``).

Each module exposes ``build_pipeline(...) -> AppSpec``; :data:`ALL_APPS`
maps benchmark names to their builders for the harness.
"""

from repro.apps import (
    bilateral, camera, harris, interpolate, iunsharp, laplacian, pyramid,
    unsharp,
)
from repro.apps.base import AppSpec

#: name -> zero-argument builder producing the paper-scale pipeline
ALL_APPS = {
    "unsharp": unsharp.build_pipeline,
    "bilateral": bilateral.build_pipeline,
    "harris": harris.build_pipeline,
    "camera": camera.build_pipeline,
    "pyramid_blend": pyramid.build_pipeline,
    "interpolate": interpolate.build_pipeline,
    "local_laplacian": laplacian.build_pipeline,
    "iunsharp": iunsharp.build_pipeline,
}

__all__ = ["ALL_APPS", "AppSpec", "bilateral", "camera", "harris",
           "interpolate", "iunsharp", "laplacian", "pyramid", "unsharp"]
