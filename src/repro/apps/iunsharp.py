"""Integer unsharp mask (8-bit in, 8-bit out, exact fixed-point core).

The unsharp-mask chain re-expressed in pure integer arithmetic, the way
camera ISPs implement it: a separable 5-tap binomial blur accumulated in
``Int`` (``[1 4 6 4 1]``, no normalisation until the end), then a
fixed-point sharpen ``(512 * I - blury) // 256`` and a clamp back to
``UChar``.  Every intermediate has a small, statically provable value
range — ``blurx`` in ``[0, 4080]`` and ``blury`` in ``[0, 65280]`` —
which makes this the showcase (and regression anchor) for the
interval-driven precision narrowing of ``CompileOptions.narrow``: both
blur stages store in ``uint16_t`` instead of ``int32_t``, halving the
scratchpad footprint, with bit-identical output.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.lang import (
    Case, Cast, Condition, Function, Image, Int, Interval, Max, Min,
    Parameter, UChar, Variable,
)

PAPER_ROWS, PAPER_COLS = 2048, 2048

KERNEL = (1, 4, 6, 4, 1)  # sums to 16; two passes scale by 256


def build_pipeline(name_prefix: str = "") -> AppSpec:
    """Construct the 4-stage integer unsharp-mask pipeline."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(UChar, [R + 4, C + 4], name=name_prefix + "Ii")

    x, y = Variable("x"), Variable("y")
    row = Interval(0, R + 3, 1)
    col = Interval(0, C + 3, 1)

    inner_x = Condition(x, ">=", 2) & Condition(x, "<=", R + 1)
    inner_y = Condition(y, ">=", 2) & Condition(y, "<=", C + 1)

    blurx = Function(varDom=([x, y], [row, col]), typ=Int,
                     name=name_prefix + "iblurx")
    blurx.defn = [Case(inner_x, sum(
        KERNEL[i] * Cast(Int, I(x + i - 2, y)) for i in range(5)))]

    blury = Function(varDom=([x, y], [row, col]), typ=Int,
                     name=name_prefix + "iblury")
    blury.defn = [Case(inner_x & inner_y, sum(
        KERNEL[j] * blurx(x, y + j - 2) for j in range(5)))]

    # 2 * I - blur in 8.8 fixed point: blury carries a factor of 256
    sharp = Function(varDom=([x, y], [row, col]), typ=Int,
                     name=name_prefix + "isharp")
    sharp.defn = [Case(inner_x & inner_y,
                       (Cast(Int, I(x, y)) * 512 - blury(x, y)) // 256)]

    masked = Function(varDom=([x, y], [row, col]), typ=UChar,
                      name=name_prefix + "imasked")
    masked.defn = [Case(inner_x & inner_y,
                        Cast(UChar, Min(255, Max(0, sharp(x, y)))))]

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cl = values[R], values[C]
        return {I: rng.integers(0, 256, size=(r + 4, cl + 4),
                                dtype=np.uint8)}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {masked.name: reference_iunsharp(np.asarray(inputs[I]))}

    return AppSpec(
        name="iunsharp",
        params={"R": R, "C": C},
        images=(I,),
        outputs=(masked,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


def reference_iunsharp(I: np.ndarray) -> np.ndarray:
    """Stage-at-a-time int32 oracle with zero-boundary semantics."""
    I = I.astype(np.int32)
    rows, cols = I.shape
    R, C = rows - 4, cols - 4
    k = np.array(KERNEL, dtype=np.int32)

    blurx = np.zeros_like(I)
    for i in range(5):
        blurx[2:R + 2, :] += k[i] * I[i:R + i, :]
    blury = np.zeros_like(I)
    for j in range(5):
        blury[:, 2:C + 2] += k[j] * blurx[:, j:C + j]
    blury[:2, :] = 0
    blury[R + 2:, :] = 0

    core = np.s_[2:R + 2, 2:C + 2]
    sharp = np.zeros_like(I)
    sharp[core] = (I[core] * 512 - blury[core]) // 256
    masked = np.zeros(I.shape, dtype=np.uint8)
    masked[core] = np.clip(sharp[core], 0, 255).astype(np.uint8)
    return masked
