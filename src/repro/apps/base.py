"""Common scaffolding for the benchmark applications (paper Section 4).

Each application module exposes ``build_pipeline(...) -> AppSpec``.  An
:class:`AppSpec` bundles the DSL pipeline (outputs, images, parameters)
with a NumPy *reference implementation* used both as the correctness
oracle in tests and as the stage-at-a-time "library" baseline in the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.pipeline.graph import Stage


@dataclass
class AppSpec:
    """A benchmark application: DSL pipeline + oracle + input synthesis."""

    name: str
    params: dict[str, Parameter]
    images: tuple[Image, ...]
    outputs: tuple[Stage, ...]
    #: parameter estimates for the paper's evaluation image size
    default_estimates: dict[Parameter, int]
    #: reference(inputs, param_values) -> {output_name: ndarray}
    reference: Callable[[Mapping[Image, np.ndarray], Mapping[Parameter, int]],
                        dict[str, np.ndarray]]
    #: make_inputs(param_values, rng) -> {Image: ndarray}
    make_inputs: Callable[[Mapping[Parameter, int], np.random.Generator],
                          dict[Image, np.ndarray]]

    def small_estimates(self, size: int = 64) -> dict[Parameter, int]:
        """Estimates scaled down for fast tests: every spatial parameter
        becomes ``size`` (non-spatial parameters keep their defaults)."""
        out = {}
        for param, value in self.default_estimates.items():
            out[param] = size if value > 4 * size else value
        return out

    @property
    def n_stages(self) -> int:
        from repro.pipeline.graph import PipelineGraph
        return len(PipelineGraph(self.outputs))
