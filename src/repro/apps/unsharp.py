"""Unsharp mask (Table 2: 4 stages, 2048x2048x3).

A separable 5-tap Gaussian blur followed by a thresholded sharpening
mask: ``masked = |I - blur| < t ? I : (1 + w) * I - w * blur``.  The
simplest of the paper's benchmarks — a straight chain of two stencils and
two point-wise stages that fuses into a single group.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.data.synth import rgb_image
from repro.lang import (
    Abs, Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Select, Variable,
)

PAPER_ROWS, PAPER_COLS = 2048, 2048

KERNEL = (1.0, 4.0, 6.0, 4.0, 1.0)
WEIGHT = 3.0
THRESHOLD = 0.001


def build_pipeline(name_prefix: str = "") -> AppSpec:
    """Construct the 4-stage unsharp-mask pipeline of Table 2."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [3, R + 4, C + 4], name=name_prefix + "Iu")

    c, x, y = Variable("c"), Variable("x"), Variable("y")
    chan = Interval(0, 2, 1)
    row = Interval(0, R + 3, 1)
    col = Interval(0, C + 3, 1)

    inner_x = Condition(x, ">=", 2) & Condition(x, "<=", R + 1)
    inner_y = Condition(y, ">=", 2) & Condition(y, "<=", C + 1)

    blurx = Function(varDom=([c, x, y], [chan, row, col]), typ=Float,
                     name=name_prefix + "blurx")
    blurx.defn = [Case(inner_x, sum(
        (KERNEL[i] / 16.0) * I(c, x + i - 2, y) for i in range(5)))]

    blury = Function(varDom=([c, x, y], [chan, row, col]), typ=Float,
                     name=name_prefix + "blury")
    blury.defn = [Case(inner_x & inner_y, sum(
        (KERNEL[j] / 16.0) * blurx(c, x, y + j - 2) for j in range(5)))]

    sharpen = Function(varDom=([c, x, y], [chan, row, col]), typ=Float,
                       name=name_prefix + "sharpen")
    sharpen.defn = [Case(inner_x & inner_y,
                         I(c, x, y) * (1.0 + WEIGHT)
                         - blury(c, x, y) * WEIGHT)]

    masked = Function(varDom=([c, x, y], [chan, row, col]), typ=Float,
                      name=name_prefix + "masked")
    masked.defn = [Case(inner_x & inner_y,
                        Select(Abs(I(c, x, y) - blury(c, x, y))
                               < THRESHOLD,
                               I(c, x, y), sharpen(c, x, y)))]

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cl = values[R], values[C]
        return {I: rgb_image(r + 4, cl + 4, rng)}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {masked.name: reference_unsharp(np.asarray(inputs[I]))}

    return AppSpec(
        name="unsharp",
        params={"R": R, "C": C},
        images=(I,),
        outputs=(masked,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


def reference_unsharp(I: np.ndarray) -> np.ndarray:
    """Stage-at-a-time oracle with the DSL's zero-boundary semantics."""
    I = I.astype(np.float32)
    _, rows, cols = I.shape
    R, C = rows - 4, cols - 4
    k = np.array(KERNEL, dtype=np.float32) / 16.0

    blurx = np.zeros_like(I)
    for i in range(5):
        blurx[:, 2:R + 2, :] += k[i] * I[:, i:R + i, :]
    blury = np.zeros_like(I)
    for j in range(5):
        blury[:, :, 2:C + 2] += k[j] * blurx[:, :, j:C + j]
    blury[:, :2, :] = 0
    blury[:, R + 2:, :] = 0

    core = np.s_[:, 2:R + 2, 2:C + 2]
    sharpen = np.zeros_like(I)
    sharpen[core] = I[core] * (1.0 + WEIGHT) - blury[core] * WEIGHT
    masked = np.zeros_like(I)
    masked[core] = np.where(np.abs(I[core] - blury[core]) < THRESHOLD,
                            I[core], sharpen[core])
    return masked
