"""Bilateral grid (Table 2: 7 stages, 2560x1536).

Fast bilateral filtering via the grid structure of Chen et al.: a
histogram-style reduction scatters pixels into a coarse
(space x space x intensity) grid (value and weight channels), the grid is
blurred with 5-tap stencils along z, x and y, and the output is sliced
back out with trilinear interpolation and homogeneous normalisation.

The reduction stages form their own group (the compiler does not fuse
reductions, matching the paper); the blur stencils fuse together; the
slice's intensity coordinate is data-dependent, so it stays separate.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.data.synth import smooth_image
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Condition, Float, Function, Image,
    Int, Interval, Max, Min, Parameter, Select, Sum, Variable,
)

PAPER_ROWS, PAPER_COLS = 2560, 1536

#: spatial cell size and number of intensity bins
S_SIGMA = 8
Z_BINS = 16

KERNEL = (1.0, 4.0, 6.0, 4.0, 1.0)


def build_pipeline(name_prefix: str = "") -> AppSpec:
    """Construct the bilateral-grid pipeline of Table 2."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R, C], name=name_prefix + "Ib")

    x, y = Variable("x"), Variable("y")
    gx, gy, gz = Variable("gx"), Variable("gy"), Variable("gz")
    row, col = Interval(0, R - 1, 1), Interval(0, C - 1, 1)
    grid_x = Interval(0, R / S_SIGMA, 1)
    grid_y = Interval(0, C / S_SIGMA, 1)
    grid_z = Interval(0, Z_BINS, 1)

    def bin_of(value):
        return Cast(Int, Min(Max(value * Z_BINS + 0.5, 0.0),
                             float(Z_BINS)))

    # 1-2. scatter pixels into the grid (weight and value channels)
    gridw = Accumulator(redDom=([x, y], [row, col]),
                        varDom=([gx, gy, gz], [grid_x, grid_y, grid_z]),
                        typ=Float, name=name_prefix + "gridw")
    gridw.defn = Accumulate(
        gridw(x // S_SIGMA, y // S_SIGMA, bin_of(I(x, y))), 1.0, Sum)
    gridv = Accumulator(redDom=([x, y], [row, col]),
                        varDom=([gx, gy, gz], [grid_x, grid_y, grid_z]),
                        typ=Float, name=name_prefix + "gridv")
    gridv.defn = Accumulate(
        gridv(x // S_SIGMA, y // S_SIGMA, bin_of(I(x, y))), I(x, y), Sum)

    def grid_fn(name: str) -> Function:
        return Function(varDom=([gx, gy, gz], [grid_x, grid_y, grid_z]),
                        typ=Float, name=name_prefix + name)

    # 3-8. blur the grid along z, x, y
    def blur(src, name: str, axis: int) -> Function:
        f = grid_fn(name)
        if axis == 2:
            cond = (Condition(gz, ">=", 2)
                    & Condition(gz, "<=", Z_BINS - 2))
            taps = [src(gx, gy, gz + t - 2) for t in range(5)]
        elif axis == 0:
            cond = (Condition(gx, ">=", 2)
                    & Condition(gx, "<=", R / S_SIGMA - 2))
            taps = [src(gx + t - 2, gy, gz) for t in range(5)]
        else:
            cond = (Condition(gy, ">=", 2)
                    & Condition(gy, "<=", C / S_SIGMA - 2))
            taps = [src(gx, gy + t - 2, gz) for t in range(5)]
        f.defn = [Case(cond, sum((KERNEL[t] / 16.0) * taps[t]
                                 for t in range(5)))]
        return f

    blurz_w = blur(gridw, "blurz_w", 2)
    blurx_w = blur(blurz_w, "blurx_w", 0)
    blury_w = blur(blurx_w, "blury_w", 1)
    blurz_v = blur(gridv, "blurz_v", 2)
    blurx_v = blur(blurz_v, "blurx_v", 0)
    blury_v = blur(blurx_v, "blury_v", 1)

    # 9. trilinear slice with homogeneous normalisation
    out = Function(varDom=([x, y], [row, col]), typ=Float,
                   name=name_prefix + "bilateral")
    zf = I(x, y) * Z_BINS
    zi = Cast(Int, Min(Max(zf, 0.0), float(Z_BINS - 1)))
    zt = zf - Cast(Float, zi)
    xi = x // S_SIGMA
    yi = y // S_SIGMA
    xt = Cast(Float, x - S_SIGMA * xi) * (1.0 / S_SIGMA)
    yt = Cast(Float, y - S_SIGMA * yi) * (1.0 / S_SIGMA)

    def trilerp(grid):
        def lerp(a, b, t):
            return a * (1.0 - t) + b * t
        c00 = lerp(grid(xi, yi, zi), grid(xi, yi, zi + 1), zt)
        c01 = lerp(grid(xi, yi + 1, zi), grid(xi, yi + 1, zi + 1), zt)
        c10 = lerp(grid(xi + 1, yi, zi), grid(xi + 1, yi, zi + 1), zt)
        c11 = lerp(grid(xi + 1, yi + 1, zi),
                   grid(xi + 1, yi + 1, zi + 1), zt)
        return lerp(lerp(c00, c01, yt), lerp(c10, c11, yt), xt)

    weight = trilerp(blury_w)
    value = trilerp(blury_v)
    out.defn = Select(weight > 0.0, value / weight, 0.0)

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        return {I: smooth_image(values[R], values[C], rng)}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {out.name: reference_bilateral(np.asarray(inputs[I]))}

    return AppSpec(
        name="bilateral",
        params={"R": R, "C": C},
        images=(I,),
        outputs=(out,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def reference_bilateral(I: np.ndarray) -> np.ndarray:
    """NumPy oracle: grid scatter, 5-tap blurs, trilinear slice."""
    I = I.astype(np.float32)
    R, C = I.shape
    GX, GY, GZ = R // S_SIGMA + 1, C // S_SIGMA + 1, Z_BINS + 1

    xs, ys = np.meshgrid(np.arange(R), np.arange(C), indexing="ij")
    zi = np.clip(I * Z_BINS + 0.5, 0.0, float(Z_BINS)).astype(np.int64)
    gridw = np.zeros((GX, GY, GZ), np.float32)
    gridv = np.zeros((GX, GY, GZ), np.float32)
    np.add.at(gridw, (xs // S_SIGMA, ys // S_SIGMA, zi), 1.0)
    np.add.at(gridv, (xs // S_SIGMA, ys // S_SIGMA, zi),
              I.astype(np.float32))

    k = np.array(KERNEL, np.float32) / 16.0

    def blur_axis(g, axis, lo, hi):
        out = np.zeros_like(g)
        idx = [slice(None)] * 3
        src = [slice(None)] * 3
        idx[axis] = slice(lo, hi + 1)
        acc = np.zeros_like(g[tuple(idx)])
        for t in range(5):
            src[axis] = slice(lo + t - 2, hi + t - 1)
            acc += k[t] * g[tuple(src)]
        out[tuple(idx)] = acc
        return out

    def blur_all(g):
        g = blur_axis(g, 2, 2, Z_BINS - 2)
        g = blur_axis(g, 0, 2, GX - 3)  # gx in [2, R/S - 2]
        g = blur_axis(g, 1, 2, GY - 3)
        return g

    bw = blur_all(gridw)
    bv = blur_all(gridv)

    zf = I * Z_BINS
    zi = np.clip(zf, 0.0, float(Z_BINS - 1)).astype(np.int64)
    zt = (zf - zi).astype(np.float32)
    xi = xs // S_SIGMA
    yi = ys // S_SIGMA
    xt = ((xs - S_SIGMA * xi) / S_SIGMA).astype(np.float32)
    yt = ((ys - S_SIGMA * yi) / S_SIGMA).astype(np.float32)

    def trilerp(g):
        def lerp(a, b, t):
            return a * (1.0 - t) + b * t
        c00 = lerp(g[xi, yi, zi], g[xi, yi, zi + 1], zt)
        c01 = lerp(g[xi, yi + 1, zi], g[xi, yi + 1, zi + 1], zt)
        c10 = lerp(g[xi + 1, yi, zi], g[xi + 1, yi, zi + 1], zt)
        c11 = lerp(g[xi + 1, yi + 1, zi], g[xi + 1, yi + 1, zi + 1], zt)
        return lerp(lerp(c00, c01, yt), lerp(c10, c11, yt), xt)

    w = trilerp(bw)
    v = trilerp(bv)
    out = np.zeros_like(I)
    np.divide(v, w, out=out, where=w > 0)
    return out.astype(np.float32)
