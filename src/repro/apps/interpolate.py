"""Multiscale interpolation (Table 2: 49 stages, 2560x1536x3).

Interpolates colour through transparent regions at multiple scales (the
classic ``interpolate`` pipeline): alpha-premultiplied RGBA is
downsampled into a pyramid (separable ``downx``/``downy``), then
reconstructed coarse-to-fine — each level adds the upsampled coarser
interpolation wherever its own alpha leaves a gap — and finally
normalised by the accumulated alpha.

Sizes must be divisible by ``2**(levels-1)``; borders are zero-padded.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.apps._pyr import level_interval
from repro.data.synth import rgb_image
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Select, Variable,
)

PAPER_ROWS, PAPER_COLS = 2560, 1536
DEFAULT_LEVELS = 10

W = (0.25, 0.5, 0.25)


def build_pipeline(levels: int = DEFAULT_LEVELS,
                   name_prefix: str = "") -> AppSpec:
    """Construct the multiscale-interpolation pipeline of Table 2."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [4, R + 1, C + 1], name=name_prefix + "Irgba")

    c, x, y = Variable("c"), Variable("x"), Variable("y")
    chan = Interval(0, 3, 1)

    def fn(name: str, l: int, y_level: int | None = None) -> Function:
        return Function(
            varDom=([c, x, y], [chan, level_interval(R, l),
                                level_interval(C, l if y_level is None
                                               else y_level)]),
            typ=Float, name=name_prefix + name)

    # alpha-premultiply
    premul = fn("premul", 0)
    premul.defn = [
        Case(Condition(c, "<=", 2), I(c, x, y) * I(3, x, y)),
        Case(Condition(c, ">=", 3), I(3, x, y)),
    ]

    def interior(l: int, half_x: bool, half_y: bool):
        cond = None
        if half_x:
            cond = (Condition(x, ">=", 1)
                    & Condition(x, "<=", R / (2 ** l) - 1))
        if half_y:
            cy = (Condition(y, ">=", 1)
                  & Condition(y, "<=", C / (2 ** l) - 1))
            cond = cy if cond is None else cond & cy
        return cond

    # downsampled pyramid
    d = [premul]
    for l in range(1, levels):
        dx = fn(f"downx{l}", l, y_level=l - 1)
        prev = d[-1]
        dx.defn = [Case(interior(l, True, False), sum(
            W[i] * prev(c, 2 * x + i - 1, y) for i in range(3)))]
        dy = fn(f"downy{l}", l)
        dy.defn = [Case(interior(l, True, True), sum(
            W[j] * dx(c, x, 2 * y + j - 1) for j in range(3)))]
        d.append(dy)

    # coarse-to-fine interpolation with separable upsampling
    u = d[levels - 1]
    for l in range(levels - 2, -1, -1):
        upx = fn(f"upx{l}", l, y_level=l + 1)
        upx.defn = 0.5 * (u(c, x // 2, y) + u(c, (x + 1) // 2, y))
        upy = fn(f"upy{l}", l)
        upy.defn = 0.5 * (upx(c, x, y // 2) + upx(c, x, (y + 1) // 2))
        interp = fn(f"interp{l}", l)
        interp.defn = (d[l](c, x, y)
                       + (1.0 - d[l](3, x, y)) * upy(c, x, y))
        u = interp

    final = Function(
        varDom=([c, x, y], [Interval(0, 2, 1), level_interval(R, 0),
                            level_interval(C, 0)]),
        typ=Float, name=name_prefix + "interpolated")
    final.defn = Select(u(3, x, y) > 0.0,
                        u(c, x, y) / u(3, x, y), 0.0)

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cl = values[R], values[C]
        rgba = np.zeros((4, r + 1, cl + 1), np.float32)
        rgba[:3, :r, :cl] = rgb_image(r, cl, rng)
        alpha = (smooth_alpha(r, cl, rng))
        rgba[3, :r, :cl] = alpha
        rgba[:3] *= 1.0  # colours stored straight; premul happens in-DSL
        return {I: rgba}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {final.name: reference_interpolate(np.asarray(inputs[I]),
                                                  levels)}

    return AppSpec(
        name="interpolate",
        params={"R": R, "C": C},
        images=(I,),
        outputs=(final,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


def smooth_alpha(rows: int, cols: int, rng: np.random.Generator
                 ) -> np.ndarray:
    """An alpha mask with transparent holes to interpolate through."""
    from repro.data.synth import smooth_image
    alpha = smooth_image(rows, cols, rng)
    return (alpha > 0.35).astype(np.float32)


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def _ref_downx(src: np.ndarray) -> np.ndarray:
    S = src.shape[-2] - 1
    out = np.zeros(src.shape[:-2] + (S // 2 + 1, src.shape[-1]), src.dtype)
    xs = np.arange(1, S // 2)
    if len(xs):
        out[..., 1:S // 2, :] = sum(
            W[i] * src[..., 2 * xs + i - 1, :] for i in range(3))
    return out


def _ref_downy(src: np.ndarray) -> np.ndarray:
    S = src.shape[-1] - 1
    out = np.zeros(src.shape[:-1] + (S // 2 + 1,), src.dtype)
    ys = np.arange(1, S // 2)
    if len(ys):
        acc = sum(W[j] * src[..., 2 * ys + j - 1] for j in range(3))
        acc[..., 0, :] = 0
        acc[..., -1, :] = 0
        out[..., 1:S // 2] = acc
    return out


def reference_interpolate(rgba: np.ndarray, levels: int) -> np.ndarray:
    """NumPy oracle: premultiply, pyramid, coarse-to-fine fill, normalise."""
    rgba = rgba.astype(np.float32)
    premul = rgba.copy()
    premul[:3] = rgba[:3] * rgba[3]

    d = [premul]
    for _ in range(1, levels):
        d.append(_ref_downy(_ref_downx(d[-1])))

    u = d[levels - 1]
    for l in range(levels - 2, -1, -1):
        fine_r = d[l].shape[-2]
        fine_c = d[l].shape[-1]
        xs = np.arange(fine_r)
        upx = 0.5 * (u[..., xs // 2, :] + u[..., (xs + 1) // 2, :])
        ys = np.arange(fine_c)
        upy = 0.5 * (upx[..., ys // 2] + upx[..., (ys + 1) // 2])
        u = d[l] + (1.0 - d[l][3:4]) * upy

    w = u[3]
    out = np.zeros_like(u[:3])
    np.divide(u[:3], w[None], out=out, where=w[None] > 0)
    return out.astype(np.float32)
