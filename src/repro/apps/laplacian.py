"""Local Laplacian filter (Table 2: 99 stages, 2560x1536x3).

Edge-aware local contrast enhancement (Paris et al., Aubry et al.): the
luminance is remapped at ``J`` intensity levels, a Gaussian pyramid is
built per remapped copy, Laplacian levels are formed, and the output
Laplacian pyramid selects between adjacent intensity levels per pixel
according to the luminance pyramid (a data-dependent selection realised
as a Select chain over the unrolled ``J`` copies, as in the original
PolyMage benchmark), before collapsing and re-applying colour.

The stage count grows as ``O(J * K)`` — the default (J=8, K=4) gives 95
stages, matching the order of the paper's 99.  Sizes must be divisible
by ``2**(K-1)``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.apps._pyr import level_interval, up2
from repro.data.synth import rgb_image
from repro.lang import (
    Case, Cast, Condition, Exp, Float, Function, Image, Int, Interval, Max,
    Min, Parameter, Select, Variable,
)

PAPER_ROWS, PAPER_COLS = 2560, 1536
DEFAULT_J = 8
DEFAULT_LEVELS = 4

ALPHA = 0.25
BETA = 0.3
SIGMA = 0.2
EPS = 0.01

W = (0.25, 0.5, 0.25)


def build_pipeline(j_levels: int = DEFAULT_J,
                   levels: int = DEFAULT_LEVELS,
                   name_prefix: str = "") -> AppSpec:
    """Construct the local-Laplacian pipeline (J intensity x K pyramid levels)."""
    if j_levels < 2 or levels < 2:
        raise ValueError("local laplacian needs at least 2 intensity and "
                         "2 pyramid levels")
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [3, R + 1, C + 1], name=name_prefix + "Ill")

    c, x, y = Variable("c"), Variable("x"), Variable("y")

    def fn(name: str, l: int, y_level: int | None = None) -> Function:
        return Function(
            varDom=([x, y], [level_interval(R, l),
                             level_interval(C, l if y_level is None
                                            else y_level)]),
            typ=Float, name=name_prefix + name)

    def interior(l: int, half_x: bool, half_y: bool):
        cond = None
        if half_x:
            cond = (Condition(x, ">=", 1)
                    & Condition(x, "<=", R / (2 ** l) - 1))
        if half_y:
            cy = (Condition(y, ">=", 1)
                  & Condition(y, "<=", C / (2 ** l) - 1))
            cond = cy if cond is None else cond & cy
        return cond

    def downsample(src, tag: str, l: int) -> Function:
        dx = fn(f"downx_{tag}{l}", l, y_level=l - 1)
        dx.defn = [Case(interior(l, True, False), sum(
            W[i] * src(2 * x + i - 1, y) for i in range(3)))]
        dy = fn(f"downy_{tag}{l}", l)
        dy.defn = [Case(interior(l, True, True), sum(
            W[j] * dx(x, 2 * y + j - 1) for j in range(3)))]
        return dy

    gray = fn("gray", 0)
    gray.defn = (0.299 * I(0, x, y) + 0.587 * I(1, x, y)
                 + 0.114 * I(2, x, y))

    # luminance pyramid
    inG = [gray]
    for l in range(1, levels):
        inG.append(downsample(inG[-1], "inG", l))

    # remapped Gaussian pyramids, one per intensity level j
    gPyr: list[list[Function]] = []
    for j in range(j_levels):
        ref = j / (j_levels - 1)
        base = fn(f"remap{j}", 0)
        fx = gray(x, y) - ref
        base.defn = (BETA * fx + ref
                     + ALPHA * fx * Exp(-(fx * fx)
                                        / (2.0 * SIGMA * SIGMA)))
        pyr = [base]
        for l in range(1, levels):
            pyr.append(downsample(pyr[-1], f"g{j}_", l))
        gPyr.append(pyr)

    # Laplacian levels (upsampling folded into the subtraction stage)
    lPyr: list[list[Function]] = []
    for j in range(j_levels):
        laps = []
        for l in range(levels - 1):
            lap = fn(f"lap{j}_{l}", l)
            lap.defn = gPyr[j][l](x, y) - up2(gPyr[j][l + 1], x, y)
            laps.append(lap)
        laps.append(gPyr[j][levels - 1])
        lPyr.append(laps)

    # output Laplacian pyramid: per-pixel interpolation between the two
    # nearest intensity levels, selected by the luminance pyramid
    outL = []
    for l in range(levels):
        f = fn(f"outL{l}", l)
        lvl = inG[l](x, y) * float(j_levels - 1)
        li = Cast(Int, Min(Max(lvl, 0.0), float(j_levels - 2)))
        lf = lvl - Cast(Float, li)
        expr = ((1.0 - lf) * lPyr[j_levels - 2][l](x, y)
                + lf * lPyr[j_levels - 1][l](x, y))
        for j in range(j_levels - 3, -1, -1):
            expr = Select(Condition(li, "==", j),
                          (1.0 - lf) * lPyr[j][l](x, y)
                          + lf * lPyr[j + 1][l](x, y),
                          expr)
        f.defn = expr
        outL.append(f)

    # collapse
    outG = outL[levels - 1]
    for l in range(levels - 2, -1, -1):
        nxt = fn(f"outG{l}", l)
        nxt.defn = outL[l](x, y) + up2(outG, x, y)
        outG = nxt

    output = Function(
        varDom=([c, x, y], [Interval(0, 2, 1), level_interval(R, 0),
                            level_interval(C, 0)]),
        typ=Float, name=name_prefix + "llf")
    output.defn = I(c, x, y) * (outG(x, y) / (gray(x, y) + EPS))

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cl = values[R], values[C]
        img = np.zeros((3, r + 1, cl + 1), np.float32)
        img[:, :r, :cl] = rgb_image(r, cl, rng)
        return {I: img}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {output.name: reference_local_laplacian(
            np.asarray(inputs[I]), j_levels, levels)}

    return AppSpec(
        name="local_laplacian",
        params={"R": R, "C": C},
        images=(I,),
        outputs=(output,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------

def _ref_downx(src: np.ndarray) -> np.ndarray:
    S = src.shape[0] - 1
    out = np.zeros((S // 2 + 1, src.shape[1]), src.dtype)
    xs = np.arange(1, S // 2)
    if len(xs):
        out[1:S // 2, :] = sum(W[i] * src[2 * xs + i - 1, :]
                               for i in range(3))
    return out


def _ref_downy(src: np.ndarray) -> np.ndarray:
    S = src.shape[1] - 1
    out = np.zeros((src.shape[0], S // 2 + 1), src.dtype)
    ys = np.arange(1, S // 2)
    if len(ys):
        acc = sum(W[j] * src[:, 2 * ys + j - 1] for j in range(3))
        acc[0, :] = 0
        acc[-1, :] = 0
        out[:, 1:S // 2] = acc
    return out


def _ref_up(src: np.ndarray, fine_shape: tuple[int, int]) -> np.ndarray:
    S, T = fine_shape
    xs = np.arange(S)
    ys = np.arange(T)
    x0, x1 = xs // 2, (xs + 1) // 2
    y0, y1 = ys // 2, (ys + 1) // 2
    return 0.25 * (src[np.ix_(x0, y0)] + src[np.ix_(x1, y0)]
                   + src[np.ix_(x0, y1)] + src[np.ix_(x1, y1)])


def reference_local_laplacian(I: np.ndarray, j_levels: int,
                              levels: int) -> np.ndarray:
    """NumPy oracle mirroring the unrolled-J Select-chain semantics."""
    I = I.astype(np.float32)
    gray = (0.299 * I[0] + 0.587 * I[1] + 0.114 * I[2]).astype(np.float32)

    def pyramid(base):
        pyr = [base]
        for _ in range(1, levels):
            pyr.append(_ref_downy(_ref_downx(pyr[-1])))
        return pyr

    inG = pyramid(gray)

    gPyr = []
    for j in range(j_levels):
        ref = np.float32(j / (j_levels - 1))
        fx = gray - ref
        base = (np.float32(BETA) * fx + ref
                + np.float32(ALPHA) * fx
                * np.exp(-(fx * fx) / (2.0 * SIGMA * SIGMA))
                .astype(np.float32)).astype(np.float32)
        gPyr.append(pyramid(base))

    lPyr = []
    for j in range(j_levels):
        laps = []
        for l in range(levels - 1):
            laps.append(gPyr[j][l]
                        - _ref_up(gPyr[j][l + 1], gPyr[j][l].shape))
        laps.append(gPyr[j][levels - 1])
        lPyr.append(laps)

    outL = []
    for l in range(levels):
        lvl = inG[l] * (j_levels - 1)
        li = np.clip(lvl, 0.0, j_levels - 2).astype(np.int64)
        lf = (lvl - li).astype(np.float32)
        low = np.choose(li, [lPyr[j][l] for j in range(j_levels)])
        high = np.choose(np.minimum(li + 1, j_levels - 1),
                         [lPyr[j][l] for j in range(j_levels)])
        outL.append(((1.0 - lf) * low + lf * high).astype(np.float32))

    out = outL[levels - 1]
    for l in range(levels - 2, -1, -1):
        out = outL[l] + _ref_up(out, outL[l].shape)

    return (I * (out / (gray + np.float32(EPS)))[None]).astype(np.float32)
