"""Camera RAW processing pipeline (Table 2: 32 stages, 2528x1920).

A FrankenCamera-style pipeline processing a GRBG Bayer mosaic into a
colour image: hot-pixel suppression, deinterleaving into four half-
resolution planes, gradient-aware demosaicking (separate vertical /
horizontal interpolation stages with selection, as in the Halide/FCam
``camera_pipe``), parity-based re-interleaving to full resolution, a 3x3
colour-correction matrix, and a tone curve applied through a
data-dependent lookup table (the paper notes the LUT stages are the one
part its compiler keeps out of the fused group).

Sizes must be even.  The reference implementation mirrors every stage.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.data.synth import bayer_raw
from repro.lang import (
    Case, Cast, Condition, Float, Function, Image, Int, Interval, Max, Min,
    Parameter, Pow, Select, UShort, Variable,
)

PAPER_ROWS, PAPER_COLS = 2528, 1920

#: white balance gains, colour correction matrix (sRGB-ish), tone curve
WB_R, WB_G, WB_B = 1.15, 1.0, 1.25
CCM = ((1.6, -0.4, -0.2),
       (-0.3, 1.5, -0.2),
       (-0.1, -0.5, 1.6))
GAMMA = 1.0 / 2.2
LUT_SIZE = 1024
SHARPEN_WEIGHT = 0.5


def build_pipeline(name_prefix: str = "") -> AppSpec:
    """Construct the 32-stage camera RAW pipeline of Table 2."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    raw = Image(UShort, [R, C], name=name_prefix + "raw")

    x, y = Variable("x"), Variable("y")
    full_r, full_c = Interval(0, R - 1, 1), Interval(0, C - 1, 1)
    half_r, half_c = Interval(0, R / 2 - 1, 1), Interval(0, C / 2 - 1, 1)

    def full_fn(name: str) -> Function:
        return Function(varDom=([x, y], [full_r, full_c]), typ=Float,
                        name=name_prefix + name)

    def half_fn(name: str) -> Function:
        return Function(varDom=([x, y], [half_r, half_c]), typ=Float,
                        name=name_prefix + name)

    # 1. scale to [0, 1] and suppress hot pixels against 2-away neighbours
    scaled = full_fn("scaled")
    scaled.defn = Cast(Float, raw(x, y)) * (1.0 / (LUT_SIZE - 1))

    inner2 = (Condition(x, ">=", 2) & Condition(x, "<=", R - 3)
              & Condition(y, ">=", 2) & Condition(y, "<=", C - 3))
    denoised = full_fn("denoised")
    neighbour_max = Max(Max(scaled(x - 2, y), scaled(x + 2, y)),
                        Max(scaled(x, y - 2), scaled(x, y + 2)))
    neighbour_min = Min(Min(scaled(x - 2, y), scaled(x + 2, y)),
                        Min(scaled(x, y - 2), scaled(x, y + 2)))
    denoised.defn = [Case(inner2, Min(Max(scaled(x, y), neighbour_min),
                                      neighbour_max))]

    # 2. deinterleave the GRBG mosaic into four half-res planes
    raw_gr = half_fn("raw_gr")
    raw_gr.defn = denoised(2 * x, 2 * y)
    raw_r = half_fn("raw_r")
    raw_r.defn = denoised(2 * x, 2 * y + 1)
    raw_b = half_fn("raw_b")
    raw_b.defn = denoised(2 * x + 1, 2 * y)
    raw_gb = half_fn("raw_gb")
    raw_gb.defn = denoised(2 * x + 1, 2 * y + 1)

    # 3. per-channel white balance
    gr = half_fn("gr")
    gr.defn = raw_gr(x, y) * WB_G
    r = half_fn("r")
    r.defn = raw_r(x, y) * WB_R
    b = half_fn("b")
    b.defn = raw_b(x, y) * WB_B
    gb = half_fn("gb")
    gb.defn = raw_gb(x, y) * WB_G

    half_inner = (Condition(x, ">=", 1) & Condition(x, "<=", R / 2 - 2)
                  & Condition(y, ">=", 1) & Condition(y, "<=", C / 2 - 2))

    def interp(name: str, expr) -> Function:
        f = half_fn(name)
        f.defn = [Case(half_inner, expr)]
        return f

    # 4. demosaic: green at red/blue via gradient-selected interpolation
    gv_r = interp("gv_r", (gb(x - 1, y) + gb(x, y)) * 0.5)
    gh_r = interp("gh_r", (gr(x, y + 1) + gr(x, y)) * 0.5)
    from repro.lang import Abs
    g_r = interp("g_r", Select(
        Abs(gb(x - 1, y) - gb(x, y)) < Abs(gr(x, y + 1) - gr(x, y)),
        gv_r(x, y), gh_r(x, y)))

    gv_b = interp("gv_b", (gr(x + 1, y) + gr(x, y)) * 0.5)
    gh_b = interp("gh_b", (gb(x, y - 1) + gb(x, y)) * 0.5)
    g_b = interp("g_b", Select(
        Abs(gr(x + 1, y) - gr(x, y)) < Abs(gb(x, y - 1) - gb(x, y)),
        gv_b(x, y), gh_b(x, y)))

    # red/blue at the other sites, with green-ratio correction
    r_gr = interp("r_gr", (r(x, y - 1) + r(x, y)) * 0.5
                  + gr(x, y) - (g_r(x, y - 1) + g_r(x, y)) * 0.5)
    b_gr = interp("b_gr", (b(x - 1, y) + b(x, y)) * 0.5
                  + gr(x, y) - (g_b(x - 1, y) + g_b(x, y)) * 0.5)
    r_gb = interp("r_gb", (r(x, y) + r(x + 1, y)) * 0.5
                  + gb(x, y) - (g_r(x, y) + g_r(x + 1, y)) * 0.5)
    b_gb = interp("b_gb", (b(x, y) + b(x, y + 1)) * 0.5
                  + gb(x, y) - (g_b(x, y) + g_b(x, y + 1)) * 0.5)
    r_b = interp("r_b", (r(x, y) + r(x + 1, y - 1) + r(x + 1, y)
                         + r(x, y - 1)) * 0.25
                 + g_b(x, y) - (g_r(x, y) + g_r(x + 1, y - 1)
                                + g_r(x + 1, y) + g_r(x, y - 1)) * 0.25)
    b_r = interp("b_r", (b(x, y) + b(x - 1, y + 1) + b(x - 1, y)
                         + b(x, y + 1)) * 0.25
                 + g_r(x, y) - (g_b(x, y) + g_b(x - 1, y + 1)
                                + g_b(x - 1, y) + g_b(x, y + 1)) * 0.25)

    # 5. interleave back to full resolution (parity cases)
    even_x = Condition(x % 2, "==", 0)
    odd_x = Condition(x % 2, "==", 1)
    even_y = Condition(y % 2, "==", 0)
    odd_y = Condition(y % 2, "==", 1)

    full_g = full_fn("full_g")
    full_g.defn = [
        Case(even_x & even_y, gr(x // 2, y // 2)),
        Case(even_x & odd_y, g_r(x // 2, y // 2)),
        Case(odd_x & even_y, g_b(x // 2, y // 2)),
        Case(odd_x & odd_y, gb(x // 2, y // 2)),
    ]
    full_red = full_fn("full_red")
    full_red.defn = [
        Case(even_x & even_y, r_gr(x // 2, y // 2)),
        Case(even_x & odd_y, r(x // 2, y // 2)),
        Case(odd_x & even_y, r_b(x // 2, y // 2)),
        Case(odd_x & odd_y, r_gb(x // 2, y // 2)),
    ]
    full_blue = full_fn("full_blue")
    full_blue.defn = [
        Case(even_x & even_y, b_gr(x // 2, y // 2)),
        Case(even_x & odd_y, b_r(x // 2, y // 2)),
        Case(odd_x & even_y, b(x // 2, y // 2)),
        Case(odd_x & odd_y, b_gb(x // 2, y // 2)),
    ]

    # 6. colour correction matrix
    channels = (full_red, full_g, full_blue)
    corrected = []
    for ci, name in enumerate(("corr_r", "corr_g", "corr_b")):
        f = full_fn(name)
        f.defn = sum(CCM[ci][k] * channels[k](x, y) for k in range(3))
        corrected.append(f)

    # 7. tone curve as a LUT, applied through data-dependent lookups
    z = Variable("z")
    curve = Function(varDom=([z], [Interval(0, LUT_SIZE - 1, 1)]),
                     typ=Float, name=name_prefix + "curve")
    curve.defn = Pow(Cast(Float, z) * (1.0 / (LUT_SIZE - 1)), GAMMA)

    c = Variable("c")
    processed = Function(
        varDom=([c, x, y], [Interval(0, 2, 1), full_r, full_c]),
        typ=Float, name=name_prefix + "processed")
    clamped = []
    for f in corrected:
        idx = Cast(Int, Min(Max(f(x, y), 0.0), 1.0) * (LUT_SIZE - 1))
        clamped.append(curve(idx))
    processed.defn = [
        Case(Condition(c, "==", 0), clamped[0]),
        Case(Condition(c, "==", 1), clamped[1]),
        Case(Condition(c, "==", 2), clamped[2]),
    ]

    # 8. final unsharp-mask sharpening
    inner1 = (Condition(x, ">=", 1) & Condition(x, "<=", R - 2)
              & Condition(y, ">=", 1) & Condition(y, "<=", C - 2))
    blurred = Function(
        varDom=([c, x, y], [Interval(0, 2, 1), full_r, full_c]),
        typ=Float, name=name_prefix + "blurred")
    blurred.defn = [Case(inner1, sum(
        processed(c, x + i, y + j)
        for i in (-1, 0, 1) for j in (-1, 0, 1)) / 9.0)]
    sharpened = Function(
        varDom=([c, x, y], [Interval(0, 2, 1), full_r, full_c]),
        typ=Float, name=name_prefix + "sharpened")
    sharpened.defn = [Case(inner1,
                           processed(c, x, y) * (1.0 + SHARPEN_WEIGHT)
                           - blurred(c, x, y) * SHARPEN_WEIGHT)]

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        return {raw: bayer_raw(values[R], values[C], rng)}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {sharpened.name: reference_camera(np.asarray(inputs[raw]))}

    return AppSpec(
        name="camera",
        params={"R": R, "C": C},
        images=(raw,),
        outputs=(sharpened,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


# ---------------------------------------------------------------------------
# Reference implementation (stage-by-stage mirror)
# ---------------------------------------------------------------------------

def reference_camera(raw: np.ndarray) -> np.ndarray:
    """Stage-by-stage NumPy oracle mirroring the DSL pipeline exactly."""
    R, C = raw.shape
    scaled = raw.astype(np.float32) / (LUT_SIZE - 1)

    denoised = np.zeros_like(scaled)
    core = np.s_[2:R - 2, 2:C - 2]
    nmax = np.maximum.reduce([scaled[0:R - 4, 2:C - 2],
                              scaled[4:R, 2:C - 2],
                              scaled[2:R - 2, 0:C - 4],
                              scaled[2:R - 2, 4:C]])
    nmin = np.minimum.reduce([scaled[0:R - 4, 2:C - 2],
                              scaled[4:R, 2:C - 2],
                              scaled[2:R - 2, 0:C - 4],
                              scaled[2:R - 2, 4:C]])
    denoised[core] = np.minimum(np.maximum(scaled[core], nmin), nmax)

    gr = denoised[0::2, 0::2] * np.float32(WB_G)
    r = denoised[0::2, 1::2] * np.float32(WB_R)
    b = denoised[1::2, 0::2] * np.float32(WB_B)
    gb = denoised[1::2, 1::2] * np.float32(WB_G)
    H, W_ = R // 2, C // 2

    def interior(arr):
        out = np.zeros((H, W_), np.float32)
        out[1:H - 1, 1:W_ - 1] = arr
        return out

    ix = np.s_[1:H - 1, 1:W_ - 1]

    def sh(a, dx, dy):
        return a[1 + dx:H - 1 + dx, 1 + dy:W_ - 1 + dy]

    gv_r = interior((sh(gb, -1, 0) + sh(gb, 0, 0)) * 0.5)
    gh_r = interior((sh(gr, 0, 1) + sh(gr, 0, 0)) * 0.5)
    g_r = interior(np.where(
        np.abs(sh(gb, -1, 0) - sh(gb, 0, 0))
        < np.abs(sh(gr, 0, 1) - sh(gr, 0, 0)),
        gv_r[ix], gh_r[ix]))

    gv_b = interior((sh(gr, 1, 0) + sh(gr, 0, 0)) * 0.5)
    gh_b = interior((sh(gb, 0, -1) + sh(gb, 0, 0)) * 0.5)
    g_b = interior(np.where(
        np.abs(sh(gr, 1, 0) - sh(gr, 0, 0))
        < np.abs(sh(gb, 0, -1) - sh(gb, 0, 0)),
        gv_b[ix], gh_b[ix]))

    r_gr = interior((sh(r, 0, -1) + sh(r, 0, 0)) * 0.5 + sh(gr, 0, 0)
                    - (sh(g_r, 0, -1) + sh(g_r, 0, 0)) * 0.5)
    b_gr = interior((sh(b, -1, 0) + sh(b, 0, 0)) * 0.5 + sh(gr, 0, 0)
                    - (sh(g_b, -1, 0) + sh(g_b, 0, 0)) * 0.5)
    r_gb = interior((sh(r, 0, 0) + sh(r, 1, 0)) * 0.5 + sh(gb, 0, 0)
                    - (sh(g_r, 0, 0) + sh(g_r, 1, 0)) * 0.5)
    b_gb = interior((sh(b, 0, 0) + sh(b, 0, 1)) * 0.5 + sh(gb, 0, 0)
                    - (sh(g_b, 0, 0) + sh(g_b, 0, 1)) * 0.5)
    r_b = interior((sh(r, 0, 0) + sh(r, 1, -1) + sh(r, 1, 0)
                    + sh(r, 0, -1)) * 0.25 + sh(g_b, 0, 0)
                   - (sh(g_r, 0, 0) + sh(g_r, 1, -1) + sh(g_r, 1, 0)
                      + sh(g_r, 0, -1)) * 0.25)
    b_r = interior((sh(b, 0, 0) + sh(b, -1, 1) + sh(b, -1, 0)
                    + sh(b, 0, 1)) * 0.25 + sh(g_r, 0, 0)
                   - (sh(g_b, 0, 0) + sh(g_b, -1, 1) + sh(g_b, -1, 0)
                      + sh(g_b, 0, 1)) * 0.25)

    def interleave(ee, eo, oe, oo):
        out = np.zeros((R, C), np.float32)
        out[0::2, 0::2] = ee
        out[0::2, 1::2] = eo
        out[1::2, 0::2] = oe
        out[1::2, 1::2] = oo
        return out

    full_g = interleave(gr, g_r, g_b, gb)
    full_red = interleave(r_gr, r, r_b, r_gb)
    full_blue = interleave(b_gr, b_r, b, b_gb)

    rgb = np.stack([full_red, full_g, full_blue])
    corrected = np.einsum("ck,kxy->cxy",
                          np.array(CCM, np.float32), rgb)

    lut = (np.arange(LUT_SIZE, dtype=np.float32)
           / (LUT_SIZE - 1)) ** np.float32(GAMMA)
    idx = (np.clip(corrected, 0.0, 1.0)
           * (LUT_SIZE - 1)).astype(np.int64)
    processed = lut[idx].astype(np.float32)

    blurred = np.zeros_like(processed)
    acc = np.zeros_like(processed[:, 1:R - 1, 1:C - 1])
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            acc += processed[:, 1 + i:R - 1 + i, 1 + j:C - 1 + j]
    blurred[:, 1:R - 1, 1:C - 1] = acc / 9.0
    sharpened = np.zeros_like(processed)
    sharpened[:, 1:R - 1, 1:C - 1] = (
        processed[:, 1:R - 1, 1:C - 1] * (1.0 + SHARPEN_WEIGHT)
        - blurred[:, 1:R - 1, 1:C - 1] * SHARPEN_WEIGHT)
    return sharpened
