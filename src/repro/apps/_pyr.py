"""Shared pyramid building blocks for the multi-scale applications.

Conventions used by pyramid blending, multiscale interpolation and the
local Laplacian filter:

* Level ``l`` of an ``N``-sized dimension has domain ``[0, N / 2**l]``
  (one pad cell beyond the data); sizes must be divisible by ``2**levels``.
* Boundaries use *zero padding*: stages define values only on their
  interior case; points outside stay at the implicit zero.  The NumPy
  reference implementations in each app mirror this exactly.
* Downsampling uses the separable 3-tap [1, 2, 1]/4 kernel on even
  samples; upsampling averages the four nearest coarse cells, which the
  pad cell keeps in-bounds without extra cases.
"""

from __future__ import annotations

import numpy as np

from repro.lang import Case, Condition, Expr, Float, Function, Interval
from repro.lang.constructs import Variable
from repro.lang.expr import Reference


def level_interval(size_expr, level: int) -> Interval:
    """Domain interval ``[0, size / 2**level]`` (includes one pad cell)."""
    return Interval(0, size_expr / (2 ** level), 1)


def down2(src, x: Variable, y: Variable) -> Expr:
    """Separable [1,2,1]/4 x [1,2,1]/4 downsample expression at (x, y)."""
    w = [1.0, 2.0, 1.0]
    total: Expr | None = None
    for i in range(3):
        for j in range(3):
            term = (w[i] * w[j] / 16.0) * src(2 * x + i - 1, 2 * y + j - 1)
            total = term if total is None else total + term
    return total


def down2_c(src, c: Variable, x: Variable, y: Variable) -> Expr:
    """Channel-carrying variant of :func:`down2`."""
    w = [1.0, 2.0, 1.0]
    total: Expr | None = None
    for i in range(3):
        for j in range(3):
            term = (w[i] * w[j] / 16.0) * src(c, 2 * x + i - 1,
                                              2 * y + j - 1)
            total = term if total is None else total + term
    return total


def up2(src, x: Variable, y: Variable) -> Expr:
    """Average of the four nearest coarse cells at fine point (x, y)."""
    return (src(x // 2, y // 2) + src((x + 1) // 2, y // 2)
            + src(x // 2, (y + 1) // 2)
            + src((x + 1) // 2, (y + 1) // 2)) * 0.25


def up2_c(src, c: Variable, x: Variable, y: Variable) -> Expr:
    return (src(c, x // 2, y // 2) + src(c, (x + 1) // 2, y // 2)
            + src(c, x // 2, (y + 1) // 2)
            + src(c, (x + 1) // 2, (y + 1) // 2)) * 0.25


def interior_condition(x: Variable, y: Variable, size_r, size_c,
                       level: int):
    """``1 <= x <= R/2^l - 1 & 1 <= y <= C/2^l - 1`` (zero-pad border)."""
    return (Condition(x, ">=", 1)
            & Condition(x, "<=", size_r / (2 ** level) - 1)
            & Condition(y, ">=", 1)
            & Condition(y, "<=", size_c / (2 ** level) - 1))


# ---------------------------------------------------------------------------
# NumPy reference counterparts (identical zero-pad semantics)
# ---------------------------------------------------------------------------

def ref_down2(src: np.ndarray) -> np.ndarray:
    """Reference of a stage defined by :func:`down2` on the interior.

    ``src`` has shape ``(S + 1, T + 1)`` for a level of size (S, T); the
    result has shape ``(S // 2 + 1, T // 2 + 1)`` with zero borders.
    """
    S, T = src.shape[0] - 1, src.shape[1] - 1
    out = np.zeros((S // 2 + 1, T // 2 + 1), dtype=src.dtype)
    w = np.array([1.0, 2.0, 1.0], dtype=np.float64) / 4.0
    xs = np.arange(1, S // 2)
    ys = np.arange(1, T // 2)
    if len(xs) == 0 or len(ys) == 0:
        return out
    acc = np.zeros((len(xs), len(ys)), dtype=np.float64)
    for i in range(3):
        for j in range(3):
            acc += (w[i] * w[j]) * src[np.ix_(2 * xs + i - 1,
                                              2 * ys + j - 1)]
    out[1:S // 2, 1:T // 2] = acc.astype(src.dtype)
    return out


def ref_up2(src: np.ndarray, fine_shape: tuple[int, int]) -> np.ndarray:
    """Reference of :func:`up2` over a full fine-level domain."""
    S, T = fine_shape
    x = np.arange(S)
    y = np.arange(T)
    x0, x1 = x // 2, (x + 1) // 2
    y0, y1 = y // 2, (y + 1) // 2
    return 0.25 * (src[np.ix_(x0, y0)] + src[np.ix_(x1, y0)]
                   + src[np.ix_(x0, y1)] + src[np.ix_(x1, y1)])
