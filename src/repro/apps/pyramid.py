"""Pyramid blending (Table 2: 44 stages, 2048x2048x3; Figure 8).

Blends two multi-focus images with a mask through Laplacian pyramids:
Gaussian pyramids of both inputs and the mask (separable ``downx`` /
``downy`` stages, as in Figure 8's graph), Laplacian levels
``l = g_l - up(g_{l+1})``, per-level mask blending, and collapse.

Image sizes must be divisible by ``2**(levels-1)``.  Borders use the
zero-padding convention of :mod:`repro.apps._pyr`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.apps.base import AppSpec
from repro.apps._pyr import level_interval, up2_c
from repro.data.synth import multifocus_pair
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Variable,
)

PAPER_ROWS, PAPER_COLS = 2048, 2048
DEFAULT_LEVELS = 4

W = (0.25, 0.5, 0.25)


def build_pipeline(levels: int = DEFAULT_LEVELS,
                   name_prefix: str = "") -> AppSpec:
    """Construct the pyramid-blending pipeline (Figure 8, Table 2)."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    A = Image(Float, [3, R + 1, C + 1], name=name_prefix + "A")
    B = Image(Float, [3, R + 1, C + 1], name=name_prefix + "B")
    M = Image(Float, [R + 1, C + 1], name=name_prefix + "M")

    c, x, y = Variable("c"), Variable("x"), Variable("y")
    chan = Interval(0, 2, 1)

    def dom(l: int):
        return [chan, level_interval(R, l), level_interval(C, l)]

    def dom2(l: int):
        return [level_interval(R, l), level_interval(C, l)]

    def fn(name: str, l: int, with_chan: bool = True) -> Function:
        if with_chan:
            return Function(varDom=([c, x, y], dom(l)), typ=Float,
                            name=name_prefix + name)
        return Function(varDom=([x, y], dom2(l)), typ=Float,
                        name=name_prefix + name)

    def interior(l: int, half_x: bool, half_y: bool):
        sx = R / (2 ** l)
        sy = C / (2 ** l)
        cond = None
        if half_x:
            cond = Condition(x, ">=", 1) & Condition(x, "<=", sx - 1)
        if half_y:
            cy = Condition(y, ">=", 1) & Condition(y, "<=", sy - 1)
            cond = cy if cond is None else cond & cy
        return cond

    # Gaussian pyramids: separable downx (halves x) then downy (halves y).
    def build_gaussian(source, with_chan: bool, tag: str):
        levels_list = [source]
        for l in range(1, levels):
            if with_chan:
                dx = Function(
                    varDom=([c, x, y],
                            [chan, level_interval(R, l),
                             level_interval(C, l - 1)]),
                    typ=Float, name=f"{name_prefix}downx_{tag}{l}")
                prev = levels_list[-1]
                dx.defn = [Case(interior(l, True, False), sum(
                    W[i] * prev(c, 2 * x + i - 1, y) for i in range(3)))]
                dy = fn(f"downy_{tag}{l}", l)
                dy.defn = [Case(interior(l, True, True), sum(
                    W[j] * dx(c, x, 2 * y + j - 1) for j in range(3)))]
            else:
                dx = Function(
                    varDom=([x, y],
                            [level_interval(R, l), level_interval(C, l - 1)]),
                    typ=Float, name=f"{name_prefix}downx_{tag}{l}")
                prev = levels_list[-1]
                dx.defn = [Case(interior(l, True, False), sum(
                    W[i] * prev(2 * x + i - 1, y) for i in range(3)))]
                dy = fn(f"downy_{tag}{l}", l, with_chan=False)
                dy.defn = [Case(interior(l, True, True), sum(
                    W[j] * dx(x, 2 * y + j - 1) for j in range(3)))]
            levels_list.append(dy)
        return levels_list

    gA = build_gaussian(A, True, "A")
    gB = build_gaussian(B, True, "B")
    gM = build_gaussian(M, False, "M")

    # Laplacian levels: l_k = g_k - up(g_{k+1}); the coarsest level is the
    # Gaussian top itself.
    def build_laplacian(g, tag: str):
        laps = []
        for l in range(levels - 1):
            up = fn(f"up_{tag}{l}", l)
            up.defn = up2_c(g[l + 1], c, x, y)
            lap = fn(f"lap_{tag}{l}", l)
            lap.defn = g[l](c, x, y) - up(c, x, y)
            laps.append(lap)
        laps.append(g[levels - 1])
        return laps

    lA = build_laplacian(gA, "A")
    lB = build_laplacian(gB, "B")

    # Blend each level with the mask pyramid.
    blend = []
    for l in range(levels):
        bl = fn(f"blend{l}", l)
        bl.defn = (gM[l](x, y) * lA[l](c, x, y)
                   + (1.0 - gM[l](x, y)) * lB[l](c, x, y))
        blend.append(bl)

    # Collapse: out_{levels-1} = blend_{levels-1};
    # out_l = blend_l + up(out_{l+1}).
    out = blend[levels - 1]
    for l in range(levels - 2, -1, -1):
        upo = fn(f"upout{l}", l)
        upo.defn = up2_c(out, c, x, y)
        nxt = fn(f"out{l}" if l else "blended", l)
        nxt.defn = blend[l](c, x, y) + upo(c, x, y)
        out = nxt

    def make_inputs(values: Mapping[Parameter, int],
                    rng: np.random.Generator) -> dict[Image, np.ndarray]:
        r, cl = values[R], values[C]
        a = np.zeros((3, r + 1, cl + 1), np.float32)
        b = np.zeros((3, r + 1, cl + 1), np.float32)
        m = np.zeros((r + 1, cl + 1), np.float32)
        left, right, mask = multifocus_pair(r, cl, rng)
        a[:, :r, :cl] = left
        b[:, :r, :cl] = right
        m[:r, :cl] = mask
        return {A: a, B: b, M: m}

    def reference(inputs, values) -> dict[str, np.ndarray]:
        return {out.name: reference_blend(
            np.asarray(inputs[A]), np.asarray(inputs[B]),
            np.asarray(inputs[M]), levels)}

    return AppSpec(
        name="pyramid_blend",
        params={"R": R, "C": C},
        images=(A, B, M),
        outputs=(out,),
        default_estimates={R: PAPER_ROWS, C: PAPER_COLS},
        reference=reference,
        make_inputs=make_inputs,
    )


# ---------------------------------------------------------------------------
# Reference implementation (identical zero-pad semantics)
# ---------------------------------------------------------------------------

def _ref_downx(src: np.ndarray) -> np.ndarray:
    """Halve the second-to-last axis with [1,2,1]/4 on the interior."""
    S = src.shape[-2] - 1
    out_shape = src.shape[:-2] + (S // 2 + 1, src.shape[-1])
    out = np.zeros(out_shape, src.dtype)
    xs = np.arange(1, S // 2)
    if len(xs):
        acc = sum(W[i] * src[..., 2 * xs + i - 1, :] for i in range(3))
        out[..., 1:S // 2, :] = acc
    return out


def _ref_downy(src: np.ndarray) -> np.ndarray:
    S = src.shape[-1] - 1
    out_shape = src.shape[:-1] + (S // 2 + 1,)
    out = np.zeros(out_shape, src.dtype)
    ys = np.arange(1, S // 2)
    if len(ys):
        acc = sum(W[j] * src[..., 2 * ys + j - 1] for j in range(3))
        # downx already zeroed its border rows; mask x border too
        acc[..., 0, :] = 0
        acc[..., -1, :] = 0
        out[..., 1:S // 2] = acc
    return out


def _ref_up(src: np.ndarray, fine_shape: tuple[int, int]) -> np.ndarray:
    S, T = fine_shape
    x = np.arange(S)
    y = np.arange(T)
    x0, x1 = x // 2, (x + 1) // 2
    y0, y1 = y // 2, (y + 1) // 2
    return 0.25 * (src[..., x0[:, None], y0[None, :]]
                   + src[..., x1[:, None], y0[None, :]]
                   + src[..., x0[:, None], y1[None, :]]
                   + src[..., x1[:, None], y1[None, :]])


def reference_blend(A: np.ndarray, B: np.ndarray, M: np.ndarray,
                    levels: int) -> np.ndarray:
    """NumPy oracle with identical zero-pad pyramid semantics."""
    A = A.astype(np.float32)
    B = B.astype(np.float32)
    M = M.astype(np.float32)

    def gaussian(img):
        g = [img]
        for _ in range(1, levels):
            g.append(_ref_downy(_ref_downx(g[-1])))
        return g

    gA, gB, gM = gaussian(A), gaussian(B), gaussian(M)

    def laplacian(g):
        laps = []
        for l in range(levels - 1):
            fine_shape = g[l].shape[-2:]
            laps.append(g[l] - _ref_up(g[l + 1], fine_shape))
        laps.append(g[levels - 1])
        return laps

    lA, lB = laplacian(gA), laplacian(gB)
    blend = [gM[l][None, :, :] * lA[l] + (1.0 - gM[l][None, :, :]) * lB[l]
             for l in range(levels)]
    out = blend[levels - 1]
    for l in range(levels - 2, -1, -1):
        out = blend[l] + _ref_up(out, blend[l].shape[-2:])
    return out.astype(np.float32)
