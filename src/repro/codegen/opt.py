"""Fast-path analysis for the C backend (interior/boundary specialization).

The safe loop nests :mod:`repro.codegen.cgen` emits route every
data-dependent access through ``iclamp`` and every flooring division
through the ``fdiv``/``pmod`` helpers — correct everywhere, but paid on
every pixel.  This module derives, per case loop nest, the *interior*
fast path:

* **Clamp elimination** — for each clamped (non-affine) access, the
  value range of the index expression over the current loop bounds is
  propagated symbolically (mirroring
  :func:`repro.poly.interval.evaluate_expr`, but producing C expressions
  over the tile-scope bound variables).  When the range is derivable,
  the containment test ``range ⊆ producer extent`` becomes a cheap
  runtime guard evaluated once per tile; tiles where it holds take a
  clamp-free nest, boundary tiles keep the safe clamped code.
* **Strength reduction** — ``fdiv(e, m)`` / ``pmod(e, m)`` with a
  constant positive ``m`` collapse to C's native ``/`` and ``%`` (which
  gcc turns into shifts/masks) under a proven ``e >= 0`` guard; C
  truncating division equals flooring division exactly on non-negative
  numerators, so results stay bit-identical.
* **CSE / hoisting** (:class:`FastBody`) — per-reference row offsets
  that do not involve the innermost loop variable are hoisted into
  locals above the innermost loop, and repeated loads are deduplicated
  into scalars, so the innermost loop body is straight-line arithmetic
  the vectorizer can digest.

All guards are *sound for every parameter value*: they are evaluated at
runtime from the same bound variables the loops use, so a failed proof
merely falls back to the safe nest — never to wrong code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import (
    BinOp, Call, Cast, Expr, Literal, Reference, Select, UnOp,
)
from repro.pipeline.ir import StageIR
from repro.poly.affine import analyze_access
from repro.poly.interval import IntInterval, evaluate_expr


# ---------------------------------------------------------------------------
# Symbolic (C-expression) interval propagation
# ---------------------------------------------------------------------------

def _walk(expr: Expr):
    """Pre-order traversal of an expression tree (conditions included)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def expr_variables(expr: Expr) -> set[int]:
    """``id()`` of every :class:`Variable` appearing in the expression."""
    return {id(n) for n in _walk(expr) if isinstance(n, Variable)}


def c_range(expr: Expr, gen, var_bounds: dict[int, tuple[str, str]]
            ) -> tuple[str, str] | None:
    """C expressions for the (lo, hi) value range of ``expr``.

    ``var_bounds`` maps ``id(Variable)`` to the names of the C variables
    holding that loop's inclusive bounds; ``gen`` supplies parameter
    naming.  Returns ``None`` when the expression leaves the supported
    fragment — the caller then keeps the safe code for it.  The string
    semantics mirror :func:`repro.poly.interval.evaluate_expr` exactly.
    """
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return f"{expr.value}L", f"{expr.value}L"
    if isinstance(expr, Variable):
        return var_bounds.get(id(expr))
    if isinstance(expr, Parameter):
        name = gen.param(expr)
        return name, name
    if isinstance(expr, UnOp):
        r = c_range(expr.operand, gen, var_bounds)
        if r is None:
            return None
        return f"(-({r[1]}))", f"(-({r[0]}))"
    if isinstance(expr, Cast):
        if expr.dtype.is_float:
            return None
        return c_range(expr.operand, gen, var_bounds)
    if isinstance(expr, BinOp):
        left = c_range(expr.left, gen, var_bounds)
        if left is None:
            return None
        if expr.op in ("//", "%"):
            right = expr.right
            if not (isinstance(right, Literal)
                    and isinstance(right.value, int) and right.value > 0):
                return None
            if expr.op == "%":
                return "0L", f"{right.value - 1}L"
            m = right.value
            return f"fdiv({left[0]}, {m}L)", f"fdiv({left[1]}, {m}L)"
        right = c_range(expr.right, gen, var_bounds)
        if right is None:
            return None
        if expr.op == "+":
            return (f"({left[0]}) + ({right[0]})",
                    f"({left[1]}) + ({right[1]})")
        if expr.op == "-":
            return (f"({left[0]}) - ({right[1]})",
                    f"({left[1]}) - ({right[0]})")
        if expr.op == "*":
            # only multiplication by a literal keeps the bounds linear
            for a, b in ((expr.left, right), (expr.right, left)):
                if isinstance(a, Literal) and isinstance(a.value, int):
                    c = a.value
                    if c >= 0:
                        return f"{c}L*({b[0]})", f"{c}L*({b[1]})"
                    return f"{c}L*({b[1]})", f"{c}L*({b[0]})"
            return None
        return None
    if isinstance(expr, Call):
        if expr.name not in ("min", "max"):
            return None
        ranges = [c_range(a, gen, var_bounds) for a in expr.args]
        if any(r is None for r in ranges) or not ranges:
            return None
        helper = "imin" if expr.name == "min" else "imax"
        lo, hi = ranges[0]
        for r in ranges[1:]:
            lo = f"{helper}({lo}, {r[0]})"
            hi = f"{helper}({hi}, {r[1]})"
        return lo, hi
    if isinstance(expr, Select):
        t = c_range(expr.true_expr, gen, var_bounds)
        f = c_range(expr.false_expr, gen, var_bounds)
        if t is None or f is None:
            return None
        return f"imin({t[0]}, {f[0]})", f"imax({t[1]}, {f[1]})"
    return None


# ---------------------------------------------------------------------------
# Per-case fast-path plan
# ---------------------------------------------------------------------------

@dataclass
class CasePlan:
    """What the fast nest of one case may legally do, and at what price.

    ``conds`` are C boolean expressions over tile-scope bound variables;
    their conjunction guards the fast nest.  An empty list means the
    fast nest is unconditionally valid (it then replaces the safe nest
    outright instead of an ``if``/``else`` pair).
    """

    conds: list[str] = field(default_factory=list)
    #: ``(id(Reference), dim)`` pairs whose ``iclamp`` the fast nest drops
    drop_clamps: set[tuple[int, int]] = field(default_factory=set)
    #: ``id(BinOp)`` of ``//``/``%`` nodes emitted as native ``/`` ``%``
    reduce_divs: set[int] = field(default_factory=set)
    # report counters
    n_clamped_dims: int = 0
    n_divs: int = 0

    @property
    def guarded(self) -> bool:
        return bool(self.conds)

    @property
    def n_dropped(self) -> int:
        return len(self.drop_clamps)

    @property
    def n_reduced(self) -> int:
        return len(self.reduce_divs)


def analyze_case(gen, stage_ir: StageIR, case,
                 var_bounds: dict[int, tuple[str, str]]) -> CasePlan:
    """Derive the fast-path plan for one case of a stage.

    ``gen`` is the emitting :class:`~repro.codegen.cgen.CGenerator`
    (used for parameter and extent naming); ``var_bounds`` names the C
    variables holding each loop's inclusive bounds at the point the
    guard will be evaluated.
    """
    plan = CasePlan()
    seen_conds: set[str] = set()

    def add_cond(cond: str) -> None:
        if cond not in seen_conds:
            seen_conds.add(cond)
            plan.conds.append(cond)

    for node in _walk(case.expression):
        if isinstance(node, Reference):
            for d, arg in enumerate(node.args):
                if analyze_access(arg) is not None:
                    continue  # affine: already clamp-free and region-proven
                plan.n_clamped_dims += 1
                rng = c_range(arg, gen, var_bounds)
                if rng is None:
                    continue
                lo_name, hi_name = gen._extent_names(node.function, d)
                plan.drop_clamps.add((id(node), d))
                add_cond(f"({rng[0]}) >= {lo_name}")
                add_cond(f"({rng[1]}) <= {hi_name}")
        elif isinstance(node, BinOp) and node.op in ("//", "%"):
            right = node.right
            if not (isinstance(right, Literal)
                    and isinstance(right.value, int) and right.value > 0):
                continue
            plan.n_divs += 1
            rng = c_range(node.left, gen, var_bounds)
            if rng is None:
                continue
            plan.reduce_divs.add(id(node))
            add_cond(f"({rng[0]}) >= 0L")
    return plan


def simd_safe(stage_ir: StageIR, case) -> bool:
    """True when the innermost loop's stores are provably unit-stride and
    alias-free, so ``ivdep``/``omp simd`` are legal.

    Stores index the target by the loop variables directly (unit stride
    along the innermost dimension by construction); the remaining hazard
    is the stage reading its own buffer, which only self-referential
    stages do — those are emitted by a dedicated scalar path, but we
    verify here rather than assume.
    """
    if stage_ir.ndim < 1:
        return False
    target = stage_ir.stage
    for node in _walk(case.expression):
        if isinstance(node, Reference) and node.function is target:
            return False
    return True


# ---------------------------------------------------------------------------
# Fast-body CSE / hoisting
# ---------------------------------------------------------------------------

class FastBody:
    """Collects hoisted row offsets and CSE'd loads for one fast nest.

    The generator builds the body expression *before* emitting the
    innermost loop; every access registered here lands either in
    ``offset_decls`` (emitted above the innermost loop — index terms
    free of the innermost variable) or ``load_decls`` (emitted at the
    top of the innermost body — each distinct load read exactly once).
    """

    def __init__(self, plan: CasePlan, innermost_id: int | None):
        self.plan = plan
        self.innermost_id = innermost_id
        self._offsets: dict[str, str] = {}
        self._loads: dict[str, str] = {}
        self.offset_decls: list[str] = []
        self.load_decls: list[str] = []

    def hoistable(self, arg: Expr) -> bool:
        """May this index expression move above the innermost loop?"""
        return (self.innermost_id is not None
                and self.innermost_id not in expr_variables(arg))

    def offset(self, expr: str) -> str:
        name = self._offsets.get(expr)
        if name is None:
            name = f"_ro{len(self._offsets)}"
            self._offsets[expr] = name
            self.offset_decls.append(f"const long {name} = {expr};")
        return name

    def load(self, access: str, ctype: str) -> str:
        name = self._loads.get(access)
        if name is None:
            name = f"_ld{len(self._loads)}"
            self._loads[access] = name
            self.load_decls.append(f"const {ctype} {name} = {access};")
        return name

    @property
    def n_hoisted(self) -> int:
        return len(self._offsets)

    @property
    def n_loads_cse(self) -> int:
        return len(self._loads)


# ---------------------------------------------------------------------------
# Reporting (explain()/summary())
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StageFastInfo:
    """Static specialization facts for one stage (all cases pooled)."""

    stage: str
    group: int
    tiled: bool
    n_cases: int
    n_clamped_dims: int
    n_dropped: int
    n_divs: int
    n_reduced: int
    guarded: bool
    #: fraction of the stage's domain provably interior under the
    #: estimates (1.0 when unconditional; None when not derivable)
    interior_fraction: float | None

    def render(self) -> str:
        if self.n_clamped_dims == 0 and self.n_divs == 0:
            detail = "no clamps or helper divisions; fast path unconditional"
        else:
            parts = []
            if self.n_clamped_dims:
                parts.append(f"clamps eliminated {self.n_dropped}/"
                             f"{self.n_clamped_dims}")
            if self.n_divs:
                parts.append(f"divisions reduced {self.n_reduced}/"
                             f"{self.n_divs}")
            parts.append("guarded per tile" if self.guarded
                         else "unconditional")
            detail = ", ".join(parts)
        if self.interior_fraction is not None and self.guarded:
            detail += (f"; interior covers "
                       f"{self.interior_fraction * 100.0:.0f}% of the "
                       "domain at the estimates")
        return f"{self.stage}: {detail}"


class _NullNamer:
    """Parameter/extent naming shim for analysis without a generator."""

    def param(self, p: Parameter) -> str:
        return p.name

    def _extent_names(self, producer, d: int) -> tuple[str, str]:
        return f"{producer.name}_lo{d}", f"{producer.name}_hi{d}"


def _producer_box(plan, producer, env: dict
                  ) -> tuple[IntInterval, ...] | None:
    """Concrete stored extents of a producer (image or stage) at ``env``."""
    from repro.lang.image import Image
    from repro.poly.affine import to_affine
    if isinstance(producer, Image):
        box = []
        for e in producer.extents:
            n = to_affine(e, params_only=True).evaluate_int(env)
            if n < 1:
                return None
            box.append(IntInterval(0, n - 1))
        return tuple(box)
    try:
        stage_ir = plan.ir[producer]
    except KeyError:
        return None
    return stage_ir.domain.concretize(env)


def _interior_fraction(plan, stage_ir: StageIR, env: dict) -> float | None:
    """Fraction of the stage's fast-path proofs that hold over the whole
    domain under ``env``.

    Replays the clamp-containment and non-negativity proofs concretely
    with :func:`repro.poly.interval.evaluate_expr` over the concretized
    domain: conservative (a failed concrete proof counts as boundary),
    and exactly 1.0 when every guard holds over the whole domain.
    """
    box = stage_ir.domain.concretize(env)
    if box is None:
        return None
    var_env: dict = dict(env)
    for var, ivl in zip(stage_ir.variables, box):
        var_env[var] = ivl
    total = ok = 0
    for case in stage_ir.cases:
        for node in _walk(case.expression):
            if isinstance(node, Reference):
                for d, arg in enumerate(node.args):
                    if analyze_access(arg) is not None:
                        continue
                    total += 1
                    rng = evaluate_expr(arg, var_env)
                    dom = _producer_box(plan, node.function, env)
                    if rng is None or dom is None:
                        continue
                    if dom[d].contains(rng):
                        ok += 1
            elif isinstance(node, BinOp) and node.op in ("//", "%"):
                right = node.right
                if not (isinstance(right, Literal)
                        and isinstance(right.value, int)
                        and right.value > 0):
                    continue
                total += 1
                rng = evaluate_expr(node.left, var_env)
                if rng is not None and rng.lo >= 0:
                    ok += 1
    if total == 0:
        return 1.0
    return ok / total


def specialization_report(plan) -> list[StageFastInfo]:
    """Per-stage fast-path facts for ``explain()``/``summary()``."""
    null = _NullNamer()
    infos: list[StageFastInfo] = []
    env = dict(plan.estimates)
    for gi, gp in enumerate(plan.group_plans):
        for stage in gp.ordered_stages:
            stage_ir = plan.ir[stage]
            if stage_ir.is_accumulator or stage_ir.is_self_referential:
                continue
            var_bounds = {id(v): (f"c{d}lb", f"c{d}ub")
                          for d, v in enumerate(stage_ir.variables)}
            n_clamped = n_dropped = n_divs = n_reduced = 0
            guarded = False
            for case in stage_ir.cases:
                cp = analyze_case(null, stage_ir, case, var_bounds)
                n_clamped += cp.n_clamped_dims
                n_dropped += cp.n_dropped
                n_divs += cp.n_divs
                n_reduced += cp.n_reduced
                guarded = guarded or cp.guarded
            infos.append(StageFastInfo(
                stage=stage.name, group=gi, tiled=gp.is_tiled,
                n_cases=len(stage_ir.cases),
                n_clamped_dims=n_clamped, n_dropped=n_dropped,
                n_divs=n_divs, n_reduced=n_reduced, guarded=guarded,
                interior_fraction=_interior_fraction(plan, stage_ir, env)
                if guarded else (1.0 if n_divs or n_clamped else None)))
    return infos
