"""C code generation backend (paper Section 3.7).

:mod:`repro.codegen.cgen` emits Figure 7-style C for a compiled plan;
:mod:`repro.codegen.build` compiles it with the system C compiler and
wraps the shared object in a callable :class:`NativePipeline`.
"""

from repro.codegen.build import (
    BuildError, NativePipeline, build_native, compiler_available,
    find_compiler,
)
from repro.codegen.cgen import CodegenError, generate_c

__all__ = ["BuildError", "CodegenError", "NativePipeline", "build_native",
           "compiler_available", "find_compiler", "generate_c"]
