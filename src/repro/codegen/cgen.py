"""C code generation (paper Section 3.7, Figure 7).

Emits a single C function implementing the compiled pipeline.  The
generated code has the same structure as the paper's Figure 7:

* an OpenMP-parallel loop over the leading tile dimension of each tiled
  group, with tile-local scratchpad allocations at the top of its body;
* per-stage loop nests whose bounds are clamped intersections of the tile
  region with each case's bound constraints (``max(1, 32*Ti)`` style);
* relative (tile-origin) indexing into scratchpads, absolute indexing
  into full buffers;
* ``#pragma GCC ivdep`` on unit-stride innermost loops so the C
  compiler's vectorizer can do its job (the paper relies on icc the same
  way).

Floor division/modulo helpers keep integer semantics identical to the
DSL's (and NumPy's) flooring behaviour, which C's truncating division
does not provide.

Under ``CompileOptions.specialize`` (the default) each case loop nest
additionally gets an interior fast path (see :mod:`repro.codegen.opt`):
clamp-free, strength-reduced, CSE'd nests behind a per-tile guard with
``#pragma omp simd`` innermost, while boundary tiles keep the safe
clamped code; scratchpads move from per-invocation ``malloc`` into a
persistent per-thread arena released via the exported
``<func>_release()``.

Under ``CompileOptions.narrow`` stages whose value range the static
analysis proved (:mod:`repro.analysis.ranges`) store into the narrowest
safe C type: scratchpads, arena slots and full intermediates shrink and
loads get SIMD-friendlier, while every computation keeps its original
arithmetic type (sub-``int`` loads re-promote to ``int`` exactly;
``double`` stages narrowed to ``float`` are re-widened at each use).
With ``narrow`` off the output is byte-identical to previous versions.

Every translation unit additionally exports a multi-frame entry point
``<func>_batch(int n, int nthreads, params..., const T* const*
in_frames..., T* const* out_frames...)`` that runs the identical
pipeline body over ``n`` frames while paying the fixed per-call costs
(thread-team setup, arena reservation, intermediate allocation, the
ctypes crossing) once — the serving layer coalesces compatible queued
requests into one such call (``docs/internals.md`` §17).
"""

from __future__ import annotations

import re
from fractions import Fraction
from math import lcm
from typing import Hashable, Mapping, Sequence

from repro.codegen import opt
from repro.compiler.plan import GroupPlan, PipelinePlan
from repro.compiler.storage import SCRATCH
from repro.compiler.tiling import Halo
from repro.lang.constructs import Parameter, Variable
from repro.lang.expr import (
    BinOp, BoolExpr, Call, Cast, CondAnd, Condition, CondNot, CondOr, Expr,
    Literal, Reference, Select, TrueCond,
)
from repro.lang.function import Accumulator, Reduction
from repro.lang.image import Image
from repro.lang.types import DType
from repro.pipeline.graph import Stage
from repro.pipeline.ir import StageIR
from repro.poly.affine import AffExpr, analyze_access, to_affine
from repro.poly.iset import DimBounds

PRELUDE = r"""
#include <math.h>
#include <stdlib.h>
#include <string.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* pure helpers: __attribute__((const)) lets the C compiler CSE and hoist
   calls even in the residual boundary loops that keep them */
#if defined(__GNUC__) || defined(__clang__)
#define REPRO_CONST __attribute__((const))
#else
#define REPRO_CONST
#endif

/* floor division / modulo with Python semantics */
REPRO_CONST static inline long fdiv(long a, long b) {
    long q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
REPRO_CONST static inline long cdiv(long a, long b) { return -fdiv(-a, b); }
REPRO_CONST static inline long pmod(long a, long b) {
    long r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
REPRO_CONST static inline long imin(long a, long b) { return a < b ? a : b; }
REPRO_CONST static inline long imax(long a, long b) { return a > b ? a : b; }
REPRO_CONST static inline double dmin(double a, double b) {
    return a < b ? a : b;
}
REPRO_CONST static inline double dmax(double a, double b) {
    return a > b ? a : b;
}
REPRO_CONST static inline long iclamp(long v, long lo, long hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}
"""

#: innermost scratch extents are padded to this many elements so rows
#: start on cache-line/vector boundaries inside the per-thread arena
SCRATCH_PAD = 16

#: arena base (and per-stage offset) alignment in bytes
ARENA_ALIGN = 64


def _sanitize(name: str) -> str:
    out = re.sub(r"\W", "_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


class CWriter:
    """Tiny indentation-aware source writer."""

    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    def open(self, line: str) -> None:
        self.emit(line + " {")
        self.depth += 1

    def close(self, suffix: str = "") -> None:
        self.depth -= 1
        self.emit("}" + suffix)

    def __str__(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodegenError(RuntimeError):
    """The plan contains a construct the C backend does not support."""


class _Namer:
    def __init__(self):
        self.used: set[str] = set()
        self.map: dict[tuple[int, str], str] = {}

    def name(self, obj: Hashable, prefix: str, base: str) -> str:
        """Unique C identifier for ``obj`` under ``prefix``."""
        key = (id(obj), prefix)
        if key in self.map:
            return self.map[key]
        candidate = prefix + _sanitize(base)
        n = candidate
        i = 1
        while n in self.used:
            n = f"{candidate}_{i}"
            i += 1
        self.used.add(n)
        self.map[key] = n
        return n


def _is_float_expr(expr: Expr) -> bool:
    """Light type inference: does the expression produce floating values?"""
    if isinstance(expr, Literal):
        return isinstance(expr.value, float)
    if isinstance(expr, Variable) or isinstance(expr, Parameter):
        return isinstance(expr, Parameter) and expr.dtype.is_float
    if isinstance(expr, Reference):
        return expr.function.dtype.is_float
    if isinstance(expr, Cast):
        return expr.dtype.is_float
    if isinstance(expr, BinOp):
        if expr.op == "/":
            return True
        if expr.op in ("//", "%"):
            return False
        return _is_float_expr(expr.left) or _is_float_expr(expr.right)
    if isinstance(expr, Select):
        return (_is_float_expr(expr.true_expr)
                or _is_float_expr(expr.false_expr))
    if isinstance(expr, Call):
        return True
    from repro.lang.expr import UnOp
    if isinstance(expr, UnOp):
        return _is_float_expr(expr.operand)
    return False


INSTRUMENT_PRELUDE = r"""
/* instrumentation (generated with instrument=True) */
#ifdef _OPENMP
static inline double repro_now(void) { return omp_get_wtime(); }
#else
#include <time.h>
static inline double repro_now(void) {
    struct timespec repro_ts;
    clock_gettime(CLOCK_MONOTONIC, &repro_ts);
    return (double)repro_ts.tv_sec + 1e-9 * (double)repro_ts.tv_nsec;
}
#endif
"""


class CGenerator:
    """Generates the C implementation of one :class:`PipelinePlan`.

    With ``instrument=True`` the translation unit additionally carries a
    per-group wall-clock accumulator and tile counter, plus two exported
    accessors — ``<func>_stats(double*, long*)`` and
    ``<func>_stats_reset()`` — that :class:`repro.codegen.build.\
NativePipeline` reads back through ctypes.  Uninstrumented output is
    byte-identical to what older versions produced.
    """

    def __init__(self, plan: PipelinePlan, name: str = "pipeline",
                 instrument: bool = False):
        self.plan = plan
        self.func_name = "pipe_" + _sanitize(name)
        self.instrument = instrument
        self.w = CWriter()
        self.names = _Namer()
        self.params: list[Parameter] = sorted(
            plan.estimates, key=lambda p: p.name)
        self.images: list[Image] = list(plan.ir.graph.inputs)
        self.outputs: list[Stage] = list(plan.outputs)
        self._scratch_sizes: dict[Stage, tuple[int, ...]] = {}
        self._liveout_local: set[Stage] = set()
        #: active fast-path body context (set while emitting a fast nest)
        self._fast_ctx: opt.FastBody | None = None
        self._uses_arena = False

    # -- naming -------------------------------------------------------------
    def buf(self, obj) -> str:
        """C name of the full buffer backing an image, output or stage."""
        if isinstance(obj, Image):
            return self.names.name(obj, "im_", obj.name)
        if obj in set(self.outputs):
            return self.names.name(obj, "out_", obj.name)
        return self.names.name(obj, "b_", obj.name)

    def scratch(self, stage: Stage) -> str:
        return self.names.name(stage, "s_", stage.name)

    def param(self, p: Parameter) -> str:
        return self.names.name(p, "", p.name)

    # -- precision narrowing ---------------------------------------------------
    def storage_dtype(self, producer) -> DType:
        """Storage type of a stage's buffers: the narrowed type when the
        range analysis proved one safe (``plan.narrowing``), the declared
        type otherwise.  Images and outputs always keep their declared
        type (caller-visible ABI)."""
        narrowing = self.plan.narrowing
        if narrowing:
            return narrowing.get(producer, producer.dtype)
        return producer.dtype

    def _stage_ctype(self, producer) -> str:
        return self.storage_dtype(producer).c_name

    def _stage_itemsize(self, producer) -> int:
        return int(self.storage_dtype(producer).np_dtype.itemsize)

    # -- affine emission -------------------------------------------------------
    def affine_int(self, aff: AffExpr, rounding: str,
                   var_names: Mapping[Hashable, str] | None = None) -> str:
        """Emit an affine expression as an integer, flooring or ceiling.

        Rational coefficients are scaled to a common denominator and
        resolved with exact integer division helpers.
        """
        var_names = var_names or {}
        denom = lcm(aff.const.denominator,
                    *[c.denominator for _, c in aff.terms]) \
            if aff.terms or aff.const.denominator != 1 else 1
        terms = []
        const = aff.const * denom
        assert const.denominator == 1
        for sym, coeff in aff.terms:
            c = coeff * denom
            assert c.denominator == 1
            if isinstance(sym, Parameter):
                sym_name = self.param(sym)
            else:
                sym_name = var_names.get(id(sym))
                if sym_name is None:
                    raise CodegenError(
                        f"affine bound uses unbound symbol {sym!r}")
            if c == 1:
                terms.append(sym_name)
            else:
                terms.append(f"{int(c)}L*{sym_name}")
        if const != 0 or not terms:
            terms.append(f"{int(const)}L")
        body = " + ".join(terms).replace("+ -", "- ")
        if denom == 1:
            return f"({body})"
        helper = "fdiv" if rounding == "floor" else "cdiv"
        return f"{helper}({body}, {denom}L)"

    def dim_lower(self, bounds: DimBounds, var_names=None) -> str:
        """Emit ``max`` of the lower-bound expressions."""
        parts = [self.affine_int(b, "ceil", var_names) for b in bounds.lowers]
        out = parts[0]
        for p in parts[1:]:
            out = f"imax({out}, {p})"
        return out

    def dim_upper(self, bounds: DimBounds, var_names=None) -> str:
        """Emit ``min`` of the upper-bound expressions."""
        parts = [self.affine_int(b, "floor", var_names) for b in bounds.uppers]
        out = parts[0]
        for p in parts[1:]:
            out = f"imin({out}, {p})"
        return out

    # -- expressions -------------------------------------------------------------
    def expr(self, e: Expr, var_names: Mapping[int, str]) -> str:
        """Emit a value expression as C."""
        if isinstance(e, Literal):
            if isinstance(e.value, float):
                return repr(e.value)
            return str(e.value)
        if isinstance(e, Variable):
            name = var_names.get(id(e))
            if name is None:
                raise CodegenError(f"free variable {e.name!r}")
            return name
        if isinstance(e, Parameter):
            return self.param(e)
        if isinstance(e, BinOp):
            left = self.expr(e.left, var_names)
            right = self.expr(e.right, var_names)
            if e.op == "/":
                if _is_float_expr(e.left) or _is_float_expr(e.right):
                    return f"({left} / {right})"
                return f"((double)({left}) / (double)({right}))"
            if e.op == "//":
                if (self._fast_ctx is not None
                        and id(e) in self._fast_ctx.plan.reduce_divs):
                    # numerator proven >= 0 by the fast-path guard, so
                    # C's truncating division equals flooring division
                    return f"(({left}) / {right})"
                return f"fdiv({left}, {right})"
            if e.op == "%":
                if (self._fast_ctx is not None
                        and id(e) in self._fast_ctx.plan.reduce_divs):
                    return f"(({left}) % {right})"
                return f"pmod({left}, {right})"
            return f"({left} {e.op} {right})"
        from repro.lang.expr import UnOp
        if isinstance(e, UnOp):
            return f"(-{self.expr(e.operand, var_names)})"
        if isinstance(e, Cast):
            return f"(({e.dtype.c_name})({self.expr(e.operand, var_names)}))"
        if isinstance(e, Select):
            return (f"({self.cond(e.condition, var_names)} ? "
                    f"{self.expr(e.true_expr, var_names)} : "
                    f"{self.expr(e.false_expr, var_names)})")
        if isinstance(e, Call):
            args = [self.expr(a, var_names) for a in e.args]
            if e.name in ("min", "max"):
                helper = ("dmin" if e.name == "min" else "dmax") \
                    if any(_is_float_expr(a) for a in e.args) else \
                    ("imin" if e.name == "min" else "imax")
                out = args[0]
                for a in args[1:]:
                    out = f"{helper}({out}, {a})"
                return out
            c_fn = {"abs": "fabs", "atan": "atan", "pow": "pow"}.get(
                e.name, e.name)
            return f"{c_fn}({', '.join(args)})"
        if isinstance(e, Reference):
            return self.reference(e, var_names)
        raise CodegenError(f"cannot generate code for {e!r}")

    def cond(self, c: BoolExpr, var_names) -> str:
        """Emit a condition tree as a C boolean expression."""
        if isinstance(c, TrueCond):
            return "1"
        if isinstance(c, Condition):
            return (f"({self.expr(c.lhs, var_names)} {c.op} "
                    f"{self.expr(c.rhs, var_names)})")
        if isinstance(c, CondAnd):
            return (f"({self.cond(c.left, var_names)} && "
                    f"{self.cond(c.right, var_names)})")
        if isinstance(c, CondOr):
            return (f"({self.cond(c.left, var_names)} || "
                    f"{self.cond(c.right, var_names)})")
        if isinstance(c, CondNot):
            return f"(!{self.cond(c.operand, var_names)})"
        raise CodegenError(f"cannot generate condition {c!r}")

    def reference(self, ref: Reference, var_names) -> str:
        """Emit a buffer access, clamping data-dependent indices.

        Inside a fast nest (``self._fast_ctx`` set) clamps proven
        redundant by the tile-scope guard are dropped, index terms free
        of the innermost loop variable are hoisted above it, and the
        load is CSE'd into a local read exactly once per iteration.
        """
        producer = ref.function
        ctx = self._fast_ctx
        indices = []
        hoist: list[bool] | None = [] if ctx is not None else None
        for d, arg in enumerate(ref.args):
            idx = self.expr(arg, var_names)
            form = analyze_access(arg)
            if form is None and not (
                    ctx is not None
                    and (id(ref), d) in ctx.plan.drop_clamps):
                # data-dependent index: clamp to the stored extent, like
                # the interpreter backend's clipped gather
                lo, hi = self._extent_names(producer, d)
                idx = f"iclamp((long)({idx}), {lo}, {hi})"
            indices.append(idx)
            if hoist is not None:
                hoist.append(ctx.hoistable(arg))
        if producer in self._scratch_sizes:
            access = self._scratch_access(producer, indices, hoist)
        else:
            access = self._full_access(producer, indices, hoist)
        storage = self.storage_dtype(producer)
        out = ctx.load(access, storage.c_name) if ctx is not None else access
        if storage is not producer.dtype and producer.dtype.is_float:
            # Double stage stored as float: re-widen the load so consumer
            # arithmetic stays in double precision (sub-int integer loads
            # need no cast — C integer promotion already restores ``int``)
            out = f"(({producer.dtype.c_name})({out}))"
        return out

    def _extent_names(self, producer, d: int) -> tuple[str, str]:
        base = self.scratch(producer) if producer in self._scratch_sizes \
            else self.buf(producer)
        return f"{base}_lo{d}", f"{base}_hi{d}"

    def _full_access(self, producer, indices: list[str],
                     hoist: list[bool] | None = None) -> str:
        base = self.buf(producer)
        ndim = producer.ndim
        parts = []
        for d, idx in enumerate(indices):
            term = f"(({idx}) - {base}_lo{d})"
            for dd in range(d + 1, ndim):
                term += f"*{base}_n{dd}"
            parts.append(term)
        return f"{base}[{self._join_index_terms(parts, hoist)}]"

    def _scratch_access(self, producer, indices: list[str],
                        hoist: list[bool] | None = None) -> str:
        base = self.scratch(producer)
        sizes = self._scratch_sizes[producer]
        parts = []
        for d, idx in enumerate(indices):
            term = f"(({idx}) - {base}_lo{d})"
            for dd in range(d + 1, len(sizes)):
                term += f"*{sizes[dd]}"
            parts.append(term)
        return f"{base}[{self._join_index_terms(parts, hoist)}]"

    def _join_index_terms(self, terms: list[str],
                          hoist: list[bool] | None) -> str:
        """Sum the per-dim index terms, hoisting the marked ones into a
        ``const long`` row-offset local above the innermost loop."""
        ctx = self._fast_ctx
        if ctx is None or hoist is None or not any(hoist):
            return " + ".join(terms)
        hoisted = [t for t, h in zip(terms, hoist) if h]
        rest = [t for t, h in zip(terms, hoist) if not h]
        name = ctx.offset(" + ".join(hoisted))
        return " + ".join([name] + rest)

    # -- top level ----------------------------------------------------------------
    def generate(self) -> str:
        """Emit the full translation unit for the plan."""
        w = self.w
        w.emit("/* Generated by the PolyMage reproduction compiler. */")
        w.emit(PRELUDE)
        if self.instrument:
            self._emit_instrument_globals()
        arena_bytes = 0
        if self.plan.options.specialize:
            for gp in self.plan.group_plans:
                if gp.is_tiled:
                    arena_bytes = max(arena_bytes,
                                      self._arena_layout(gp)[1])
        self._uses_arena = arena_bytes > 0
        if self._uses_arena:
            self._emit_arena_globals(arena_bytes)
        args = ["int _nthreads"]
        args += [f"long {self.param(p)}" for p in self.params]
        for img in self.images:
            args.append(f"const {img.dtype.c_name}* restrict {self.buf(img)}")
        for out in self.outputs:
            args.append(f"{out.dtype.c_name}* restrict {self.buf(out)}")
        w.open(f"void {self.func_name}({', '.join(args)})")
        w.emit("#ifdef _OPENMP")
        w.emit("if (_nthreads > 0) omp_set_num_threads(_nthreads);")
        w.emit("#endif")
        w.emit("(void)_nthreads;")
        if self._uses_arena:
            w.emit("#ifdef _OPENMP")
            w.emit("repro_arena_reserve(omp_get_max_threads());")
            w.emit("#else")
            w.emit("repro_arena_reserve(1);")
            w.emit("#endif")

        self._emit_buffer_geometry()
        self._emit_intermediate_allocs()

        self._emit_group_bodies()

        self._emit_frees()
        w.close()
        self._emit_batch_entry()
        return str(w)

    def _emit_group_bodies(self) -> None:
        """Every group of the plan, in order, with instrument timers."""
        w = self.w
        for i, gp in enumerate(self.plan.group_plans):
            w.emit()
            w.emit(f"/* group {i}: "
                   f"{', '.join(s.name for s in gp.ordered_stages)} */")
            if self.instrument:
                w.emit(f"double _g{i}_t0 = repro_now();")
            if gp.is_tiled:
                self._emit_tiled_group(gp, i)
            else:
                self._emit_untiled_group(gp)
            if self.instrument:
                # the group loop is serial at this level, so no atomics
                w.emit(f"repro_group_s[{i}] += repro_now() - _g{i}_t0;")

    def _emit_batch_entry(self) -> None:
        """The multi-frame entry point ``<func>_batch``.

        Same per-frame semantics as the single-frame function — the
        outputs are byte-identical — but the fixed per-call costs are
        paid once for the whole batch: one ctypes crossing, one
        ``omp_set_num_threads``, one arena reservation, and one
        allocation of the full intermediate buffers (re-zeroed per frame
        to preserve the single-frame ``calloc`` semantics).  Inputs and
        outputs arrive as per-frame pointer arrays indexed ``[frame]``;
        parameter values are shared by every frame in the batch.
        """
        w = self.w
        w.emit()
        w.emit("/* batch entry point: fixed costs amortized over "
               "_nframes frames */")
        args = ["int _nframes", "int _nthreads"]
        args += [f"long {self.param(p)}" for p in self.params]
        for img in self.images:
            args.append(f"const {img.dtype.c_name}* const* "
                        f"{self.buf(img)}_frames")
        for out in self.outputs:
            args.append(f"{out.dtype.c_name}* const* "
                        f"{self.buf(out)}_frames")
        w.open(f"void {self.func_name}_batch({', '.join(args)})")
        w.emit("#ifdef _OPENMP")
        w.emit("if (_nthreads > 0) omp_set_num_threads(_nthreads);")
        w.emit("#endif")
        w.emit("(void)_nthreads;")
        if self._uses_arena:
            w.emit("#ifdef _OPENMP")
            w.emit("repro_arena_reserve(omp_get_max_threads());")
            w.emit("#else")
            w.emit("repro_arena_reserve(1);")
            w.emit("#endif")
        self._emit_buffer_geometry()
        # full intermediates: one allocation for the whole batch,
        # re-zeroed at the top of every frame (calloc parity)
        output_set = set(self.outputs)
        inter: list[tuple[str, str, str]] = []
        for stage, decision in self.plan.storage.items():
            if decision.kind == SCRATCH or stage in output_set:
                continue
            base = self.buf(stage)
            stage_ir = self.plan.ir[stage]
            size = " * ".join(f"{base}_n{d}"
                              for d in range(stage_ir.ndim))
            ctype = self._stage_ctype(stage)
            w.emit(f"{ctype}* {base} = ({ctype}*)malloc({size} * "
                   f"sizeof({ctype}));")
            inter.append((base, size, ctype))
        w.open("for (int _f = 0; _f < _nframes; _f++)")
        for img in self.images:
            base = self.buf(img)
            w.emit(f"const {img.dtype.c_name}* restrict {base} = "
                   f"{base}_frames[_f];")
        for out in self.outputs:
            base = self.buf(out)
            w.emit(f"{out.dtype.c_name}* restrict {base} = "
                   f"{base}_frames[_f];")
        for base, size, ctype in inter:
            w.emit(f"memset({base}, 0, {size} * sizeof({ctype}));")
        if self.plan.options.specialize:
            if self.outputs:
                w.emit("/* outputs: caller provides zero-filled "
                       "buffers (see the single-frame ABI) */")
        else:
            for out in self.outputs:
                base = self.buf(out)
                stage_ir = self.plan.ir[out]
                size = " * ".join(f"{base}_n{d}"
                                  for d in range(stage_ir.ndim))
                w.emit(f"memset({base}, 0, {size} * "
                       f"sizeof({out.dtype.c_name}));")
        self._emit_group_bodies()
        w.close()
        for base, _, _ in inter:
            w.emit(f"free({base});")
        w.close()

    def _emit_instrument_globals(self) -> None:
        """Stats storage and the exported accessor / reset functions."""
        w = self.w
        n = max(1, len(self.plan.group_plans))
        w.emit(INSTRUMENT_PRELUDE)
        w.emit(f"#define REPRO_N_GROUPS {n}")
        w.emit("static double repro_group_s[REPRO_N_GROUPS];")
        w.emit("static long repro_group_tiles[REPRO_N_GROUPS];")
        w.open(f"void {self.func_name}_stats"
               "(double* seconds, long* tiles)")
        w.open("for (int _i = 0; _i < REPRO_N_GROUPS; _i++)")
        w.emit("seconds[_i] = repro_group_s[_i];")
        w.emit("tiles[_i] = repro_group_tiles[_i];")
        w.close()
        w.close()
        w.open(f"void {self.func_name}_stats_reset(void)")
        w.emit("memset(repro_group_s, 0, sizeof repro_group_s);")
        w.emit("memset(repro_group_tiles, 0, sizeof repro_group_tiles);")
        w.close()
        w.emit()

    def _emit_arena_globals(self, arena_bytes: int) -> None:
        """Persistent per-thread scratch arenas plus the release export.

        Slots are grown (never shrunk) serially at function entry; each
        thread lazily allocates its arena on first use and keeps it
        across calls.  ``<func>_release()`` frees everything — the
        Python wrapper exposes it, nothing calls it implicitly.
        """
        w = self.w
        w.emit("/* persistent per-thread scratch arenas */")
        w.emit(f"#define REPRO_ARENA_BYTES "
               f"{max(arena_bytes, ARENA_ALIGN)}L")
        w.emit("static void** repro_arena_slots = NULL;")
        w.emit("static long repro_arena_nslots = 0;")
        w.open("static void repro_arena_reserve(long n)")
        w.emit("if (n <= repro_arena_nslots) return;")
        w.emit("void** grown = (void**)calloc((size_t)n, sizeof(void*));")
        w.emit("if (!grown) return;")
        w.open("if (repro_arena_slots)")
        w.emit("memcpy(grown, repro_arena_slots, "
               "(size_t)repro_arena_nslots * sizeof(void*));")
        w.emit("free(repro_arena_slots);")
        w.close()
        w.emit("repro_arena_slots = grown;")
        w.emit("repro_arena_nslots = n;")
        w.close()
        w.open("static char* repro_arena_get(long tid)")
        w.emit("void* p = repro_arena_slots[tid];")
        w.open("if (!p)")
        w.emit("p = aligned_alloc(64, (size_t)REPRO_ARENA_BYTES);")
        w.emit("repro_arena_slots[tid] = p;")
        w.close()
        w.emit("return (char*)p;")
        w.close()
        w.open(f"void {self.func_name}_release(void)")
        w.emit("for (long _i = 0; _i < repro_arena_nslots; _i++) "
               "free(repro_arena_slots[_i]);")
        w.emit("free(repro_arena_slots);")
        w.emit("repro_arena_slots = NULL;")
        w.emit("repro_arena_nslots = 0;")
        w.close()
        w.emit()

    # -- geometry -------------------------------------------------------------------
    def _emit_buffer_geometry(self) -> None:
        w = self.w
        w.emit("/* buffer geometry */")
        for img in self.images:
            base = self.buf(img)
            for d, extent in enumerate(img.extents):
                aff = to_affine(extent, params_only=True)
                w.emit(f"const long {base}_n{d} = "
                       f"{self.affine_int(aff, 'floor')};")
                w.emit(f"const long {base}_lo{d} = 0;")
                w.emit(f"const long {base}_hi{d} = {base}_n{d} - 1;")
        for stage, decision in self.plan.storage.items():
            if decision.kind == SCRATCH:
                continue
            base = self.buf(stage)
            stage_ir = self.plan.ir[stage]
            for d, bounds in enumerate(stage_ir.domain.bounds):
                w.emit(f"const long {base}_lo{d} = {self.dim_lower(bounds)};")
                w.emit(f"const long {base}_hi{d} = {self.dim_upper(bounds)};")
                w.emit(f"const long {base}_n{d} = "
                       f"{base}_hi{d} - {base}_lo{d} + 1;")

    def _emit_intermediate_allocs(self) -> None:
        w = self.w
        output_set = set(self.outputs)
        self._intermediate_fulls = []
        for stage, decision in self.plan.storage.items():
            if decision.kind == SCRATCH or stage in output_set:
                continue
            base = self.buf(stage)
            stage_ir = self.plan.ir[stage]
            size = " * ".join(f"{base}_n{d}" for d in range(stage_ir.ndim))
            ctype = self._stage_ctype(stage)
            w.emit(f"{ctype}* {base} = ({ctype}*)calloc({size}, "
                   f"sizeof({ctype}));")
            self._intermediate_fulls.append(base)
        for out in self.outputs:
            base = self.buf(out)
            if self.plan.options.specialize:
                # caller-zeroes ABI: the Python wrapper always hands in
                # freshly zero-filled output buffers (np.zeros), so the
                # defensive memset is skipped (see repro.codegen.build)
                w.emit(f"/* {base}: caller provides a zero-filled "
                       "buffer */")
                continue
            stage_ir = self.plan.ir[out]
            size = " * ".join(f"{base}_n{d}" for d in range(stage_ir.ndim))
            w.emit(f"memset({base}, 0, {size} * sizeof({out.dtype.c_name}));")

    def _emit_frees(self) -> None:
        for base in self._intermediate_fulls:
            self.w.emit(f"free({base});")

    # -- untiled groups ------------------------------------------------------------
    def _emit_untiled_group(self, gp: GroupPlan) -> None:
        for stage in gp.ordered_stages:
            stage_ir = self.plan.ir[stage]
            if stage_ir.is_accumulator:
                self._emit_accumulator(stage_ir)
            elif stage_ir.is_self_referential:
                self._emit_self_referential(stage_ir)
            else:
                self._emit_stage_full(stage_ir)

    def _domain_bound_names(self, stage_ir: StageIR, prefix: str
                            ) -> list[tuple[str, str]]:
        """Declare lo/hi variables for the stage's full domain."""
        out = []
        for d, bounds in enumerate(stage_ir.domain.bounds):
            lo = f"{prefix}_lb{d}"
            hi = f"{prefix}_ub{d}"
            self.w.emit(f"long {lo} = {self.dim_lower(bounds)};")
            self.w.emit(f"long {hi} = {self.dim_upper(bounds)};")
            out.append((lo, hi))
        return out

    def _case_dim_bounds(self, stage_ir: StageIR, case,
                         region: list[tuple[str, str]]
                         ) -> list[tuple[str, str]]:
        """Region bounds clamped with the case's bound constraints."""
        dim_bounds = []
        for d, var in enumerate(stage_ir.variables):
            lo_expr, hi_expr = region[d]
            extra = case.split.bounds.get(var)
            if extra:
                lowers, uppers = extra
                for b in lowers:
                    lo_expr = f"imax({lo_expr}, " \
                              f"{self.affine_int(b, 'ceil')})"
                for b in uppers:
                    hi_expr = f"imin({hi_expr}, " \
                              f"{self.affine_int(b, 'floor')})"
            dim_bounds.append((lo_expr, hi_expr))
        return dim_bounds

    def _emit_case_loops(self, stage_ir: StageIR,
                         region: list[tuple[str, str]],
                         parallel: bool = False) -> None:
        """One loop nest per case, bounds clamped to region & case box.

        Under ``options.specialize`` each non-residual case is analysed
        (:func:`repro.codegen.opt.analyze_case`).  When the derived
        interior guard is non-trivial the nest is emitted twice — a
        clamp-free, strength-reduced fast nest behind the guard and the
        legacy safe nest in the ``else`` — and when the guard is empty
        the fast nest (hoisting/CSE/simd only, always valid) replaces
        the safe one outright.  The guard is evaluated once per tile
        from the same bound variables the loops use, so boundary tiles
        simply keep the safe clamped code.
        """
        w = self.w
        specialize = self.plan.options.specialize
        for ci, case in enumerate(stage_ir.cases):
            w.open(f"/* case {ci} of {stage_ir.name} */ ")
            var_names: dict[int, str] = {}
            for d, var in enumerate(stage_ir.variables):
                var_names[id(var)] = f"i{d}"
            dim_bounds = self._case_dim_bounds(stage_ir, case, region)
            for d, (lo_expr, hi_expr) in enumerate(dim_bounds):
                w.emit(f"long c{d}lb = {lo_expr};")
                w.emit(f"long c{d}ub = {hi_expr};")
            fast = None
            if specialize and stage_ir.variables \
                    and not case.split.residual:
                var_bounds = {id(v): (f"c{d}lb", f"c{d}ub")
                              for d, v in enumerate(stage_ir.variables)}
                fast = opt.analyze_case(self, stage_ir, case, var_bounds)
            if fast is not None and fast.conds:
                guard = " && ".join(f"({c})" for c in fast.conds)
                w.emit(f"const int _fastok = {guard};")
                w.open("if (_fastok)")
                self._emit_case_nest(stage_ir, case, var_names,
                                     parallel, fast)
                w.close()
                w.open("else")
                self._emit_case_nest(stage_ir, case, var_names,
                                     parallel, None)
                w.close()
            else:
                self._emit_case_nest(stage_ir, case, var_names,
                                     parallel, fast)
            w.close()

    def _emit_case_nest(self, stage_ir: StageIR, case, var_names,
                        parallel: bool,
                        fast: "opt.CasePlan | None") -> None:
        """Emit one loop nest for a case: safe (``fast`` None) or fast."""
        w = self.w
        loop_vars = [var_names[id(v)] for v in stage_ir.variables]
        n = len(loop_vars)
        ctx = None
        if fast is not None:
            innermost_id = id(stage_ir.variables[-1]) if n else None
            ctx = opt.FastBody(fast, innermost_id)
        # open the outer loops first so hoisted offsets see their vars
        for d in range(n - 1):
            v = loop_vars[d]
            if d == 0 and parallel:
                w.emit("#pragma omp parallel for")
            w.open(f"for (long {v} = c{d}lb; {v} <= c{d}ub; {v}++)")
        # render store/value before the innermost loop so the fast body
        # context collects its hoisted offsets and CSE'd loads
        self._fast_ctx = ctx
        try:
            store = self._store(stage_ir, var_names)
            value = self.expr(case.expression, var_names)
        finally:
            self._fast_ctx = None
        if ctx is not None:
            for line in ctx.offset_decls:
                w.emit(line)
        if n:
            d = n - 1
            v = loop_vars[d]
            if d == 0 and parallel:
                w.emit("#pragma omp parallel for")
            elif not case.split.residual:
                unroll = self.plan.options.unroll
                if unroll > 1:
                    w.emit(f"#pragma GCC unroll {unroll}")
                if opt.simd_safe(stage_ir, case):
                    # unit-stride store, no self-reads: vector pragmas
                    # are legal; the fast path asks for omp simd, the
                    # safe path keeps the weaker ivdep hint
                    if ctx is not None and self.plan.options.simd:
                        w.emit("#pragma omp simd")
                    else:
                        w.emit("#pragma GCC ivdep")
            w.open(f"for (long {v} = c{d}lb; {v} <= c{d}ub; {v}++)")
        declared = stage_ir.stage.dtype.c_name
        storage = self._stage_ctype(stage_ir.stage)
        if storage != declared:
            # narrowed store: the declared-type cast first (preserving
            # the original truncation semantics), then the proven-safe
            # narrowing conversion
            body = f"{store} = ({storage})(({declared})({value}));"
        else:
            body = f"{store} = ({declared})({value});"
        if case.split.residual:
            conds = " && ".join(self.cond(c, var_names)
                                for c in case.split.residual)
            w.emit(f"if ({conds}) {body}")
        else:
            if ctx is not None:
                for line in ctx.load_decls:
                    w.emit(line)
            w.emit(body)
        for _ in loop_vars:
            w.close()

    def _store(self, stage_ir: StageIR, var_names) -> str:
        indices = [var_names[id(v)] for v in stage_ir.variables]
        hoist = None
        if self._fast_ctx is not None and indices:
            # store indices are the loop variables themselves: every
            # dimension but the innermost is loop-invariant there
            hoist = [True] * (len(indices) - 1) + [False]
        if stage_ir.stage in self._scratch_sizes:
            return self._scratch_access(stage_ir.stage, indices, hoist)
        return self._full_access(stage_ir.stage, indices, hoist)

    def _emit_stage_full(self, stage_ir: StageIR) -> None:
        w = self.w
        w.open("")
        prefix = "d_" + _sanitize(stage_ir.name)
        region = self._domain_bound_names(stage_ir, prefix)
        self._emit_case_loops(stage_ir, region, parallel=True)
        w.close()

    def _emit_accumulator(self, stage_ir: StageIR) -> None:
        w = self.w
        acc = stage_ir.accumulate
        assert acc is not None
        base = self.buf(stage_ir.stage)
        ctype = stage_ir.stage.dtype.c_name
        dtype = stage_ir.stage.dtype
        if dtype.is_float:
            extreme_hi, extreme_lo = "INFINITY", "-INFINITY"
        else:
            import numpy as np
            info = np.iinfo(dtype.np_dtype)
            extreme_hi, extreme_lo = str(info.max), str(info.min)
        init = {
            Reduction.Sum: "0",
            Reduction.Min: f"({ctype})({extreme_hi})",
            Reduction.Max: f"({ctype})({extreme_lo})",
        }[acc.op]
        w.open("")
        # initialise over the variable domain
        var_names: dict[int, str] = {}
        for d, var in enumerate(stage_ir.variables):
            v = f"a{d}"
            var_names[id(var)] = v
            bounds = stage_ir.domain.bounds[d]
            w.open(f"for (long {v} = {self.dim_lower(bounds)}; "
                   f"{v} <= {self.dim_upper(bounds)}; {v}++)")
        w.emit(f"{self._store(stage_ir, var_names)} = {init};")
        for _ in stage_ir.variables:
            w.close()
        # reduce over the reduction domain
        red_names: dict[int, str] = {}
        assert stage_ir.reduction_domain is not None
        for d, var in enumerate(stage_ir.stage.red_variables):
            v = f"r{d}"
            red_names[id(var)] = v
            bounds = stage_ir.reduction_domain.bounds[d]
            w.open(f"for (long {v} = {self.dim_lower(bounds)}; "
                   f"{v} <= {self.dim_upper(bounds)}; {v}++)")
        idx_names = []
        guards = []
        for d, arg in enumerate(acc.target.args):
            iv = f"ti{d}"
            w.emit(f"long {iv} = (long)({self.expr(arg, red_names)});")
            lo = f"{base}_lo{d}"
            hi = f"{base}_hi{d}"
            guards.append(f"{iv} >= {lo} && {iv} <= {hi}")
            idx_names.append(iv)
        value = self.expr(acc.value, red_names)
        slot = self._full_access(stage_ir.stage, idx_names)
        update = {
            Reduction.Sum: f"{slot} += ({ctype})({value});",
            Reduction.Min: f"{slot} = ({ctype})dmin({slot}, {value});",
            Reduction.Max: f"{slot} = ({ctype})dmax({slot}, {value});",
        }[acc.op]
        w.emit(f"if ({' && '.join(guards)}) {update}")
        for _ in stage_ir.stage.red_variables:
            w.close()
        w.close()

    def _emit_self_referential(self, stage_ir: StageIR) -> None:
        """Sequential scalar loop nest with per-point case dispatch."""
        w = self.w
        w.open("")
        var_names: dict[int, str] = {}
        for d, var in enumerate(stage_ir.variables):
            v = f"q{d}"
            var_names[id(var)] = v
            bounds = stage_ir.domain.bounds[d]
            w.open(f"for (long {v} = {self.dim_lower(bounds)}; "
                   f"{v} <= {self.dim_upper(bounds)}; {v}++)")
        for case in stage_ir.cases:
            cond = self.cond(case.condition, var_names)
            w.emit(f"if ({cond}) {self._store(stage_ir, var_names)} = "
                   f"({stage_ir.stage.dtype.c_name})"
                   f"({self.expr(case.expression, var_names)});")
        for _ in stage_ir.variables:
            w.close()
        w.close()

    # -- tiled groups -----------------------------------------------------------------
    def _scratch_size(self, stage: Stage, gp: GroupPlan) -> tuple[int, ...]:
        """Static scratchpad extents: tile size plus halo, with slack for
        rational scaling (known at code generation time, like Figure 7)."""
        transforms = gp.transforms
        assert transforms is not None
        halo = gp.group.halos[stage]
        t = transforms[stage]
        sizes = []
        for d in range(self.plan.ir[stage].ndim):
            g = t.dim_map[d]
            scale = t.scales[d]
            tau = gp.tile_sizes[g]
            width = (Fraction(tau) + halo.left[g] + halo.right[g]) / scale
            sizes.append(int(width) + 3)
        if self.plan.options.specialize and sizes:
            # pad the innermost extent so every row of the scratchpad
            # starts on a cache-line/vector-friendly boundary inside the
            # per-thread arena
            sizes[-1] = -(-sizes[-1] // SCRATCH_PAD) * SCRATCH_PAD
        return tuple(sizes)

    def _group_scratch_stages(self, gp: GroupPlan
                              ) -> tuple[list[Stage], set[Stage]]:
        """Scratch-allocated stages of a tiled group.

        Live-outs consumed inside the group also get a tile-local
        scratchpad (with halo); their owned sub-region is copied out to
        the full buffer after evaluation.
        """
        ir = self.plan.ir
        members = set(gp.ordered_stages)
        liveout_local = {s for s in gp.liveouts
                         if any(c in members
                                for c in ir.graph.consumers(s))}
        scratch = [s for s in gp.ordered_stages
                   if self.plan.storage[s].kind == SCRATCH
                   or s in liveout_local]
        return scratch, liveout_local

    def _arena_layout(self, gp: GroupPlan) -> tuple[dict[Stage, int], int]:
        """Byte offset of each scratchpad in the per-thread arena, plus
        the group's total arena footprint (offsets are 64B-aligned)."""
        offsets: dict[Stage, int] = {}
        off = 0
        scratch, _ = self._group_scratch_stages(gp)
        for stage in scratch:
            total = 1
            for s in self._scratch_size(stage, gp):
                total *= s
            nbytes = total * self._stage_itemsize(stage)
            offsets[stage] = off
            off += -(-nbytes // ARENA_ALIGN) * ARENA_ALIGN
        return offsets, off

    def _emit_tiled_group(self, gp: GroupPlan, gi: int = 0) -> None:
        w = self.w
        ir = self.plan.ir
        transforms = gp.transforms
        assert transforms is not None
        ndim = transforms.ndim
        space_lo = []
        space_hi = []
        w.open("")
        # tile space: hull of scaled live-out domains, per group dim
        for g in range(ndim):
            lo_parts, hi_parts = [], []
            for stage in gp.liveouts:
                t = transforms[stage]
                d = t.stage_dim(g)
                if d is None:
                    continue
                bounds = ir[stage].domain.bounds[d]
                scale = t.scales[d]
                lo = self.dim_lower(bounds)
                hi = self.dim_upper(bounds)
                if scale == 1:
                    lo_parts.append(lo)
                    hi_parts.append(hi)
                else:
                    n, dnm = scale.numerator, scale.denominator
                    lo_parts.append(f"fdiv({lo}*{n}L, {dnm}L)")
                    hi_parts.append(f"cdiv({hi}*{n}L, {dnm}L)")
            lo_expr = lo_parts[0]
            hi_expr = hi_parts[0]
            for p in lo_parts[1:]:
                lo_expr = f"imin({lo_expr}, {p})"
            for p in hi_parts[1:]:
                hi_expr = f"imax({hi_expr}, {p})"
            w.emit(f"long g{g}lo = {lo_expr}, g{g}hi = {hi_expr};")
            w.emit(f"long T{g}f = fdiv(g{g}lo, {gp.tile_sizes[g]}), "
                   f"T{g}l = fdiv(g{g}hi, {gp.tile_sizes[g]});")
            space_lo.append(f"g{g}lo")
            space_hi.append(f"g{g}hi")

        scratch_stages, liveout_local = self._group_scratch_stages(gp)
        for stage in scratch_stages:
            self._scratch_sizes[stage] = self._scratch_size(stage, gp)
        self._liveout_local = liveout_local

        # One parallel region: scratchpads are allocated once per thread
        # and reused by all the tiles that thread executes sequentially
        # (Section 3.6).  Under specialization they live in the
        # persistent per-thread arena instead of per-invocation mallocs.
        use_arena = self._uses_arena and bool(scratch_stages)
        w.emit("#pragma omp parallel")
        w.open("")
        if use_arena:
            offsets, _ = self._arena_layout(gp)
            w.emit("long _tid = 0;")
            w.emit("#ifdef _OPENMP")
            w.emit("_tid = omp_get_thread_num();")
            w.emit("#endif")
            w.emit("char* _arena = repro_arena_get(_tid);")
            for stage in scratch_stages:
                ctype = self._stage_ctype(stage)
                w.emit(f"{ctype}* {self.scratch(stage)} = "
                       f"({ctype}*)(_arena + {offsets[stage]}L);")
        else:
            for stage in scratch_stages:
                sizes = self._scratch_sizes[stage]
                total = 1
                for s in sizes:
                    total *= s
                ctype = self._stage_ctype(stage)
                w.emit(f"{ctype}* {self.scratch(stage)} = "
                       f"({ctype}*)malloc({total} * sizeof({ctype}));")
        w.emit("#pragma omp for schedule(dynamic)")
        w.open(f"for (long T0 = T0f; T0 <= T0l; T0++)")
        for g in range(1, ndim):
            w.open(f"for (long T{g} = T{g}f; T{g} <= T{g}l; T{g}++)")
        for g in range(ndim):
            tau = gp.tile_sizes[g]
            w.emit(f"long t{g}lo = T{g}*{tau}, t{g}hi = t{g}lo + {tau} - 1;")
        if self.instrument:
            w.emit("#pragma omp atomic")
            w.emit(f"repro_group_tiles[{gi}]++;")

        # per-stage regions (tile scope), then evaluation, in topo order
        for stage in gp.ordered_stages:
            self._emit_tiled_stage_region(gp, ir[stage])
        for stage in gp.ordered_stages:
            self._emit_tiled_stage_body(gp, ir[stage])

        for g in range(1, ndim):
            w.close()
        w.close()  # T0
        if not use_arena:
            for stage in scratch_stages:
                w.emit(f"free({self.scratch(stage)});")
        w.close()  # omp parallel region
        w.close()
        for stage in scratch_stages:
            del self._scratch_sizes[stage]

    def _emit_tiled_stage_region(self, gp: GroupPlan,
                                 stage_ir: StageIR) -> None:
        """Declare the stage's per-tile region bounds at tile scope."""
        w = self.w
        transforms = gp.transforms
        assert transforms is not None
        stage = stage_ir.stage
        t = transforms[stage]
        halo = gp.group.halos[stage]
        base = _sanitize(stage_ir.name)
        is_scratch = stage in self._scratch_sizes
        for d in range(stage_ir.ndim):
            g = t.dim_map[d]
            scale = t.scales[d]
            l, r = halo.left[g], halo.right[g]
            # region_lo = max(dom_lo, ceil((t_lo - l) / scale))
            sn, sd = scale.numerator, scale.denominator
            ln, ld = l.numerator, l.denominator
            rn, rd = r.numerator, r.denominator
            lo_num = f"(t{g}lo*{ld}L - {ln}L)*{sd}L"
            hi_num = f"(t{g}hi*{rd}L + {rn}L)*{sd}L"
            lo = f"cdiv({lo_num}, {sn * ld}L)"
            hi = f"fdiv({hi_num}, {sn * rd}L)"
            bounds = stage_ir.domain.bounds[d]
            lo = f"imax({self.dim_lower(bounds)}, {lo})"
            hi = f"imin({self.dim_upper(bounds)}, {hi})"
            w.emit(f"long {base}_rl{d} = {lo};")
            w.emit(f"long {base}_rh{d} = {hi};")
            if is_scratch:
                sbase = self.scratch(stage)
                w.emit(f"long {sbase}_lo{d} = {base}_rl{d};")
                w.emit(f"long {sbase}_hi{d} = {base}_rh{d};")

    def _emit_tiled_stage_body(self, gp: GroupPlan,
                               stage_ir: StageIR) -> None:
        w = self.w
        transforms = gp.transforms
        assert transforms is not None
        stage = stage_ir.stage
        t = transforms[stage]
        base = _sanitize(stage_ir.name)
        is_scratch = stage in self._scratch_sizes
        region = [(f"{base}_rl{d}", f"{base}_rh{d}")
                  for d in range(stage_ir.ndim)]
        w.open(f"/* {stage_ir.name} */ ")
        if is_scratch:
            # zero-fill so points no case covers read as 0 (NumPy parity)
            narrow = (self.plan.options.specialize
                      and stage_ir.ndim >= 1
                      and len(stage_ir.cases) == 1
                      and not stage_ir.cases[0].split.residual)
            if narrow:
                # the single case fully overwrites region ∩ case-box, so
                # only the complement strips need zeroing; interior
                # tiles (region ⊆ case-box) do no memset work at all
                self._emit_narrow_memset(stage_ir, region)
            else:
                sizes = self._scratch_sizes[stage]
                total = 1
                for s in sizes:
                    total *= s
                w.emit(f"memset({self.scratch(stage)}, 0, "
                       f"{total} * sizeof({self._stage_ctype(stage)}));")
            self._emit_case_loops(stage_ir, region)
            if stage in self._liveout_local:
                # copy the owned sub-region out to the full buffer
                copy_vars: dict[int, str] = {}
                for d in range(stage_ir.ndim):
                    g = t.dim_map[d]
                    scale = t.scales[d]
                    sn, sd = scale.numerator, scale.denominator
                    olo = f"cdiv(t{g}lo*{sd}L, {sn}L)"
                    ohi = f"fdiv(t{g}hi*{sd}L, {sn}L)"
                    w.emit(f"long {base}_cl{d} = "
                           f"imax({region[d][0]}, {olo});")
                    w.emit(f"long {base}_ch{d} = "
                           f"imin({region[d][1]}, {ohi});")
                for d, var in enumerate(stage_ir.variables):
                    v = f"k{d}"
                    copy_vars[id(var)] = v
                    w.open(f"for (long {v} = {base}_cl{d}; "
                           f"{v} <= {base}_ch{d}; {v}++)")
                indices = [copy_vars[id(v)] for v in stage_ir.variables]
                w.emit(f"{self._full_access(stage, indices)} = "
                       f"{self._scratch_access(stage, indices)};")
                for _ in stage_ir.variables:
                    w.close()
        else:
            # live-out: evaluate only the owned sub-region directly into
            # the full buffer (tiles partition ownership)
            owned = []
            for d in range(stage_ir.ndim):
                g = t.dim_map[d]
                scale = t.scales[d]
                sn, sd = scale.numerator, scale.denominator
                olo = f"cdiv(t{g}lo*{sd}L, {sn}L)"
                ohi = f"fdiv(t{g}hi*{sd}L, {sn}L)"
                w.emit(f"long {base}_ol{d} = imax({region[d][0]}, {olo});")
                w.emit(f"long {base}_oh{d} = imin({region[d][1]}, {ohi});")
                owned.append((f"{base}_ol{d}", f"{base}_oh{d}"))
            self._emit_case_loops(stage_ir, owned)
        w.close()

    def _emit_narrow_memset(self, stage_ir: StageIR,
                            region: list[tuple[str, str]]) -> None:
        """Zero only ``region ∖ written-box`` of a single-case scratchpad.

        The written box ``W`` is the region clamped by the case's bound
        constraints — exactly the points the case loop overwrites.  The
        complement is decomposed into the standard disjoint strips (dim
        ``d`` outside ``W``, earlier dims inside, later dims spanning
        the region); with an empty ``W`` the dim-0 strips cover the
        whole region, and for interior tiles every strip is empty so
        the zero-fill costs nothing.
        """
        w = self.w
        stage = stage_ir.stage
        case = stage_ir.cases[0]
        base = _sanitize(stage_ir.name)
        ndim = stage_ir.ndim
        dim_bounds = self._case_dim_bounds(stage_ir, case, region)
        for d, (lo_expr, hi_expr) in enumerate(dim_bounds):
            w.emit(f"long {base}_wl{d} = {lo_expr};")
            w.emit(f"long {base}_wh{d} = {hi_expr};")
        for d in range(ndim):
            low_strip = (region[d][0],
                         f"imin({base}_wl{d} - 1, {region[d][1]})")
            high_strip = (f"imax({base}_wh{d} + 1, {region[d][0]})",
                          region[d][1])
            for lo, hi in (low_strip, high_strip):
                box = []
                for dd in range(ndim):
                    if dd < d:
                        box.append((f"{base}_wl{dd}", f"{base}_wh{dd}"))
                    elif dd == d:
                        box.append((lo, hi))
                    else:
                        box.append(region[dd])
                self._emit_zero_box(stage, box)

    def _emit_zero_box(self, stage: Stage,
                       box: list[tuple[str, str]]) -> None:
        """memset one box of the stage's scratchpad (absolute coords)."""
        w = self.w
        ndim = len(box)
        ctype = self._stage_ctype(stage)
        w.open("")
        for dd in range(ndim - 1):
            w.open(f"for (long z{dd} = {box[dd][0]}; "
                   f"z{dd} <= {box[dd][1]}; z{dd}++)")
        lo, hi = box[ndim - 1]
        w.emit(f"long _zl = {lo}, _zh = {hi};")
        indices = [f"z{dd}" for dd in range(ndim - 1)] + ["_zl"]
        access = self._scratch_access(stage, indices)
        w.emit(f"if (_zh >= _zl) memset(&{access}, 0, "
               f"(size_t)(_zh - _zl + 1) * sizeof({ctype}));")
        for _ in range(ndim - 1):
            w.close()
        w.close()


def generate_c(plan: PipelinePlan, name: str = "pipeline",
               instrument: bool = False) -> str:
    """Generate the complete C translation unit for a compiled pipeline.

    ``instrument=True`` adds per-group wall-clock timers and tile
    counters plus exported ``_stats`` / ``_stats_reset`` accessors (see
    :class:`CGenerator`)."""
    return CGenerator(plan, name, instrument=instrument).generate()
