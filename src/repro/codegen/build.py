"""Compile generated C with the system compiler and load it via ctypes.

This closes the loop the paper's toolchain has: DSL -> optimizer -> C ->
native shared object -> callable pipeline.  The original uses icc with
``-O3 -xhost``; here any ``cc``-compatible compiler works (gcc by
default) with ``-O3 -march=native -fopenmp``.  ``vectorize=False``
compiles with the auto-vectorizer disabled, giving the paper's
non-vectorized comparison points.
"""

from __future__ import annotations

import ctypes
import hashlib
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.codegen.cgen import CGenerator, generate_c
from repro.compiler.plan import PipelinePlan
from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.poly.affine import to_affine


class BuildError(RuntimeError):
    """The C compiler failed or is unavailable."""


def find_compiler() -> str | None:
    """Locate a usable C compiler."""
    for cc in ("gcc", "cc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_compiler() is not None


class NativePipeline:
    """A compiled-to-native pipeline, callable like the interpreter."""

    def __init__(self, plan: PipelinePlan, source: str, lib_path: Path,
                 func_name: str):
        self.plan = plan
        self.source = source
        self.lib_path = lib_path
        self._lib = ctypes.CDLL(str(lib_path))
        self._func = getattr(self._lib, func_name)
        self._func.restype = None
        self._params = sorted(plan.estimates, key=lambda p: p.name)
        self._images = list(plan.ir.graph.inputs)
        self._outputs = list(plan.outputs)

    def __call__(self, param_values: Mapping[Parameter, int],
                 inputs: Mapping[Image, np.ndarray],
                 *, n_threads: int = 1) -> dict[str, np.ndarray]:
        params = dict(param_values)
        args: list = [ctypes.c_int(n_threads)]
        args += [ctypes.c_long(int(params[p])) for p in self._params]

        arrays = []
        for image in self._images:
            extents = tuple(
                to_affine(e, params_only=True).evaluate_int(params)
                for e in image.extents)
            array = np.ascontiguousarray(inputs[image],
                                         dtype=image.dtype.np_dtype)
            if array.shape != extents:
                raise ValueError(
                    f"input {image.name!r} has shape {array.shape}, "
                    f"expected {extents}")
            arrays.append(array)
            args.append(array.ctypes.data_as(ctypes.c_void_p))

        outputs: dict[str, np.ndarray] = {}
        out_arrays = []
        for stage in self._outputs:
            box = self.plan.ir[stage].domain.concretize(params)
            if box is None:
                raise ValueError(
                    f"output {stage.name!r} has an empty domain")
            shape = tuple(ivl.size for ivl in box)
            out = np.zeros(shape, dtype=stage.dtype.np_dtype)
            out_arrays.append(out)
            args.append(out.ctypes.data_as(ctypes.c_void_p))
        self._func(*args)
        for original, stage in self.plan.output_map.items():
            idx = self._outputs.index(stage)
            outputs[original.name] = out_arrays[idx]
        return outputs


def build_native(plan: PipelinePlan, name: str = "pipeline",
                 *, vectorize: bool = True,
                 cache_dir: str | Path | None = None,
                 extra_flags: tuple[str, ...] = ()) -> NativePipeline:
    """Generate, compile and load the C implementation of a plan."""
    cc = find_compiler()
    if cc is None:
        raise BuildError("no C compiler found (tried gcc, cc, clang)")
    source = generate_c(plan, name)
    func_name = CGenerator(plan, name).func_name

    flags = ["-O3", "-march=native", "-fopenmp", "-shared", "-fPIC",
             "-std=gnu11"]
    if not vectorize:
        flags += ["-fno-tree-vectorize", "-fno-tree-slp-vectorize"]
    flags += list(extra_flags)

    digest = hashlib.sha256(
        (source + " ".join(flags)).encode()).hexdigest()[:16]
    base = Path(cache_dir) if cache_dir else \
        Path(tempfile.gettempdir()) / "repro_codegen"
    base.mkdir(parents=True, exist_ok=True)
    c_path = base / f"{name}_{digest}.c"
    so_path = base / f"{name}_{digest}.so"

    if not so_path.exists():
        c_path.write_text(source)
        cmd = [cc, *flags, str(c_path), "-o", str(so_path), "-lm"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            raise BuildError(
                f"C compilation failed:\n{' '.join(cmd)}\n{result.stderr}")
    return NativePipeline(plan, source, so_path, func_name)
