"""Compile generated C with the system compiler and load it via ctypes.

This closes the loop the paper's toolchain has: DSL -> optimizer -> C ->
native shared object -> callable pipeline.  The original uses icc with
``-O3 -xhost``; here any ``cc``-compatible compiler works (gcc by
default) with ``-O3 -march=native -fopenmp``.  ``vectorize=False``
compiles with the auto-vectorizer disabled, giving the paper's
non-vectorized comparison points.

Compiled artifacts live in a persistent, concurrency-safe cache
(:class:`CompileCache`).  Artifacts are keyed by a content digest of the
generated C *source* and the compiler *flags* — never by the caller's
pipeline name — so identical configurations hit the cache across
autotune runs and across processes.  Every generated translation unit is
emitted with one canonical entry-point symbol; the user-facing name is
cosmetic (it only affects the :attr:`NativePipeline.source` listing).
Publication is atomic: sources and shared objects are written to
uniquely-named temporaries in the cache directory and moved into place
with :func:`os.replace`, so concurrent writers — e.g. the parallel
autotuner's compile farm (:mod:`repro.autotune.farm`) — can race on the
same key without a reader ever observing a torn file.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.codegen.cgen import generate_c
from repro.compiler.plan import PipelinePlan
from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.poly.affine import to_affine

#: the pipeline name every cached translation unit is generated with; the
#: exported symbol is derived from it, so one artifact serves all callers
CANONICAL_NAME = "repro_kernel"
CANONICAL_FUNC = "pipe_" + CANONICAL_NAME


class BuildError(RuntimeError):
    """The C compiler failed or is unavailable."""


def find_compiler() -> str | None:
    """Locate a usable C compiler."""
    for cc in ("gcc", "cc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_compiler() is not None


def build_flags(*, vectorize: bool = True,
                extra_flags: Sequence[str] = ()) -> tuple[str, ...]:
    """The full compiler flag set for one build configuration.

    ``-ffp-contract=off`` keeps floating-point results independent of
    the emitted expression *shape*: without it the compiler contracts
    different ``a*b + c`` pairs into FMAs depending on how the source is
    factored, and the specialized (CSE'd/hoisted) fast nests would
    differ from the safe nests by a few ULPs.  With contraction off,
    ``specialize=True`` and ``specialize=False`` builds are
    bit-identical.
    """
    flags = ["-O3", "-march=native", "-fopenmp", "-shared", "-fPIC",
             "-std=gnu11", "-ffp-contract=off"]
    if not vectorize:
        flags += ["-fno-tree-vectorize", "-fno-tree-slp-vectorize"]
    return tuple(flags) + tuple(extra_flags)


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or a per-user temp directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro_codegen"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one in-process cache handle."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


@dataclass(frozen=True)
class NativeStats:
    """Per-group counters read back from an instrumented native build.

    ``group_seconds[i]`` is the wall-clock time the call spent in group
    ``i`` (as measured inside the generated C by ``repro_now()``);
    ``group_tiles[i]`` is the number of tiles it executed (0 for untiled
    groups).  Index order matches ``plan.group_plans``.
    """

    group_seconds: tuple[float, ...]
    group_tiles: tuple[int, ...]

    @property
    def total_seconds(self) -> float:
        return sum(self.group_seconds)

    def as_dict(self) -> dict:
        return {"group_seconds": list(self.group_seconds),
                "group_tiles": list(self.group_tiles)}

    def render(self) -> str:
        lines = []
        for i, (s, t) in enumerate(zip(self.group_seconds,
                                       self.group_tiles)):
            lines.append(f"group {i}: {s * 1e3:.3f} ms"
                         + (f", {t} tiles" if t else ""))
        return "\n".join(lines)


@dataclass(frozen=True)
class BuildInfo:
    """Provenance of one compiled artifact (picklable across processes)."""

    key: str
    so_path: Path
    cache_hit: bool
    compile_s: float

    @property
    def c_path(self) -> Path:
        return self.so_path.with_suffix(".c")


class CompileCache:
    """Persistent cache of compiled shared objects, safe under concurrency.

    Layout: ``<root>/<digest>.so`` plus the matching ``<digest>.c`` for
    inspection, where ``digest`` is a SHA-256 over flags and source.
    Writers compile into dot-prefixed temporaries and publish with
    ``os.replace``; duplicate concurrent builds of the same key are
    allowed (both produce identical bytes, last replace wins).
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self._stats = CacheStats()
        self._lock = threading.Lock()

    # -- keys --------------------------------------------------------------
    @staticmethod
    def key_for(source: str, flags: Sequence[str]) -> str:
        h = hashlib.sha256()
        h.update("\x1f".join(flags).encode())
        h.update(b"\x00")
        h.update(source.encode())
        return h.hexdigest()[:32]

    def so_path(self, key: str) -> Path:
        return self.root / f"{key}.so"

    # -- lookup / build ----------------------------------------------------
    def get_or_compile(self, source: str, flags: Sequence[str],
                       cc: str | None = None) -> BuildInfo:
        """Return the artifact for (source, flags), compiling on miss."""
        key = self.key_for(source, flags)
        so_path = self.so_path(key)
        if so_path.exists():
            with self._lock:
                self._stats.hits += 1
            return BuildInfo(key, so_path, True, 0.0)
        cc = cc or find_compiler()
        if cc is None:
            raise BuildError("no C compiler found (tried gcc, cc, clang)")
        t0 = time.perf_counter()
        tag = uuid.uuid4().hex
        tmp_c = self.root / f".{key}.{tag}.c"
        tmp_so = self.root / f".{key}.{tag}.so"
        try:
            tmp_c.write_text(source)
            cmd = [cc, *flags, str(tmp_c), "-o", str(tmp_so), "-lm"]
            result = subprocess.run(cmd, capture_output=True, text=True)
            if result.returncode != 0:
                raise BuildError(
                    f"C compilation failed:\n{' '.join(cmd)}\n"
                    f"{result.stderr}")
            os.replace(tmp_c, so_path.with_suffix(".c"))
            os.replace(tmp_so, so_path)
        finally:
            for tmp in (tmp_c, tmp_so):
                tmp.unlink(missing_ok=True)
        with self._lock:
            self._stats.misses += 1
        return BuildInfo(key, so_path, False, time.perf_counter() - t0)

    # -- inspection / maintenance -----------------------------------------
    def entries(self) -> list[Path]:
        """Published shared objects, oldest first."""
        return sorted(self.root.glob("*.so"), key=lambda p: p.stat().st_mtime)

    def size_bytes(self) -> int:
        total = 0
        for so in self.entries():
            for path in (so, so.with_suffix(".c")):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._stats.hits, self._stats.misses,
                              self._stats.evictions)

    def reset_stats(self) -> None:
        with self._lock:
            self._stats = CacheStats()

    def _remove(self, so: Path) -> None:
        for path in (so, so.with_suffix(".c")):
            try:
                path.unlink()
            except OSError:
                pass

    def evict(self, max_entries: int | None = None,
              max_bytes: int | None = None) -> int:
        """Drop oldest artifacts until within the given bounds."""
        removed = 0
        entries = self.entries()
        if max_entries is not None:
            while len(entries) > max_entries:
                self._remove(entries.pop(0))
                removed += 1
        if max_bytes is not None:
            while entries and self.size_bytes() > max_bytes:
                self._remove(entries.pop(0))
                removed += 1
        with self._lock:
            self._stats.evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every artifact (and stray temporaries); returns count."""
        removed = 0
        for so in self.entries():
            self._remove(so)
            removed += 1
        for tmp in self.root.glob(".*.c"):
            tmp.unlink(missing_ok=True)
        for tmp in self.root.glob(".*.so"):
            tmp.unlink(missing_ok=True)
        with self._lock:
            self._stats.evictions += removed
        return removed


_caches: dict[str, CompileCache] = {}
_caches_lock = threading.Lock()


def get_cache(cache_dir: str | Path | None = None) -> CompileCache:
    """The process-wide cache handle for a root (default root if None)."""
    root = os.path.abspath(str(cache_dir) if cache_dir
                           else default_cache_dir())
    with _caches_lock:
        cache = _caches.get(root)
        if cache is None:
            cache = _caches[root] = CompileCache(root)
    return cache


#: per-artifact call locks, shared by every :class:`NativePipeline`
#: loaded from the same published ``.so`` — the shared library (and hence
#: its arenas and instrumentation counters) is process-global state, so a
#: per-*instance* lock would not actually protect two instances of the
#: same artifact from racing on it
_call_locks: dict[str, threading.Lock] = {}
_call_locks_lock = threading.Lock()


def _artifact_lock(lib_path: str | Path) -> threading.Lock:
    """The process-wide call lock for one published artifact."""
    key = os.path.realpath(str(lib_path))
    with _call_locks_lock:
        lock = _call_locks.get(key)
        if lock is None:
            lock = _call_locks[key] = threading.Lock()
        return lock


class NativePipeline:
    """A compiled-to-native pipeline, callable like the interpreter.

    When the artifact was built with ``instrument=True``, every call
    resets the in-library counters, runs, and publishes the readings as
    :attr:`last_stats` (a :class:`NativeStats`); uninstrumented builds
    leave :attr:`last_stats` as ``None``.

    **Output-buffer ABI**: output pointers must reference zero-filled
    memory.  This wrapper allocates them with ``np.zeros`` (or acquires
    zero-filled arrays from the caller's ``pool``); specialized builds
    (``CompileOptions.specialize``) rely on it and skip the defensive
    in-library ``memset``.

    **Scratch arenas**: specialized builds keep per-thread scratchpads
    in arenas owned by the shared library — sized at first call, grown
    monotonically, reused across calls.  :meth:`release` frees them
    (exported as ``<func>_release``); nothing calls it implicitly,
    because the ``.so`` (and hence the arena) is shared by every
    ``NativePipeline`` loaded from the same cached artifact.

    **Concurrency**: builds whose library holds shared mutable state —
    scratch arenas or instrumentation counters — serialize calls on a
    *per-artifact* lock (shared across every instance loaded from the
    same ``.so``, see :data:`_call_locks`): concurrent ``ctypes``
    invocations of one such library would race on its arena slots and
    counters.  This is contention by design; callers needing parallel
    native throughput on one artifact should use OpenMP threads within
    a call (``n_threads=N``) rather than concurrent calls.  Builds with
    no shared state (``needs_call_lock`` False — uninstrumented,
    arena-free) take no lock at all: distinct artifacts never serialize
    against each other.

    **Batch ABI**: artifacts additionally export ``<func>_batch(int
    _nframes, int _nthreads, params..., const T* const* in_frames...,
    T* const* out_frames...)``, which sets up the thread team and
    scratch arena once and loops the same tile nests over N frames —
    amortizing per-call dispatch cost for small frames.  The symbol is
    *probed*, never required (:attr:`has_batch`): :meth:`run_batch` on
    an artifact cached before the batch ABI existed degrades to N
    sequential single-frame calls with identical results.
    """

    def __init__(self, plan: PipelinePlan, source: str, lib_path: Path,
                 func_name: str, build_info: BuildInfo | None = None):
        self.plan = plan
        self.source = source
        self.lib_path = lib_path
        self.build_info = build_info
        #: True when this pipeline was resolved through the persistent
        #: schedule store (no generate_c, no compiler invocation)
        self.loaded_from_store = False
        self._lib = ctypes.CDLL(str(lib_path))
        self._func = getattr(self._lib, func_name)
        self._func.restype = None
        self._params = sorted(plan.estimates, key=lambda p: p.name)
        self._images = list(plan.ir.graph.inputs)
        self._outputs = list(plan.outputs)
        self.last_stats: NativeStats | None = None
        self._n_groups = len(plan.group_plans)
        self._call_lock = _artifact_lock(lib_path)
        # stats symbols exist only in instrumented builds — probe, don't
        # require
        try:
            self._stats_fn = getattr(self._lib, func_name + "_stats")
            self._stats_reset = getattr(self._lib,
                                        func_name + "_stats_reset")
        except AttributeError:
            self._stats_fn = self._stats_reset = None
        else:
            self._stats_fn.restype = None
            self._stats_fn.argtypes = [ctypes.POINTER(ctypes.c_double),
                                       ctypes.POINTER(ctypes.c_long)]
            self._stats_reset.restype = None
            self._stats_reset.argtypes = []
        # the arena release symbol exists only in specialized builds
        # with tiled scratch — probe, don't require
        try:
            self._release_fn = getattr(self._lib, func_name + "_release")
        except AttributeError:
            self._release_fn = None
        else:
            self._release_fn.restype = None
            self._release_fn.argtypes = []
        # the batch entry point is absent from artifacts cached before it
        # existed — probe, and let run_batch degrade to sequential calls
        try:
            self._batch_fn = getattr(self._lib, func_name + "_batch")
        except AttributeError:
            self._batch_fn = None
        else:
            self._batch_fn.restype = None

    @property
    def instrumented(self) -> bool:
        return self._stats_fn is not None

    @property
    def has_arena(self) -> bool:
        """Does this build own persistent per-thread scratch arenas?"""
        return self._release_fn is not None

    @property
    def has_batch(self) -> bool:
        """Does the artifact export the multi-frame batch entry point?

        False only for shared objects cached before batch codegen
        existed; :meth:`run_batch` then degrades to sequential
        single-frame calls.
        """
        return self._batch_fn is not None

    @property
    def needs_call_lock(self) -> bool:
        """Does calling this library mutate shared in-library state?

        True for instrumented builds (global counters) and arena-owning
        builds (per-thread scratch slots); such calls serialize on the
        per-artifact lock.  False means calls are re-entrant and taken
        lock-free.
        """
        return self._stats_fn is not None or self._release_fn is not None

    def release(self) -> None:
        """Free the library's persistent per-thread scratch arenas.

        Safe to call at any time (the next invocation re-allocates) and
        on builds without arenas (no-op).
        """
        if self._release_fn is not None:
            with self._call_lock:
                self._release_fn()

    def _read_stats(self) -> NativeStats:
        n = max(1, self._n_groups)
        seconds = (ctypes.c_double * n)()
        tiles = (ctypes.c_long * n)()
        self._stats_fn(seconds, tiles)
        return NativeStats(tuple(seconds[: self._n_groups]),
                           tuple(tiles[: self._n_groups]))

    # -- argument marshalling ---------------------------------------------
    def _checked_params(self, param_values: Mapping) -> dict:
        params = dict(param_values)
        missing = [p.name for p in self._params if p not in params]
        if missing:
            raise ValueError(
                "missing value for parameter(s): "
                + ", ".join(sorted(missing)))
        return params

    def _image_extents(self, image: Image,
                       params: Mapping) -> tuple[int, ...]:
        return tuple(
            to_affine(e, params_only=True).evaluate_int(params)
            for e in image.extents)

    def _checked_input(self, image: Image, inputs: Mapping,
                       extents: tuple[int, ...]) -> np.ndarray:
        if image not in inputs:
            raise ValueError(
                f"missing input array for image {image.name!r}")
        array = np.ascontiguousarray(inputs[image],
                                     dtype=image.dtype.np_dtype)
        if array.shape != extents:
            raise ValueError(
                f"input {image.name!r} has shape {array.shape}, "
                f"expected {extents}")
        return array

    def _output_shape(self, stage, params: Mapping) -> tuple[int, ...]:
        box = self.plan.ir[stage].domain.concretize(params)
        if box is None:
            raise ValueError(
                f"output {stage.name!r} has an empty domain")
        return tuple(ivl.size for ivl in box)

    def _acquire_output(self, stage, shape, pool) -> np.ndarray:
        if pool is not None:
            return pool.acquire(shape, stage.dtype.np_dtype)
        return np.zeros(shape, dtype=stage.dtype.np_dtype)

    def _invoke(self, fn, args, tracer, pool, release_on_error) -> None:
        """Call into the library under the artifact's locking contract."""
        try:
            if not self.needs_call_lock:
                # no shared in-library state: run lock-free, concurrently
                fn(*args)
            else:
                with self._call_lock:
                    if self._stats_reset is not None:
                        self._stats_reset()
                    fn(*args)
                    if self._stats_fn is not None:
                        self.last_stats = self._read_stats()
                        if tracer is not None and tracer.enabled:
                            for i, (s, t) in enumerate(
                                    zip(self.last_stats.group_seconds,
                                        self.last_stats.group_tiles)):
                                tracer.gauge(f"native.group[{i}].seconds",
                                             s)
                                if t:
                                    tracer.count(
                                        f"native.group[{i}].tiles", t)
        except BaseException:
            if pool is not None:
                pool.release(*release_on_error)
            raise

    def _collect_outputs(self, out_arrays: list) -> dict[str, np.ndarray]:
        outputs: dict[str, np.ndarray] = {}
        for original, stage in self.plan.output_map.items():
            idx = self._outputs.index(stage)
            outputs[original.name] = out_arrays[idx]
        return outputs

    def __call__(self, param_values: Mapping[Parameter, int],
                 inputs: Mapping[Image, np.ndarray],
                 *, n_threads: int = 1,
                 tracer=None,
                 pool=None) -> dict[str, np.ndarray]:
        """Run the native pipeline.

        ``pool`` is an optional
        :class:`repro.runtime.buffers.BufferPool`: output arrays are
        acquired from it (zero-filled, per the output ABI) instead of
        freshly allocated, and stay leased until the caller releases
        them — the serving layer uses this for zero-allocation
        steady-state frames.
        """
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        params = self._checked_params(param_values)
        args: list = [ctypes.c_int(n_threads)]
        args += [ctypes.c_long(int(params[p])) for p in self._params]

        arrays = []
        for image in self._images:
            array = self._checked_input(image, inputs,
                                        self._image_extents(image, params))
            arrays.append(array)
            args.append(array.ctypes.data_as(ctypes.c_void_p))

        out_arrays = []
        for stage in self._outputs:
            shape = self._output_shape(stage, params)
            out = self._acquire_output(stage, shape, pool)
            out_arrays.append(out)
            args.append(out.ctypes.data_as(ctypes.c_void_p))
        self._invoke(self._func, args, tracer, pool, out_arrays)
        return self._collect_outputs(out_arrays)

    def run_batch(self, param_values: Mapping[Parameter, int],
                  inputs_list: Sequence[Mapping[Image, np.ndarray]],
                  *, n_threads: int = 1,
                  tracer=None,
                  pool=None) -> list[dict[str, np.ndarray]]:
        """Run ``len(inputs_list)`` frames through one native call.

        Every frame shares ``param_values`` (and hence shapes); inputs
        and outputs are marshalled as per-frame pointer arrays into the
        generated ``<func>_batch`` entry point, which pays the ctypes
        crossing, thread-team setup, arena reservation and intermediate
        allocation once for the whole batch.  Outputs are byte-identical
        to ``len(inputs_list)`` sequential single-frame calls; artifacts
        cached before batch codegen existed (:attr:`has_batch` False)
        transparently degrade to exactly that loop.

        Returns one output dict per frame, in submission order.  As in
        :meth:`__call__`, ``pool`` supplies the zero-filled output
        buffers and gets them all back if the call raises.
        """
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        inputs_list = list(inputs_list)
        n = len(inputs_list)
        if n == 0:
            return []
        if self._batch_fn is None:
            return [self(param_values, inputs, n_threads=n_threads,
                         tracer=tracer, pool=pool)
                    for inputs in inputs_list]
        params = self._checked_params(param_values)
        args: list = [ctypes.c_int(n), ctypes.c_int(n_threads)]
        args += [ctypes.c_long(int(params[p])) for p in self._params]

        arrays = []  # keep per-frame input arrays alive across the call
        for image in self._images:
            extents = self._image_extents(image, params)
            ptrs = (ctypes.c_void_p * n)()
            for f, inputs in enumerate(inputs_list):
                array = self._checked_input(image, inputs, extents)
                arrays.append(array)
                ptrs[f] = array.ctypes.data
            args.append(ptrs)

        per_frame_outs: list[list[np.ndarray]] = [[] for _ in range(n)]
        all_outs: list[np.ndarray] = []
        for stage in self._outputs:
            shape = self._output_shape(stage, params)
            ptrs = (ctypes.c_void_p * n)()
            for f in range(n):
                out = self._acquire_output(stage, shape, pool)
                per_frame_outs[f].append(out)
                all_outs.append(out)
                ptrs[f] = out.ctypes.data
            args.append(ptrs)
        self._invoke(self._batch_fn, args, tracer, pool, all_outs)
        return [self._collect_outputs(outs) for outs in per_frame_outs]


def compile_artifact(plan: PipelinePlan, *, vectorize: bool = True,
                     instrument: bool = False,
                     cache_dir: str | Path | None = None,
                     extra_flags: tuple[str, ...] = (),
                     cache: CompileCache | None = None) -> BuildInfo:
    """Generate C for a plan and compile it into the cache (no ctypes load).

    This is the process-safe half of :func:`build_native`: it can run in a
    worker process and its :class:`BuildInfo` result pickles back to the
    parent, which loads the published artifact with :func:`load_native`.
    ``instrument=True`` compiles with in-library per-group timers (the
    different source hashes to a distinct cache key, so instrumented and
    plain builds of the same plan coexist in the cache).
    """
    cc = find_compiler()
    if cc is None:
        raise BuildError("no C compiler found (tried gcc, cc, clang)")
    source = generate_c(plan, CANONICAL_NAME, instrument=instrument)
    flags = build_flags(vectorize=vectorize, extra_flags=tuple(extra_flags))
    if cache is None:
        cache = get_cache(cache_dir)
    return cache.get_or_compile(source, flags, cc)


def load_native(plan: PipelinePlan, name: str = "pipeline",
                info: BuildInfo | None = None) -> NativePipeline:
    """Wrap a published artifact as a callable :class:`NativePipeline`.

    ``info`` is the result of :func:`compile_artifact` (possibly from
    another process).  The ``.source`` attribute is presented under the
    caller's ``name`` even though the artifact exports the canonical
    symbol.
    """
    if info is None:
        return build_native(plan, name)
    try:
        source = info.c_path.read_text()
    except OSError:
        source = generate_c(plan, CANONICAL_NAME)
    from repro.codegen.cgen import _sanitize
    user_func = "pipe_" + _sanitize(name)
    if user_func != CANONICAL_FUNC:
        source = source.replace(CANONICAL_FUNC, user_func)
    return NativePipeline(plan, source, info.so_path, CANONICAL_FUNC,
                          build_info=info)


def _schedule_store(cache: CompileCache | None,
                    cache_dir: str | Path | None,
                    store_root: str | Path | None):
    """The :class:`~repro.schedule.ScheduleStore` next to this cache."""
    from repro.schedule.store import STORE_SUBDIR, ScheduleStore
    if store_root is not None:
        return ScheduleStore(store_root)
    root = cache.root if cache is not None else \
        Path(cache_dir) if cache_dir else default_cache_dir()
    return ScheduleStore(Path(root) / STORE_SUBDIR)


def _plan_store_key(plan: PipelinePlan) -> str:
    """Pipeline digest of the *original* (pre-inline) outputs a plan was
    compiled from — the store key is pipeline identity, not schedule."""
    from repro.schedule.store import pipeline_digest
    return pipeline_digest(list(plan.output_map), plan.estimates)


def _hints_dict(plan: PipelinePlan) -> dict | None:
    return plan.hints.to_dict() if plan.hints is not None else None


def _try_store_load(plan: PipelinePlan, name: str, *, entry,
                    vectorize: bool, instrument: bool,
                    cache: CompileCache) -> NativePipeline | None:
    """Load the stored artifact if it matches this plan's schedule and
    build configuration — the cold-start fast path: no ``generate_c``,
    no compiler invocation, just a ``dlopen`` of the published ``.so``."""
    if entry is None or entry.artifact is None:
        return None
    if entry.compile_options() != plan.options:
        return None
    if (entry.hints or None) != (_hints_dict(plan) or None):
        return None
    if bool(entry.artifact.get("vectorize", True)) != bool(vectorize):
        return None
    if bool(entry.artifact.get("instrument", False)) != bool(instrument):
        return None
    so_path = cache.so_path(entry.artifact["key"])
    if not so_path.exists():
        return None
    info = BuildInfo(entry.artifact["key"], so_path, True, 0.0)
    native = load_native(plan, name, info)
    native.loaded_from_store = True
    return native


def build_native(plan: PipelinePlan, name: str = "pipeline",
                 *, vectorize: bool = True,
                 instrument: bool = False,
                 cache_dir: str | Path | None = None,
                 extra_flags: tuple[str, ...] = (),
                 cache: CompileCache | None = None,
                 store: str | None = None,
                 store_root: str | Path | None = None) -> NativePipeline:
    """Generate, compile and load the C implementation of a plan.

    ``instrument=True`` builds with per-group timers and tile counters;
    the loaded :class:`NativePipeline` then fills ``last_stats`` after
    every call.

    ``store="ro"|"rw"`` consults the persistent schedule store
    (:mod:`repro.schedule`) before compiling: when the store holds an
    entry for this pipeline (content digest) on this machine
    (fingerprint) whose schedule and build configuration match the
    plan's, the published artifact is loaded directly — no codegen, no
    compiler invocation (``native.loaded_from_store`` is True).  With
    ``"rw"`` a fresh build additionally publishes its artifact
    coordinates, unless a tuned entry already exists (autotune winners
    are never clobbered by untimed builds).  ``store_root`` overrides
    the store directory (default: ``<cache root>/schedules``)."""
    if store not in (None, "ro", "rw"):
        raise ValueError(f"store must be None, 'ro' or 'rw', got {store!r}")
    entry = None
    if store is not None:
        from repro.schedule.store import (
            StoredSchedule, machine_fingerprint,
        )
        if cache is None:
            cache = get_cache(cache_dir)
        sched_store = _schedule_store(cache, cache_dir, store_root)
        digest = _plan_store_key(plan)
        fingerprint = machine_fingerprint()
        entry = sched_store.lookup(digest, fingerprint)
        native = _try_store_load(plan, name, entry=entry,
                                 vectorize=vectorize,
                                 instrument=instrument, cache=cache)
        if native is not None:
            return native
    info = compile_artifact(plan, vectorize=vectorize, instrument=instrument,
                            cache_dir=cache_dir, extra_flags=extra_flags,
                            cache=cache)
    native = load_native(plan, name, info)
    if store == "rw" and (entry is None or entry.tune_result is None):
        sched_store.publish(StoredSchedule(
            pipeline=digest, fingerprint=fingerprint,
            options=plan.options.to_dict(), hints=_hints_dict(plan),
            tune_result=entry.tune_result if entry is not None else None,
            artifact={"key": info.key, "vectorize": bool(vectorize),
                      "instrument": bool(instrument)},
            created=time.time()))
    return native


class AsyncBuild:
    """Handle to a native build running on a background thread.

    The serving layer (:mod:`repro.serve`) starts one of these and keeps
    answering requests with the interpreter until :meth:`done`; callers
    then pick up the :class:`NativePipeline` with :meth:`result` or the
    failure with :meth:`exception`.  The thread is a daemon — an exiting
    process never blocks on a half-finished ``gcc``.
    """

    def __init__(self, plan: PipelinePlan, name: str = "pipeline",
                 **kwargs):
        self.plan = plan
        self.name = name
        self._native: NativePipeline | None = None
        self._exc: BaseException | None = None
        self._finished = threading.Event()
        self._thread = threading.Thread(
            target=self._run, kwargs=kwargs, daemon=True,
            name=f"repro-build-{name}")
        self._thread.start()

    def _run(self, **kwargs) -> None:
        try:
            # module-global lookup on purpose: tests monkeypatch
            # ``build_native`` to inject compiler/load failures
            self._native = build_native(self.plan, self.name, **kwargs)
        except BaseException as exc:  # published via exception()
            self._exc = exc
        finally:
            self._finished.set()

    def done(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the build finishes (or ``timeout``); True if done."""
        return self._finished.wait(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._finished.wait(timeout):
            raise TimeoutError(f"build of {self.name!r} still running")
        return self._exc

    def result(self, timeout: float | None = None) -> NativePipeline:
        """The built pipeline; re-raises the build failure if there was
        one, :class:`TimeoutError` if still compiling after ``timeout``."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"build of {self.name!r} still running")
        if self._exc is not None:
            raise self._exc
        assert self._native is not None
        return self._native


def build_native_async(plan: PipelinePlan, name: str = "pipeline",
                       **kwargs) -> AsyncBuild:
    """Start :func:`build_native` on a background thread.

    Returns immediately with an :class:`AsyncBuild`; ``kwargs`` are
    forwarded to :func:`build_native` (``vectorize``, ``instrument``,
    ``cache_dir``, ...).
    """
    return AsyncBuild(plan, name, **kwargs)
