"""Point-wise inlining (paper Section 3, front end).

Substitutes the definitions of point-wise producer stages into their
consumers — the paper's example is folding ``Ixx/Ixy/Iyy/det/trace`` of
Harris corner detection away so only the stencil stages remain (compare
Figure 7's scratchpad list).  Inlining a point-wise stage trades a little
redundant computation (its expression is duplicated per consuming access)
for locality and fewer buffers; stencil/sampling stages are never inlined
because the redundancy would multiply with their tap count.

A producer is inlined when all of the following hold:

* it is a point-wise :class:`~repro.lang.function.Function` (not an
  accumulator, not self-referential, not a pipeline output);
* it has a single case;
* under the parameter estimates, every consumer access provably lands
  inside that case's region (so dropping the case condition is safe).

The pass is purely functional: user stage objects are never mutated.
Stages whose definitions change are *cloned*, and every downstream
reference is redirected to the clone.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.lang.constructs import Case, Parameter
from repro.lang.expr import (
    BinOp, BoolExpr, Call, Cast, CondAnd, Condition, CondNot, CondOr, Expr,
    Literal, Reference, Select, TrueCond, UnOp,
)
from repro.lang.function import Accumulate, Accumulator, Function
from repro.lang.image import Image
from repro.pipeline.graph import PipelineGraph, Stage
from repro.pipeline.ir import PipelineIR, StageIR
from repro.poly.interval import IntInterval, evaluate_access


def rewrite_expr(expr: Expr,
                 on_reference: Callable[[Reference], Expr | None]) -> Expr:
    """Rebuild ``expr`` bottom-up, letting ``on_reference`` replace accesses.

    ``on_reference`` receives a Reference whose arguments have already been
    rewritten; returning ``None`` keeps the reference as-is.
    """
    if isinstance(expr, Reference):
        new_args = [rewrite_expr(a, on_reference) for a in expr.args]
        candidate = Reference(expr.function, new_args)
        replaced = on_reference(candidate)
        return candidate if replaced is None else replaced
    if isinstance(expr, Literal) or not list(expr.children()):
        # Leaves: literals, variables, parameters.
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rewrite_expr(expr.left, on_reference),
                     rewrite_expr(expr.right, on_reference))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, rewrite_expr(expr.operand, on_reference))
    if isinstance(expr, Call):
        return Call(expr.name,
                    [rewrite_expr(a, on_reference) for a in expr.args])
    if isinstance(expr, Cast):
        return Cast(expr.dtype, rewrite_expr(expr.operand, on_reference))
    if isinstance(expr, Select):
        return Select(rewrite_condition(expr.condition, on_reference),
                      rewrite_expr(expr.true_expr, on_reference),
                      rewrite_expr(expr.false_expr, on_reference))
    raise TypeError(f"cannot rewrite expression node {expr!r}")


def rewrite_condition(cond: BoolExpr,
                      on_reference: Callable[[Reference], Expr | None]
                      ) -> BoolExpr:
    """Rebuild a condition tree, rewriting embedded value expressions."""
    if isinstance(cond, TrueCond):
        return cond
    if isinstance(cond, Condition):
        return Condition(rewrite_expr(cond.lhs, on_reference), cond.op,
                         rewrite_expr(cond.rhs, on_reference))
    if isinstance(cond, CondAnd):
        return CondAnd(rewrite_condition(cond.left, on_reference),
                       rewrite_condition(cond.right, on_reference))
    if isinstance(cond, CondOr):
        return CondOr(rewrite_condition(cond.left, on_reference),
                      rewrite_condition(cond.right, on_reference))
    if isinstance(cond, CondNot):
        return CondNot(rewrite_condition(cond.operand, on_reference))
    raise TypeError(f"cannot rewrite condition node {cond!r}")


def _single_case_region_covers(ir: PipelineIR, producer_ir: StageIR,
                               estimates: Mapping[Parameter, int]) -> bool:
    """Check every consumer access falls inside the producer's case region."""
    target_case = producer_ir.cases[0]
    target_box = target_case.box.concretize(estimates)
    if target_box is None:
        return False
    if not target_case.split.is_pure_bounds:
        return False
    producer = producer_ir.stage
    for consumer in ir.graph.consumers(producer):
        consumer_ir = ir[consumer]
        envs = []
        if consumer_ir.is_accumulator:
            var_box = consumer_ir.domain.concretize(estimates)
            red_box = consumer_ir.reduction_domain.concretize(estimates)
            if var_box is None or red_box is None:
                return False
            env: dict = dict(estimates)
            env.update(zip(consumer_ir.variables, var_box))
            env.update(zip(consumer_ir.stage.red_variables, red_box))
            envs.append(env)
        else:
            for case in consumer_ir.cases:
                box = case.box.concretize(estimates)
                if box is None:
                    continue
                env = dict(estimates)
                env.update(zip(consumer_ir.variables, box))
                envs.append(env)
        for access in consumer_ir.accesses_to(producer):
            if not access.is_affine:
                return False
            for env in envs:
                try:
                    ranges = [evaluate_access(f, env) for f in access.forms]
                except KeyError:
                    return False
                for rng, dom in zip(ranges, target_box):
                    if not dom.contains(rng):
                        return False
    return True


def find_inlinable(ir: PipelineIR,
                   estimates: Mapping[Parameter, int]) -> set[Stage]:
    """The set of stages that satisfy all inlining criteria."""
    inlinable: set[Stage] = set()
    for stage_ir in ir.ordered():
        if stage_ir.is_accumulator or stage_ir.is_output:
            continue
        if stage_ir.is_self_referential:
            continue
        if not stage_ir.is_pointwise:
            continue
        if len(stage_ir.cases) != 1:
            continue
        if not _single_case_region_covers(ir, stage_ir, estimates):
            continue
        inlinable.add(stage_ir.stage)
    return inlinable


class InlineResult:
    """Outcome of the inlining pass."""

    def __init__(self, outputs: tuple[Stage, ...],
                 replacements: dict[Stage, Stage],
                 inlined: tuple[Stage, ...]):
        #: Live-out stages of the rewritten pipeline (clones where needed).
        self.outputs = outputs
        #: original stage -> surviving (possibly cloned) stage
        self.replacements = replacements
        #: original stages that were folded away
        self.inlined = inlined


def inline_pipeline(outputs, estimates: Mapping[Parameter, int],
                    only: "set[str] | None" = None) -> InlineResult:
    """Run the inlining pass over a pipeline given by its outputs.

    ``only`` restricts inlining to the named stages (used by scheduling
    hints): a stage is folded only when it is *both* named and satisfies
    every inlinability criterion — a hinted stage that fails the
    criteria survives, and the RV606 verify audit reports the unapplied
    hint rather than this pass silently forcing an unsound inline.
    """
    graph = PipelineGraph(outputs)
    ir = PipelineIR(graph)
    inlinable = find_inlinable(ir, estimates)
    if only is not None:
        inlinable = {s for s in inlinable if s.name in only}

    # body of each inlined stage, with upstream rewrites already applied
    bodies: dict[Stage, Expr] = {}
    # surviving original stage -> clone (or itself when unchanged)
    survivors: dict[Stage, Stage] = {}

    def make_rewriter(self_stage: Stage | None, self_clone: Stage | None):
        def on_reference(ref: Reference) -> Expr | None:
            producer = ref.function
            if isinstance(producer, Image):
                return None
            if producer is self_stage and self_clone is not None:
                return Reference(self_clone, ref.args)
            if producer in bodies:
                body = bodies[producer]
                mapping = dict(zip(producer.variables, ref.args))
                return _substitute_everywhere(body, mapping)
            replacement = survivors.get(producer)
            if replacement is not None and replacement is not producer:
                return Reference(replacement, ref.args)
            return None
        return on_reference

    for stage in graph.topological_order():
        stage_ir = ir[stage]
        if stage in inlinable:
            case = stage.defn[0]
            body = rewrite_expr(case.expression, make_rewriter(None, None))
            bodies[stage] = body
            continue
        if isinstance(stage, Accumulator):
            rewriter = make_rewriter(None, None)
            new_target_args = [rewrite_expr(a, rewriter)
                               for a in stage.defn.target.args]
            new_value = rewrite_expr(stage.defn.value, rewriter)
            changed = not (
                all(a is b for a, b in zip(new_target_args,
                                           stage.defn.target.args))
                and new_value is stage.defn.value)
            if not changed:
                survivors[stage] = stage
                continue
            clone = Accumulator(
                redDom=(list(stage.red_variables), list(stage.red_intervals)),
                varDom=(list(stage.variables), list(stage.intervals)),
                typ=stage.dtype, name=stage.name)
            clone.defn = Accumulate(Reference(clone, new_target_args),
                                    new_value, stage.defn.op)
            survivors[stage] = clone
            continue

        # Ordinary function: rewrite all cases; clone if anything changed.
        clone = Function(varDom=(list(stage.variables), list(stage.intervals)),
                         typ=stage.dtype, name=stage.name)
        rewriter = make_rewriter(stage, clone)
        new_cases = []
        changed = False
        for case in stage.defn:
            new_cond = rewrite_condition(case.condition, rewriter)
            new_expr = rewrite_expr(case.expression, rewriter)
            if new_cond is not case.condition or new_expr is not case.expression:
                changed = True
            new_cases.append(Case(new_cond, new_expr)
                             if not isinstance(new_cond, TrueCond)
                             else Case(TrueCond(), new_expr))
        if not changed:
            survivors[stage] = stage
            continue
        clone.defn = new_cases
        survivors[stage] = clone

    new_outputs = tuple(survivors[out] for out in graph.outputs)
    return InlineResult(new_outputs, survivors, tuple(bodies))


def _substitute_everywhere(body: Expr, mapping: dict) -> Expr:
    """Substitute domain variables by argument expressions, deeply."""
    def on_reference(ref: Reference) -> Expr | None:
        return None

    def rewrite(expr: Expr) -> Expr:
        if expr in mapping:
            return mapping[expr]
        if isinstance(expr, Reference):
            return Reference(expr.function, [rewrite(a) for a in expr.args])
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, UnOp):
            return UnOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, Call):
            return Call(expr.name, [rewrite(a) for a in expr.args])
        if isinstance(expr, Cast):
            return Cast(expr.dtype, rewrite(expr.operand))
        if isinstance(expr, Select):
            return Select(_rewrite_cond(expr.condition),
                          rewrite(expr.true_expr), rewrite(expr.false_expr))
        return expr

    def _rewrite_cond(cond: BoolExpr) -> BoolExpr:
        if isinstance(cond, Condition):
            return Condition(rewrite(cond.lhs), cond.op, rewrite(cond.rhs))
        if isinstance(cond, CondAnd):
            return CondAnd(_rewrite_cond(cond.left), _rewrite_cond(cond.right))
        if isinstance(cond, CondOr):
            return CondOr(_rewrite_cond(cond.left), _rewrite_cond(cond.right))
        if isinstance(cond, CondNot):
            return CondNot(_rewrite_cond(cond.operand))
        return cond

    return rewrite(body)
