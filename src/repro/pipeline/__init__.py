"""Pipeline front end: graph extraction, IR lowering, bounds checking,
point-wise inlining (paper Section 3, first compiler phases)."""

from repro.pipeline.boundscheck import BoundsError, BoundsViolation, check_bounds
from repro.pipeline.graph import CycleError, PipelineGraph, Stage, stage_references
from repro.pipeline.inline import InlineResult, find_inlinable, inline_pipeline
from repro.pipeline.ir import AccessInfo, CaseIR, PipelineIR, StageIR, lower_stage

__all__ = [
    "AccessInfo", "BoundsError", "BoundsViolation", "CaseIR", "CycleError",
    "InlineResult", "PipelineGraph", "PipelineIR", "Stage", "StageIR",
    "check_bounds", "find_inlinable", "inline_pipeline", "lower_stage",
    "stage_references",
]
