"""Static bounds checking (paper Section 3, front end).

Verifies, under the compile-time parameter estimates, that every analysed
(affine) access of every stage stays inside the accessed function's
domain.  References to values outside a function's domain are invalid and
reported with enough context to locate the offending access.  Only affine
accesses are analysed, matching the paper; data-dependent indices are
checked at run time by the interpreter backend (and clamped by generated
code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.lang.constructs import Parameter
from repro.lang.image import Image
from repro.pipeline.ir import AccessInfo, PipelineIR, StageIR
from repro.poly.interval import IntInterval, evaluate_access
from repro.poly.iset import ParametricBox


class BoundsError(ValueError):
    """One or more accesses were proven out of bounds."""

    def __init__(self, violations: list["BoundsViolation"]):
        self.violations = violations
        lines = [f"{len(violations)} out-of-bounds access(es):"]
        lines += [f"  - {v}" for v in violations]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class BoundsViolation:
    """A proven out-of-domain access under the parameter estimates."""

    consumer: str
    producer: str
    dim: int
    access_range: IntInterval
    domain_range: IntInterval
    #: the (parameter name, value) estimates the proof was made under
    estimates: tuple[tuple[str, int], ...] = ()

    def __str__(self) -> str:
        under = ""
        if self.estimates:
            binds = ", ".join(f"{n}={v}" for n, v in self.estimates)
            under = f" (under {binds})"
        return (f"{self.consumer} reads {self.producer} dim {self.dim} over "
                f"{self.access_range}, outside domain "
                f"{self.domain_range}{under}")


def _producer_box(ir: PipelineIR, producer) -> ParametricBox | None:
    if isinstance(producer, Image):
        return ir.input_domain(producer)
    info = ir.stages.get(producer)
    return info.domain if info is not None else None


def _check_access(ir: PipelineIR, consumer: StageIR, access: AccessInfo,
                  var_env: dict[Hashable, IntInterval | int],
                  estimates: Mapping[Parameter, int],
                  violations: list[BoundsViolation]) -> None:
    producer_box = _producer_box(ir, access.producer)
    if producer_box is None:
        return
    domain = producer_box.concretize(estimates)
    if domain is None:
        return
    for dim, form in enumerate(access.forms):
        if form is None:
            continue  # data-dependent: not statically analysed
        try:
            rng = evaluate_access(form, var_env)
        except KeyError:
            # Index uses a symbol with no interval (e.g. a parameter not
            # estimated); treat as unanalysable.
            continue
        if not domain[dim].contains(rng):
            used = tuple(sorted(
                (p.name, v) for p, v in estimates.items()
                if isinstance(p, Parameter)))
            violations.append(BoundsViolation(
                consumer=consumer.name,
                producer=getattr(access.producer, "name", "?"),
                dim=dim,
                access_range=rng,
                domain_range=domain[dim],
                estimates=used,
            ))


def check_bounds(ir: PipelineIR, estimates: Mapping[Parameter, int]) -> None:
    """Raise :class:`BoundsError` if any affine access is out of bounds.

    The check instantiates every domain with the user-provided parameter
    estimates, tightens consumer domains with each case's bound
    constraints, and pushes the resulting boxes through the access
    functions with interval arithmetic.
    """
    violations = collect_bounds_violations(ir, estimates)
    if violations:
        raise BoundsError(violations)


def collect_bounds_violations(
        ir: PipelineIR,
        estimates: Mapping[Parameter, int]) -> list[BoundsViolation]:
    """All provable out-of-bounds accesses, without raising.

    This is the reporting core of :func:`check_bounds`; the verifier
    (:mod:`repro.verify`) folds each violation into its report as an
    ``RV101`` diagnostic instead of aborting compilation.
    """
    violations: list[BoundsViolation] = []
    for stage_ir in ir.ordered():
        base_env: dict[Hashable, IntInterval | int] = dict(estimates)
        if stage_ir.is_accumulator:
            var_box = stage_ir.domain.concretize(estimates)
            red_box = (stage_ir.reduction_domain.concretize(estimates)
                       if stage_ir.reduction_domain is not None else None)
            if var_box is None or red_box is None:
                continue
            env = dict(base_env)
            env.update(zip(stage_ir.variables, var_box))
            env.update(zip(stage_ir.stage.red_variables, red_box))
            for access in stage_ir.accesses:
                _check_access(ir, stage_ir, access, env, estimates, violations)
            continue
        for case in stage_ir.cases:
            case_box = case.box.concretize(estimates)
            if case_box is None:
                continue  # empty under estimates: nothing to evaluate
            env = dict(base_env)
            env.update(zip(stage_ir.variables, case_box))
            case_refs = {id(r.reference) for r in _case_accesses(stage_ir, case)}
            for access in stage_ir.accesses:
                if id(access.reference) not in case_refs:
                    continue
                _check_access(ir, stage_ir, access, env, estimates, violations)
    return violations


def _case_accesses(stage_ir: StageIR, case) -> list[AccessInfo]:
    """Accesses whose reference occurs in this particular case."""
    from repro.lang.expr import condition_references, references
    refs = {id(r) for r in references(case.expression)}
    refs |= {id(r) for r in condition_references(case.condition)}
    return [a for a in stage_ir.accesses if id(a.reference) in refs]
