"""Pipeline graph extraction (paper Section 3, first phase).

Walks the definitions of the requested live-out functions, collects every
reachable stage (functions and accumulators), and builds the DAG whose
nodes are stages and whose edges are producer → consumer relationships.
Cycles (other than the self-references that express time-iterated
computations) make the specification invalid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

import networkx as nx

from repro.lang.expr import Expr, Reference, condition_references, references
from repro.lang.function import Accumulator, Function
from repro.lang.image import Image

Stage = Union[Function, Accumulator]


class CycleError(ValueError):
    """The pipeline specification contains a dependence cycle."""


def stage_references(stage: Stage) -> list[Reference]:
    """All references appearing in a stage's definition (conditions too)."""
    refs: list[Reference] = []
    if isinstance(stage, Accumulator):
        body = stage.defn
        for arg in body.target.args:
            refs.extend(references(arg))
        refs.extend(references(body.value))
        return refs
    for case in stage.defn:
        refs.extend(condition_references(case.condition))
        refs.extend(references(case.expression))
    return refs


class PipelineGraph:
    """The stage DAG of a pipeline.

    ``outputs`` are the live-out stages; ``inputs`` the :class:`Image`
    objects reached.  Self-referential stages (time-iterated patterns,
    summed-area tables) are recorded in :attr:`self_referential`; the self
    edge is *not* part of the DAG.
    """

    def __init__(self, outputs: Iterable[Stage]):
        self.outputs: tuple[Stage, ...] = tuple(outputs)
        if not self.outputs:
            raise ValueError("a pipeline needs at least one output")
        for out in self.outputs:
            if not isinstance(out, (Function, Accumulator)):
                raise TypeError(f"pipeline outputs must be stages, got {out!r}")

        self._dag = nx.DiGraph()
        self.inputs: list[Image] = []
        self.self_referential: set[Stage] = set()
        self._discover()
        self._levels = self._compute_levels()

    # -- construction -----------------------------------------------------
    def _discover(self) -> None:
        seen_inputs: set[int] = set()
        stack: list[Stage] = list(self.outputs)
        discovered: set[Stage] = set()
        while stack:
            stage = stack.pop()
            if stage in discovered:
                continue
            discovered.add(stage)
            self._dag.add_node(stage)
            for ref in stage_references(stage):
                producer = ref.function
                if isinstance(producer, Image):
                    if id(producer) not in seen_inputs:
                        seen_inputs.add(id(producer))
                        self.inputs.append(producer)
                    continue
                if producer is stage:
                    self.self_referential.add(stage)
                    continue
                if not isinstance(producer, (Function, Accumulator)):
                    raise TypeError(
                        f"stage {stage.name!r} references {producer!r}, "
                        "which is neither a stage nor an image")
                self._dag.add_edge(producer, stage)
                if producer not in discovered:
                    stack.append(producer)
        if not nx.is_directed_acyclic_graph(self._dag):
            cycle = nx.find_cycle(self._dag)
            names = " -> ".join(edge[0].name for edge in cycle)
            raise CycleError(f"pipeline graph has a cycle: {names}")
        names = [s.name for s in self._dag.nodes]
        names += [img.name for img in self.inputs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                "stage/image names must be unique within a pipeline; "
                f"duplicated: {sorted(duplicates)}")

    def _compute_levels(self) -> dict[Stage, int]:
        """Level = longest producer chain; sources (image-only) are 0."""
        levels: dict[Stage, int] = {}
        for stage in nx.topological_sort(self._dag):
            producers = list(self._dag.predecessors(stage))
            if producers:
                levels[stage] = 1 + max(levels[p] for p in producers)
            else:
                levels[stage] = 0
        return levels

    # -- queries ----------------------------------------------------------
    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(self._dag.nodes)

    def __contains__(self, stage: Stage) -> bool:
        return stage in self._dag

    def __len__(self) -> int:
        return self._dag.number_of_nodes()

    def producers(self, stage: Stage) -> list[Stage]:
        return list(self._dag.predecessors(stage))

    def consumers(self, stage: Stage) -> list[Stage]:
        return list(self._dag.successors(stage))

    def level(self, stage: Stage) -> int:
        return self._levels[stage]

    def topological_order(self) -> list[Stage]:
        """Stages in a producer-before-consumer order, stable by level."""
        order = list(nx.topological_sort(self._dag))
        position = {stage: i for i, stage in enumerate(order)}
        order.sort(key=lambda s: (self._levels[s], position[s]))
        return order

    def is_output(self, stage: Stage) -> bool:
        return stage in self.outputs

    def edges(self) -> Iterator[tuple[Stage, Stage]]:
        return iter(self._dag.edges)

    def dot(self) -> str:
        """Graphviz description of the pipeline graph (Figure 2 style)."""
        lines = ["digraph pipeline {"]
        for img in self.inputs:
            lines.append(f'  "{img.name}" [shape=box];')
        for stage in self.stages:
            shape = "ellipse" if isinstance(stage, Function) else "diamond"
            lines.append(f'  "{stage.name}" [shape={shape}];')
        emitted = set()
        for stage in self.stages:
            for ref in stage_references(stage):
                src = ref.function
                key = (id(src), id(stage))
                if key in emitted or src is stage:
                    continue
                emitted.add(key)
                lines.append(f'  "{src.name}" -> "{stage.name}";')
        lines.append("}")
        return "\n".join(lines)
