"""Intermediate representation of a pipeline: stages with polyhedral domains.

The front end lowers each DSL stage into a :class:`StageIR` carrying its
parametric domain box, its cases with bound-tightened boxes, and the
classified access functions of every reference — everything the compiler
phases (alignment/scaling, dependence analysis, tiling, grouping, storage)
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.lang.constructs import Case, Parameter, Variable
from repro.lang.expr import (
    BoolExpr, Expr, Reference, TrueCond, condition_references, references,
)
from repro.lang.function import Accumulate, Accumulator, Function
from repro.lang.image import Image
from repro.pipeline.graph import PipelineGraph, Stage
from repro.poly.affine import AccessForm, analyze_access
from repro.poly.interval import IntInterval, evaluate_access
from repro.poly.iset import ParametricBox, SplitCondition, split_condition

Producer = Union[Stage, Image]


@dataclass(frozen=True)
class AccessInfo:
    """One reference from a stage to a producer, with classified indices.

    ``forms[d]`` is the :class:`AccessForm` of the d-th index, or ``None``
    when that index is data-dependent / non-affine (only affine accesses
    are analysed, per the paper).
    """

    reference: Reference
    producer: Producer
    forms: tuple[AccessForm | None, ...]

    @property
    def is_affine(self) -> bool:
        return all(f is not None for f in self.forms)

    def range_box(self, var_env) -> tuple[IntInterval | None, ...]:
        """Interval range of each index over ``var_env`` (None if unknown)."""
        out = []
        for form in self.forms:
            if form is None:
                out.append(None)
            else:
                out.append(evaluate_access(form, var_env))
        return tuple(out)


@dataclass(frozen=True)
class CaseIR:
    """One case of a function: condition split + tightened domain box."""

    condition: BoolExpr
    expression: Expr
    split: SplitCondition
    box: ParametricBox


@dataclass
class StageIR:
    """A stage plus everything the optimizer needs to know about it."""

    stage: Stage
    domain: ParametricBox
    cases: tuple[CaseIR, ...]
    accesses: tuple[AccessInfo, ...]
    level: int
    is_output: bool
    is_self_referential: bool
    reduction_domain: ParametricBox | None = None
    accumulate: Accumulate | None = None

    @property
    def name(self) -> str:
        return self.stage.name

    @property
    def ndim(self) -> int:
        return self.stage.ndim

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self.stage.variables)

    @property
    def is_accumulator(self) -> bool:
        return isinstance(self.stage, Accumulator)

    @property
    def is_pointwise(self) -> bool:
        """True when every access reads producers at the stage's own point.

        A stage is point-wise when each of its (affine) accesses maps the
        d-th index to exactly the stage's d-th domain variable with
        coefficient 1 and offset 0 — i.e. value at ``(x, y)`` depends only
        on producer values at ``(x, y)``.
        """
        if self.is_accumulator or self.is_self_referential:
            return False
        own = self.variables
        for access in self.accesses:
            if len(access.forms) != len(own):
                return False
            for d, form in enumerate(access.forms):
                if form is None or not form.is_plain_affine:
                    return False
                aff = form.aff
                if (aff.coefficient(own[d]) != 1 or aff.const != 0
                        or len(aff.terms) != 1):
                    return False
        return True

    def accesses_to(self, producer: Producer) -> list[AccessInfo]:
        return [a for a in self.accesses if a.producer is producer]

    def size_estimate(self, estimates: Mapping[Parameter, int]) -> int:
        return self.domain.size_estimate(estimates)


def _collect_accesses(stage: Stage) -> tuple[AccessInfo, ...]:
    refs: list[Reference] = []
    if isinstance(stage, Accumulator):
        body = stage.defn
        for arg in body.target.args:
            refs.extend(references(arg))
        refs.extend(references(body.value))
        # The target itself is an access only through its argument
        # references (collected above); the accumulator's own cells are
        # written, not read.
    else:
        for case in stage.defn:
            refs.extend(condition_references(case.condition))
            refs.extend(references(case.expression))
    infos = []
    for ref in refs:
        forms = tuple(analyze_access(arg) for arg in ref.args)
        infos.append(AccessInfo(ref, ref.function, forms))
    return tuple(infos)


def lower_stage(stage: Stage, graph: PipelineGraph) -> StageIR:
    """Lower one DSL stage into its IR form."""
    domain = ParametricBox.from_intervals(stage.variables, stage.intervals)
    cases: list[CaseIR] = []
    reduction_domain = None
    accumulate = None
    if isinstance(stage, Accumulator):
        reduction_domain = ParametricBox.from_intervals(
            stage.red_variables, stage.red_intervals)
        accumulate = stage.defn
    else:
        for case in stage.defn:
            split = split_condition(case.condition)
            box = domain.tighten(split.bounds)
            cases.append(CaseIR(case.condition, case.expression, split, box))
    return StageIR(
        stage=stage,
        domain=domain,
        cases=tuple(cases),
        accesses=_collect_accesses(stage),
        level=graph.level(stage),
        is_output=graph.is_output(stage),
        is_self_referential=stage in graph.self_referential,
        reduction_domain=reduction_domain,
        accumulate=accumulate,
    )


class PipelineIR:
    """IR of a whole pipeline: the graph plus a :class:`StageIR` per stage."""

    def __init__(self, graph: PipelineGraph):
        self.graph = graph
        self.stages: dict[Stage, StageIR] = {
            stage: lower_stage(stage, graph) for stage in graph.stages}

    def __getitem__(self, stage: Stage) -> StageIR:
        return self.stages[stage]

    def ordered(self) -> list[StageIR]:
        return [self.stages[s] for s in self.graph.topological_order()]

    def input_domain(self, image: Image) -> ParametricBox:
        synthetic_vars = tuple(Variable(f"_{image.name}{d}")
                               for d in range(image.ndim))
        return ParametricBox.from_extents(synthetic_vars, image.extents)
