"""Setup shim: enables `pip install -e .` in offline environments that
lack the `wheel` package (legacy editable install path)."""
from setuptools import setup

setup()
