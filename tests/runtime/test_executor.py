"""End-to-end interpreter tests: compiled pipelines vs NumPy oracles."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import harris as harris_app
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Condition, Float, Function, Image,
    Int, Interval, Parameter, Select, Stencil, Sum, UChar, Variable,
)

RNG = np.random.default_rng(7)


# -- Harris: the paper's running example ------------------------------------

@pytest.fixture(scope="module")
def harris_setup():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 61, C: 45}  # deliberately not multiples of tile sizes
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)["harris"]
    return app, values, inputs, expected


@pytest.mark.parametrize("options", [
    CompileOptions.base(),
    CompileOptions.optimized((16, 16)),
    CompileOptions.optimized((32, 256)),
    CompileOptions.optimized((8, 8), overlap_threshold=0.5),
], ids=["base", "opt16", "opt32x256", "opt8"])
def test_harris_matches_reference(harris_setup, options):
    app, values, inputs, expected = harris_setup
    compiled = compile_pipeline(app.outputs, values, options)
    out = compiled(values, inputs)["harris"]
    np.testing.assert_allclose(out, expected, rtol=2e-4, atol=2e-5)


def test_harris_novec_matches(harris_setup):
    app, values, inputs, expected = harris_setup
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)))
    out = compiled(values, inputs, vectorize=False)["harris"]
    np.testing.assert_allclose(out, expected, rtol=2e-4, atol=2e-5)


def test_harris_threaded_matches(harris_setup):
    app, values, inputs, expected = harris_setup
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)))
    out = compiled(values, inputs, n_threads=4)["harris"]
    np.testing.assert_allclose(out, expected, rtol=2e-4, atol=2e-5)


def test_harris_parameter_values_differ_from_estimates(harris_setup):
    """The compiled pipeline is valid for sizes other than the estimates."""
    app, _, _, _ = harris_setup
    R, C = app.params["R"], app.params["C"]
    compiled = compile_pipeline(app.outputs, {R: 512, C: 512},
                                CompileOptions.optimized((32, 256)))
    values = {R: 33, C: 97}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)["harris"]
    out = compiled(values, inputs)["harris"]
    np.testing.assert_allclose(out, expected, rtol=2e-4, atol=2e-5)


def test_missing_input_raises(harris_setup):
    app, values, _, _ = harris_setup
    compiled = compile_pipeline(app.outputs, values)
    from repro.runtime.executor import ExecutionError
    with pytest.raises(ExecutionError):
        compiled(values, {})


def test_wrong_input_shape_raises(harris_setup):
    app, values, _, _ = harris_setup
    compiled = compile_pipeline(app.outputs, values)
    from repro.runtime.executor import ExecutionError
    with pytest.raises(ExecutionError):
        compiled(values, {app.images[0]: np.zeros((4, 4), np.float32)})


# -- histograms ------------------------------------------------------------

def test_histogram_matches_bincount():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(UChar, [R, C], name="I")
    x, y, b = Variable("x"), Variable("y"), Variable("b")
    row, col = Interval(0, R - 1, 1), Interval(0, C - 1, 1)
    hist = Accumulator(redDom=([x, y], [row, col]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, I(x, y))), 1, Sum)
    values = {R: 37, C: 53}
    img = RNG.integers(0, 256, size=(37, 53), dtype=np.uint8)
    compiled = compile_pipeline([hist], values)
    out = compiled(values, {I: img})["hist"]
    np.testing.assert_array_equal(out, np.bincount(img.ravel(),
                                                   minlength=256))


def test_min_max_reduction():
    from repro.lang import MaxOp, MinOp
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x, z = Variable("x"), Variable("z")
    lo = Accumulator(redDom=([x], [Interval(0, R - 1, 1)]),
                     varDom=([z], [Interval(0, 0, 1)]),
                     typ=Float, name="lo")
    lo.defn = Accumulate(lo(0 * x), I(x), MinOp)
    hi = Accumulator(redDom=([x], [Interval(0, R - 1, 1)]),
                     varDom=([z], [Interval(0, 0, 1)]),
                     typ=Float, name="hi")
    hi.defn = Accumulate(hi(0 * x), I(x), MaxOp)
    values = {R: 101}
    data = RNG.random(101, dtype=np.float32)
    compiled = compile_pipeline([lo, hi], values)
    out = compiled(values, {I: data})
    assert out["lo"][0] == pytest.approx(float(data.min()))
    assert out["hi"][0] == pytest.approx(float(data.max()))


# -- time-iterated (self-referential) ----------------------------------------

def test_time_iterated_jacobi():
    R = Parameter(Int, "R")
    T = 5
    I = Image(Float, [R + 2], name="I")
    t, x = Variable("t"), Variable("x")
    f = Function(varDom=([t, x], [Interval(0, T, 1), Interval(0, R + 1, 1)]),
                 typ=Float, name="f")
    interior = (Condition(t, ">=", 1) & Condition(x, ">=", 1)
                & Condition(x, "<=", R))
    f.defn = [
        Case(Condition(t, "==", 0), I(x)),
        Case(interior,
             (f(t - 1, x - 1) + f(t - 1, x) + f(t - 1, x + 1)) / 3.0),
    ]
    values = {R: 40}
    data = RNG.random(42, dtype=np.float32)
    compiled = compile_pipeline([f], values)
    out = compiled(values, {I: data})["f"]

    ref = np.zeros((T + 1, 42), dtype=np.float32)
    ref[0] = data
    for it in range(1, T + 1):
        ref[it, 1:41] = (ref[it - 1, :40] + ref[it - 1, 1:41]
                         + ref[it - 1, 2:42]) / 3.0
    np.testing.assert_allclose(out, ref, rtol=1e-5)


def test_summed_area_table():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R, C], name="I")
    x, y = Variable("x"), Variable("y")
    sat = Function(varDom=([x, y], [Interval(0, R - 1, 1),
                                    Interval(0, C - 1, 1)]),
                   typ=Float, name="sat")
    corner = Condition(x, "==", 0) & Condition(y, "==", 0)
    top = Condition(x, "==", 0) & Condition(y, ">=", 1)
    left = Condition(x, ">=", 1) & Condition(y, "==", 0)
    interior = Condition(x, ">=", 1) & Condition(y, ">=", 1)
    sat.defn = [
        Case(corner, I(x, y)),
        Case(top, I(x, y) + sat(x, y - 1)),
        Case(left, I(x, y) + sat(x - 1, y)),
        Case(interior, I(x, y) + sat(x - 1, y) + sat(x, y - 1)
             - sat(x - 1, y - 1)),
    ]
    values = {R: 13, C: 11}
    img = RNG.random((13, 11)).astype(np.float32)
    compiled = compile_pipeline([sat], values)
    out = compiled(values, {I: img})["sat"]
    ref = img.astype(np.float64).cumsum(axis=0).cumsum(axis=1)
    np.testing.assert_allclose(out, ref, rtol=1e-4)


# -- sampling ------------------------------------------------------------------

def test_downsample_upsample_roundtrip():
    R = Parameter(Int, "R")
    I = Image(Float, [2 * R + 2], name="I")
    x = Variable("x")
    down = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="down")
    down.defn = (I(2 * x) + I(2 * x + 1)) / 2.0
    up = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float, name="up")
    up.defn = down(x // 2)
    values = {R: 33}
    data = RNG.random(68, dtype=np.float32)
    compiled = compile_pipeline([up], values,
                                CompileOptions.optimized((16,)))
    # the down/up pair must fuse into a single tiled group
    assert len(compiled.plan.group_plans) == 1
    out = compiled(values, {I: data})["up"]
    ref_down = (data[0:68:2][:34] + data[1:68:2][:34]) / 2.0
    ref = ref_down[np.arange(67) // 2]
    np.testing.assert_allclose(out, ref, rtol=1e-6)


def test_select_and_data_dependent_lut():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    lut = Function(varDom=([x], [Interval(0, 255, 1)]), typ=Float, name="lut")
    lut.defn = x * x / 255.0
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    clamped = Cast(Int, Select(I(x) > 1.0, 255.0, I(x) * 255.0))
    f.defn = lut(clamped)
    values = {R: 64}
    data = (RNG.random(64) * 1.2).astype(np.float32)
    compiled = compile_pipeline([f], values)
    out = compiled(values, {I: data})["f"]
    idx = np.where(data > 1.0, 255,
                   (data * 255.0).astype(np.int32)).astype(np.int64)
    ref = (idx.astype(np.float32) ** 2 / 255.0)
    np.testing.assert_allclose(out, ref, rtol=1e-5)


def test_multiple_outputs():
    R = Parameter(Int, "R")
    I = Image(Float, [R + 2], name="I")
    x = Variable("x")
    dom = Interval(0, R + 1, 1)
    c = Condition(x, ">=", 1) & Condition(x, "<=", R)
    blur = Function(varDom=([x], [dom]), typ=Float, name="blur")
    blur.defn = [Case(c, Stencil(I(x), 1.0 / 3, [1, 1, 1]))]
    sharp = Function(varDom=([x], [dom]), typ=Float, name="sharp")
    sharp.defn = [Case(c, I(x) * 2.0 - blur(x))]
    values = {R: 50}
    data = RNG.random(52, dtype=np.float32)
    compiled = compile_pipeline([blur, sharp], values,
                                CompileOptions.optimized((16,)))
    out = compiled(values, {I: data})
    ref_blur = np.zeros(52, np.float32)
    ref_blur[1:51] = (data[:50] + data[1:51] + data[2:52]) / 3.0
    ref_sharp = np.zeros(52, np.float32)
    ref_sharp[1:51] = data[1:51] * 2.0 - ref_blur[1:51]
    np.testing.assert_allclose(out["blur"], ref_blur, rtol=1e-5)
    np.testing.assert_allclose(out["sharp"], ref_sharp, rtol=1e-5)
