"""Interpreter error paths: bad inputs must fail loudly, not silently."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import harris as harris_app
from repro.lang import Float, Image, Parameter
from repro.runtime.executor import ExecutionError

RNG = np.random.default_rng(11)


@pytest.fixture(scope="module")
def harris():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 48, C: 40}
    inputs = app.make_inputs(values, RNG)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)))
    return app, values, inputs, compiled


def test_missing_input_raises(harris):
    app, values, inputs, compiled = harris
    with pytest.raises(ExecutionError, match="missing input array"):
        compiled(values, {})


def test_shape_mismatch_raises(harris):
    app, values, inputs, compiled = harris
    image = next(iter(inputs))
    bad = {image: np.zeros((3, 3), dtype=np.float32)}
    with pytest.raises(ExecutionError, match="has shape"):
        compiled(values, bad)


def test_empty_domain_raises():
    from repro.lang import (
        Case, Function, Int, Interval, TrueCond, Variable,
    )

    R = Parameter(Int, "R")
    I = Image(Float, [R + 4], name="I")
    x = Variable("x")
    # domain [2, R]: empty once R < 2
    f = Function(varDom=([x], [Interval(2, R, 1)]), typ=Float, name="f")
    f.defn = [Case(TrueCond(), I(x))]
    compiled = compile_pipeline([f], {R: 16})
    with pytest.raises(ExecutionError, match="empty domain"):
        compiled({R: 0}, {I: np.zeros(4, dtype=np.float32)})


def test_unknown_parameter_raises_with_names(harris):
    app, values, inputs, compiled = harris
    stray = Parameter(name="stray_param")
    with pytest.raises(ExecutionError, match="stray_param"):
        compiled({**values, stray: 7}, inputs)


def test_unknown_image_raises_with_names(harris):
    app, values, inputs, compiled = harris
    stray = Image(Float, [4, 4], name="stray_image")
    with pytest.raises(ExecutionError, match="stray_image"):
        compiled(values, {**inputs, stray: np.zeros((4, 4))})


def test_error_message_lists_valid_names(harris):
    app, values, inputs, compiled = harris
    stray = Parameter(name="zzz")
    with pytest.raises(ExecutionError, match="parameters are"):
        compiled({**values, stray: 1}, inputs)
