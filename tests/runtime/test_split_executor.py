"""Tests for the split-tiled executor (the Figure 5 extension)."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.bench.figure5 import figure5_chain
from repro.runtime.split_executor import (
    SplitTilingError, execute_plan_split,
)

RNG = np.random.default_rng(9)


@pytest.fixture(scope="module")
def chain():
    N, fin, stages = figure5_chain()
    values = {N: 1000}
    data = RNG.random(1002, dtype=np.float32)
    return N, fin, stages, values, data


def test_split_matches_overlapped(chain):
    N, fin, stages, values, data = chain
    compiled = compile_pipeline([stages[-1]], values,
                                CompileOptions.optimized((64,)))
    assert len(compiled.plan.group_plans) == 1
    overlapped = compiled(values, {fin: data})["fout"]
    split = execute_plan_split(compiled.plan, values, {fin: data})["fout"]
    np.testing.assert_allclose(split, overlapped, rtol=1e-6)


def test_split_matches_on_awkward_sizes(chain):
    N, fin, stages, values, data = chain
    for n in (97, 128, 129):
        vals = {N: n}
        arr = RNG.random(n + 2, dtype=np.float32)
        compiled = compile_pipeline([stages[-1]], vals,
                                    CompileOptions.optimized((32,)))
        a = compiled(vals, {fin: arr})["fout"]
        b = execute_plan_split(compiled.plan, vals, {fin: arr})["fout"]
        np.testing.assert_allclose(b, a, rtol=1e-6)


def test_split_rejects_group_deeper_than_tile(chain):
    N, fin, stages, values, data = chain
    # after inlining f1, the fused group's wedge width is 2: tile size 1
    # is too shallow for split tiling
    compiled = compile_pipeline([stages[-1]], values,
                                CompileOptions.optimized((1,), 9.0))
    if len(compiled.plan.group_plans) == 1:
        with pytest.raises(SplitTilingError, match="deeper than the tile"):
            execute_plan_split(compiled.plan, values, {fin: data})


def test_split_rejects_scaled_groups():
    from repro.lang import Float, Function, Image, Int, Interval, \
        Parameter, Variable
    R = Parameter(Int, "R")
    I = Image(Float, [2 * R + 2], name="Is")
    x = Variable("x")
    down = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float,
                    name="down")
    down.defn = (I(2 * x) + I(2 * x + 1)) / 2.0
    up = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float,
                  name="up")
    up.defn = down(x // 2)
    values = {R: 64}
    compiled = compile_pipeline([up], values,
                                CompileOptions.optimized((16,)))
    if any(gp.is_tiled and len(gp.ordered_stages) > 1
           for gp in compiled.plan.group_plans):
        data = RNG.random(130, dtype=np.float32)
        with pytest.raises(SplitTilingError, match="unit-scale"):
            execute_plan_split(compiled.plan, values, {I: data})


def test_split_allocates_full_buffers(chain):
    """Split tiling's storage cost: every stage needs a full buffer."""
    N, fin, stages, values, data = chain
    compiled = compile_pipeline([stages[-1]], values,
                                CompileOptions.optimized((64,)))
    from repro.runtime.split_executor import (
        _forward_reaches, execute_split_group,
    )
    from repro.runtime.buffers import BufferView
    gp = compiled.plan.group_plans[0]
    buffers = {fin: BufferView(data, (0,))}
    execute_split_group(compiled.plan, gp, values, buffers)
    # all three stages have domain-sized buffers, unlike the overlapped
    # executor which scratches everything but the live-out
    for stage in gp.ordered_stages:
        assert buffers[stage].shape == (values[N] + 2,)
