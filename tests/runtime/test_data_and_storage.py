"""Tests for synthetic data generation and storage accounting."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline
from repro.compiler.storage import storage_footprint
from repro.data import bayer_raw, multifocus_pair, rgb_image, smooth_image

RNG = np.random.default_rng(17)


def test_smooth_image_range_and_shape():
    img = smooth_image(64, 48, RNG)
    assert img.shape == (64, 48)
    assert img.dtype == np.float32
    assert 0.0 <= img.min() and img.max() <= 1.0
    # smooth: neighbouring pixels correlate strongly
    diff = np.abs(np.diff(img, axis=0)).mean()
    assert diff < 0.15


def test_rgb_image_channels_differ():
    img = rgb_image(32, 32, RNG)
    assert img.shape == (3, 32, 32)
    assert not np.allclose(img[0], img[1])


def test_multifocus_pair_structure():
    left, right, mask = multifocus_pair(64, 64, RNG)
    assert left.shape == right.shape == (3, 64, 64)
    assert mask.shape == (64, 64)
    assert set(np.unique(mask)) <= {0.0, 1.0}
    # left is sharp on the left half: equal to right's blur there? the two
    # images differ in the out-of-focus halves
    assert not np.allclose(left[:, :, 40:], right[:, :, 40:])


def test_bayer_raw_properties():
    raw = bayer_raw(32, 32, RNG, bits=10)
    assert raw.shape == (32, 32)
    assert raw.dtype == np.uint16
    assert raw.max() <= 1023


def test_storage_footprint_reduction():
    """Section 3.6: fused Harris needs dramatically less storage than the
    stage-per-buffer version (full buffers only for the live-out)."""
    app = build_pipeline()
    values = {app.params["R"]: 512, app.params["C"]: 512}
    plan = compile_pipeline(app.outputs, values,
                            CompileOptions.optimized((32, 256))).plan
    fp = storage_footprint(plan, values)
    fused = fp["full_bytes"] + fp["scratch_bytes"]
    assert fp["unfused_bytes"] > 4 * fused
    # the only full buffer is the output
    assert fp["full_bytes"] == 514 * 514 * 4


def test_storage_footprint_base_has_no_scratch():
    app = build_pipeline()
    values = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_pipeline(app.outputs, values, CompileOptions.base()).plan
    fp = storage_footprint(plan, values)
    assert fp["scratch_bytes"] == 0
    assert fp["full_bytes"] == fp["unfused_bytes"]
