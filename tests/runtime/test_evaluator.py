"""Unit tests for the NumPy evaluator and buffer views."""

import numpy as np
import pytest

from repro.lang import (
    Abs, Case, Cast, Ceil, Condition, Cos, Exp, Float, Floor, Function,
    Image, Int, Interval, Log, Max, Min, Parameter, Pow, Select, Sin, Sqrt,
    Variable,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR
from repro.poly.interval import IntInterval
from repro.runtime.buffers import BufferView
from repro.runtime.evaluator import EvaluationError, Evaluator

RNG = np.random.default_rng(2)


def _stage_ir(defn, dom_hi=15, dtype=Float):
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, dom_hi, 1)]), typ=dtype,
                 name="f")
    f.defn = defn(x)
    ir = PipelineIR(PipelineGraph([f]))
    return ir[f], x


# -- BufferView ----------------------------------------------------------------

def test_buffer_allocate_and_origin():
    view = BufferView.allocate((IntInterval(2, 5), IntInterval(-1, 3)),
                               np.dtype(np.float32))
    assert view.shape == (4, 5)
    assert view.origin == (2, -1)


def test_buffer_read_strided_in_bounds():
    arr = np.arange(10, dtype=np.float32)
    view = BufferView(arr, (5,))
    out = view.read_strided([(1, 0, 6, 9)])  # indices 6..9 -> rel 1..4
    np.testing.assert_array_equal(out, arr[1:5])


def test_buffer_read_strided_out_of_bounds_returns_none():
    view = BufferView(np.zeros(4, np.float32), (0,))
    assert view.read_strided([(1, 0, 2, 5)]) is None
    assert view.read_strided([(1, -1, 0, 2)]) is None


def test_buffer_read_strided_with_stride():
    arr = np.arange(12, dtype=np.float32)
    view = BufferView(arr, (0,))
    out = view.read_strided([(2, 1, 0, 5)])  # 2v+1 for v in 0..5
    np.testing.assert_array_equal(out, arr[1:12:2])


def test_buffer_read_gather_clips():
    arr = np.arange(5, dtype=np.float32)
    view = BufferView(arr, (0,))
    out = view.read_gather([np.array([-3, 0, 4, 9])])
    np.testing.assert_array_equal(out, [0, 0, 4, 4])


def test_buffer_write_and_read_region():
    view = BufferView.allocate((IntInterval(10, 19),), np.dtype(np.float32))
    view.write_region((IntInterval(12, 14),), np.array([1., 2., 3.]))
    np.testing.assert_array_equal(view.read_region((IntInterval(12, 14),)),
                                  [1, 2, 3])
    assert view.array[0] == 0


def test_buffer_covers():
    view = BufferView.allocate((IntInterval(0, 9),), np.dtype(np.float32))
    assert view.covers((IntInterval(0, 9),))
    assert view.covers((IntInterval(2, 5),))
    assert not view.covers((IntInterval(5, 10),))


# -- math / expression coverage ---------------------------------------------------

@pytest.mark.parametrize("builder,ref", [
    (lambda x: Exp(x * 0.1), lambda v: np.exp(v * 0.1)),
    (lambda x: Log(x + 1.0), lambda v: np.log(v + 1.0)),
    (lambda x: Sqrt(x * 1.0), lambda v: np.sqrt(v)),
    (lambda x: Sin(x * 0.3), lambda v: np.sin(v * 0.3)),
    (lambda x: Cos(x * 0.3), lambda v: np.cos(v * 0.3)),
    (lambda x: Abs(x - 7), lambda v: np.abs(v - 7)),
    (lambda x: Floor(x / 3.0), lambda v: np.floor(v / 3.0)),
    (lambda x: Ceil(x / 3.0), lambda v: np.ceil(v / 3.0)),
    (lambda x: Pow(x * 1.0, 2.0), lambda v: v.astype(float) ** 2),
    (lambda x: Min(x * 1.0, 5.0), lambda v: np.minimum(v, 5.0)),
    (lambda x: Max(x * 1.0, 5.0), lambda v: np.maximum(v, 5.0)),
    (lambda x: x % 3, lambda v: v % 3),
    (lambda x: x // 4, lambda v: v // 4),
    (lambda x: -x, lambda v: -v),
])
def test_expression_evaluation(builder, ref):
    stage_ir, x = _stage_ir(builder)
    ev = Evaluator({}, {})
    region = (IntInterval(0, 15),)
    out = ev.stage_values(stage_ir, region)
    expected = ref(np.arange(16))
    np.testing.assert_allclose(out, expected.astype(np.float32), rtol=1e-6)


def test_select_evaluation():
    stage_ir, x = _stage_ir(lambda x: Select(x > 7, 1.0, -1.0))
    ev = Evaluator({}, {})
    out = ev.stage_values(stage_ir, (IntInterval(0, 15),))
    v = np.arange(16)
    np.testing.assert_array_equal(out, np.where(v > 7, 1.0, -1.0))


def test_cast_truncates():
    stage_ir, x = _stage_ir(lambda x: Cast(Float, Cast(Int, x * 0.7)))
    ev = Evaluator({}, {})
    out = ev.stage_values(stage_ir, (IntInterval(0, 15),))
    np.testing.assert_array_equal(out,
                                  (np.arange(16) * 0.7).astype(np.int32)
                                  .astype(np.float32))


def test_parameter_in_expression():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = x * 1.0 / R
    ir = PipelineIR(PipelineGraph([f]))
    ev = Evaluator({R: 8}, {})
    out = ev.stage_values(ir[f], (IntInterval(0, 7),))
    np.testing.assert_allclose(out, np.arange(8) / 8, rtol=1e-6)


def test_missing_parameter_raises():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, 7, 1)]), typ=Float, name="f")
    f.defn = x + R
    ir = PipelineIR(PipelineGraph([f]))
    ev = Evaluator({}, {})
    with pytest.raises(EvaluationError):
        ev.stage_values(ir[f], (IntInterval(0, 7),))


def test_missing_buffer_raises():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, 7, 1)]), typ=Float, name="f")
    f.defn = I(x)
    ir = PipelineIR(PipelineGraph([f]))
    ev = Evaluator({R: 8}, {})
    with pytest.raises(EvaluationError):
        ev.stage_values(ir[f], (IntInterval(0, 7),))


def test_strided_fast_path_equals_gather():
    """The vectorized slice path and the gather path must agree."""
    R = Parameter(Int, "R")
    I = Image(Float, [R + 4], name="I")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = I(x) + 2.0 * I(x + 3) + I(2 * x // 2)
    ir = PipelineIR(PipelineGraph([f]))
    data = RNG.random(36, dtype=np.float32)
    buffers = {I: BufferView(data, (0,))}
    region = (IntInterval(0, 31),)
    fast = Evaluator({R: 32}, buffers, vectorize=True) \
        .stage_values(ir[f], region)
    slow = Evaluator({R: 32}, buffers, vectorize=False) \
        .stage_values(ir[f], region)
    np.testing.assert_array_equal(fast, slow)


def test_mutually_exclusive_cases_fill_disjoint_regions():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, 9, 1)]), typ=Float, name="f")
    f.defn = [Case(Condition(x, "<", 5), 1.0),
              Case(Condition(x, ">=", 5), 2.0)]
    ir = PipelineIR(PipelineGraph([f]))
    out = Evaluator({}, {}).stage_values(ir[f], (IntInterval(0, 9),))
    np.testing.assert_array_equal(out, [1] * 5 + [2] * 5)


def test_uncovered_points_are_zero():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, 9, 1)]), typ=Float, name="f")
    f.defn = [Case(Condition(x, ">=", 8), 5.0)]
    ir = PipelineIR(PipelineGraph([f]))
    out = Evaluator({}, {}).stage_values(ir[f], (IntInterval(0, 9),))
    np.testing.assert_array_equal(out, [0] * 8 + [5, 5])


def test_residual_condition_masking():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, 9, 1)]), typ=Float, name="f")
    f.defn = [Case(Condition(x % 2, "==", 0), 1.0),
              Case(Condition(x % 2, "==", 1), 2.0)]
    ir = PipelineIR(PipelineGraph([f]))
    out = Evaluator({}, {}).stage_values(ir[f], (IntInterval(0, 9),))
    np.testing.assert_array_equal(out, [1, 2] * 5)
