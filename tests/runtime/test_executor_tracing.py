"""Interpreter instrumentation: spans, tile metrics, redundancy ratio."""

import numpy as np
import pytest

from repro import CompileOptions, Tracer, compile_pipeline
from repro.apps import harris as harris_app

RNG = np.random.default_rng(5)


@pytest.fixture(scope="module")
def harris():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 61, C: 45}
    inputs = app.make_inputs(values, RNG)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)))
    return app, values, inputs, compiled


def test_traced_run_matches_untraced(harris):
    app, values, inputs, compiled = harris
    plain = compiled(values, inputs)
    tracer = Tracer(enabled=True)
    traced = compiled(values, inputs, tracer=tracer)
    for k in plain:
        np.testing.assert_array_equal(plain[k], traced[k])


def test_execute_spans_cover_groups_and_tiles(harris):
    app, values, inputs, compiled = harris
    tracer = Tracer(enabled=True)
    compiled(values, inputs, tracer=tracer)
    names = [s.name for s in tracer.spans()]
    assert names[0] == "execute_plan"
    assert any(n.startswith("group 0") for n in names)
    tiles = [s for s in tracer.spans() if s.name == "tile"]
    assert tiles
    # every tile span carries its box label
    assert all("tile" in s.args for s in tiles)


def test_tile_metrics_recorded(harris):
    app, values, inputs, compiled = harris
    tracer = Tracer(enabled=True)
    compiled(values, inputs, tracer=tracer)
    counters = tracer.metrics.counters()
    tiles = [s for s in tracer.spans() if s.name == "tile"]
    assert counters["interp.group[0].tiles"] == len(tiles)
    assert counters["interp.group[0].scratch_bytes"] > 0
    # overlapped tiling evaluates at least the owned points
    assert counters["interp.group[0].evaluated_points"] >= \
        counters["interp.group[0].owned_points"] > 0


def test_redundancy_gauge(harris):
    app, values, inputs, compiled = harris
    tracer = Tracer(enabled=True)
    compiled(values, inputs, tracer=tracer)
    gauges = tracer.metrics.gauges()
    ratio = gauges["interp.group[0].redundancy"]
    # harris with 16x16 tiles has a halo: strictly redundant, but bounded
    assert 1.0 <= ratio < 2.0


def test_disabled_tracer_records_nothing(harris):
    app, values, inputs, compiled = harris
    tracer = Tracer(enabled=False)
    compiled(values, inputs, tracer=tracer)
    assert tracer.roots() == []
    assert tracer.metrics.counters() == {}


def test_threaded_traced_run_counts_every_tile(harris):
    app, values, inputs, compiled = harris
    serial = Tracer(enabled=True)
    compiled(values, inputs, tracer=serial)
    threaded = Tracer(enabled=True)
    compiled(values, inputs, n_threads=4, tracer=threaded)
    assert (threaded.metrics.counters()["interp.group[0].tiles"]
            == serial.metrics.counters()["interp.group[0].tiles"])
