"""Applications at non-default structural configurations.

The pyramid apps are parameterized by level counts; the compiler must
handle every configuration, not just the paper's defaults.
"""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import interpolate, laplacian, pyramid

RNG = np.random.default_rng(31)


@pytest.mark.parametrize("levels", [2, 3, 4, 5])
def test_pyramid_levels(levels):
    app = pyramid.build_pipeline(levels=levels)
    values = {app.params["R"]: 64, app.params["C"]: 64}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((8, 16, 16)))
    out = compiled(values, inputs)
    for key, exp in expected.items():
        np.testing.assert_allclose(out[key], exp, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("levels", [2, 3, 5])
def test_interpolate_levels(levels):
    app = interpolate.build_pipeline(levels=levels)
    values = {app.params["R"]: 64, app.params["C"]: 64}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((8, 16, 16)))
    out = compiled(values, inputs)
    for key, exp in expected.items():
        np.testing.assert_allclose(out[key], exp, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("j_levels,levels", [(2, 2), (3, 3), (6, 2)])
def test_laplacian_configurations(j_levels, levels):
    app = laplacian.build_pipeline(j_levels=j_levels, levels=levels)
    values = {app.params["R"]: 32, app.params["C"]: 32}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((8, 16, 16)))
    out = compiled(values, inputs)
    for key, exp in expected.items():
        err = np.abs(out[key] - exp)
        assert np.quantile(err, 0.9) < 1e-4 and err.max() < 0.06


def test_laplacian_rejects_degenerate_configs():
    with pytest.raises(ValueError):
        laplacian.build_pipeline(j_levels=1)
    with pytest.raises(ValueError):
        laplacian.build_pipeline(levels=1)


@pytest.mark.parametrize("rows,cols", [(32, 64), (96, 32)])
def test_pyramid_rectangular(rows, cols):
    app = pyramid.build_pipeline(levels=3)
    values = {app.params["R"]: rows, app.params["C"]: cols}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((8, 16, 16)))
    out = compiled(values, inputs)
    for key, exp in expected.items():
        np.testing.assert_allclose(out[key], exp, rtol=1e-4, atol=1e-5)
