"""Per-application correctness: every benchmark vs its NumPy oracle,
with both backends, at sizes small enough for CI."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import bilateral, camera, harris, interpolate, iunsharp
from repro.apps import laplacian, pyramid, unsharp
from repro.codegen.build import build_native, compiler_available

RNG = np.random.default_rng(21)

# (module, build kwargs, param values, exactness)
# "quantized" apps index a LUT / select bins from float values: a one-ulp
# difference in the index computation legitimately lands in the adjacent
# bin, so a tiny fraction of pixels may differ by one bin step.
CASES = [
    ("unsharp", unsharp, {}, {"R": 48, "C": 40}, "exact"),
    ("harris", harris, {}, {"R": 61, "C": 45}, "exact"),
    ("bilateral", bilateral, {}, {"R": 64, "C": 48}, "quantized"),
    ("camera", camera, {}, {"R": 48, "C": 40}, "quantized"),
    ("pyramid_blend", pyramid, {"levels": 3}, {"R": 64, "C": 64}, "exact"),
    ("interpolate", interpolate, {"levels": 4}, {"R": 64, "C": 64}, "exact"),
    ("local_laplacian", laplacian, {"j_levels": 4, "levels": 3},
     {"R": 64, "C": 64}, "quantized"),
    ("iunsharp", iunsharp, {}, {"R": 48, "C": 40}, "exact"),
]


def _check(err: np.ndarray, exactness: str) -> None:
    if exactness == "exact":
        assert err.max() < 1e-4, err.max()
    else:
        # the vast majority of pixels exact; the rest (bin-boundary
        # rounding flips, ~1% worst case) within one quantization step
        assert np.quantile(err, 0.9) < 1e-4
        assert err.max() < 0.06
        assert err.mean() < 1e-4


@pytest.fixture(scope="module", params=CASES, ids=[c[0] for c in CASES])
def app_case(request):
    name, module, kwargs, size, exactness = request.param
    app = module.build_pipeline(**kwargs)
    values = {app.params[k]: v for k, v in size.items()}
    inputs = app.make_inputs(values, RNG)
    expected = app.reference(inputs, values)
    return name, app, values, inputs, expected, exactness


def test_interpreter_optimized(app_case):
    name, app, values, inputs, expected, exactness = app_case
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16, 16)))
    out = compiled(values, inputs)
    for key, exp in expected.items():
        _check(np.abs(out[key] - exp), exactness)


def test_interpreter_base(app_case):
    name, app, values, inputs, expected, exactness = app_case
    compiled = compile_pipeline(app.outputs, values, CompileOptions.base())
    out = compiled(values, inputs)
    for key, exp in expected.items():
        _check(np.abs(out[key] - exp), exactness)


def test_interpreter_threaded(app_case):
    name, app, values, inputs, expected, exactness = app_case
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16, 16)))
    out = compiled(values, inputs, n_threads=3)
    for key, exp in expected.items():
        _check(np.abs(out[key] - exp), exactness)


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_native_optimized(app_case):
    name, app, values, inputs, expected, exactness = app_case
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16, 16)),
                                name=f"app_{name}")
    native = build_native(compiled.plan, f"app_{name}")
    out = native(values, inputs, n_threads=2)
    for key, exp in expected.items():
        _check(np.abs(out[key] - exp), exactness)


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_native_base(app_case):
    name, app, values, inputs, expected, exactness = app_case
    compiled = compile_pipeline(app.outputs, values, CompileOptions.base(),
                                name=f"appb_{name}")
    native = build_native(compiled.plan, f"appb_{name}")
    out = native(values, inputs)
    for key, exp in expected.items():
        _check(np.abs(out[key] - exp), exactness)


def test_stage_counts_match_paper_order():
    """Stage counts are in the ballpark of Table 2 (44/49/99 etc. — exact
    counts depend on how separable/upsample helpers are counted)."""
    assert unsharp.build_pipeline().n_stages == 4
    assert harris.build_pipeline().n_stages == 11
    assert bilateral.build_pipeline().n_stages == 9       # paper: 7
    assert camera.build_pipeline().n_stages == 32         # paper: 32
    assert pyramid.build_pipeline().n_stages == 40        # paper: 44
    assert interpolate.build_pipeline().n_stages == 47    # paper: 49
    assert laplacian.build_pipeline().n_stages == 95      # paper: 99


def test_camera_fuses_all_but_lut():
    """Paper: 'fuses all stages except small lookup table computations'."""
    app = camera.build_pipeline()
    values = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((32, 256)))
    groups = compiled.plan.group_plans
    assert len(groups) == 2
    lut_groups = [g for g in groups if len(g.ordered_stages) == 1
                  and g.ordered_stages[0].name == "curve"]
    assert len(lut_groups) == 1


def test_bilateral_histogram_not_fused():
    """Paper: reductions are not fused; the stencil stages group."""
    app = bilateral.build_pipeline()
    values = {app.params["R"]: 2560, app.params["C"]: 1536}
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((32, 32, 8)))
    for gp in compiled.plan.group_plans:
        names = {s.name for s in gp.ordered_stages}
        if "gridw" in names or "gridv" in names:
            assert len(names) == 1  # reductions stay alone
    blur_group_sizes = [len(gp.ordered_stages)
                        for gp in compiled.plan.group_plans
                        if any(s.name.startswith("blur")
                               for s in gp.ordered_stages)]
    assert max(blur_group_sizes) >= 3  # stencils fuse at paper scale


def test_pyramid_grouping_spans_levels():
    """Figure 8: groups cross pyramid levels (scaled fusion)."""
    app = pyramid.build_pipeline(levels=4)
    values = {app.params["R"]: 2048, app.params["C"]: 2048}
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((64, 64, 64)),
                                name="pyr_grouping")
    assert len(compiled.plan.group_plans) < 40  # real fusion happened
    from fractions import Fraction
    multi_scale = 0
    for gp in compiled.plan.group_plans:
        if gp.transforms is None:
            continue
        scales = set()
        for stage in gp.ordered_stages:
            scales.update(gp.transforms[stage].scales)
        if len(scales) > 1:
            multi_scale += 1
    assert multi_scale >= 1  # at least one group mixes pyramid levels
