"""Tests for the AppSpec scaffolding."""

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.apps.harris import build_pipeline


def test_registry_has_all_apps():
    assert set(ALL_APPS) == {
        "unsharp", "bilateral", "harris", "camera", "pyramid_blend",
        "interpolate", "local_laplacian", "iunsharp"}


def test_small_estimates_scales_down():
    app = build_pipeline()
    small = app.small_estimates(64)
    assert all(v == 64 for v in small.values())


def test_small_estimates_keeps_small_params():
    app = build_pipeline()
    # nothing below 4*size in harris, so all scale; check the rule
    small = app.small_estimates(10_000)
    assert small == app.default_estimates


def test_n_stages_property():
    app = build_pipeline()
    assert app.n_stages == 11


def test_make_inputs_shapes_respect_params():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    rng = np.random.default_rng(0)
    inputs = app.make_inputs({R: 10, C: 20}, rng)
    assert inputs[app.images[0]].shape == (12, 22)


def test_reference_returns_output_names():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 16, C: 16}
    rng = np.random.default_rng(0)
    inputs = app.make_inputs(values, rng)
    ref = app.reference(inputs, values)
    assert set(ref) == {out.name for out in app.outputs}
