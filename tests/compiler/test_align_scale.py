"""Alignment and scaling tests, built around the paper's Figure 6 chain."""

from fractions import Fraction

import pytest

from repro.lang import Float, Function, Image, Int, Interval, Parameter, Variable
from repro.compiler.align_scale import compute_group_transforms
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


def figure6_chain():
    """fout(x) = fup(x//2); fup(x) = h(x//2)*h(x//2+1);
    h(x) = g(2x-1)*g(2x+1); g(x) = f(2x-1)*f(2x+1); f(x) = fin(x)."""
    R = Parameter(Int, "R")
    fin = Image(Float, [16 * R], name="fin")
    x = Variable("x")

    def fn(name, lo, hi):
        f = Function(varDom=([x], [Interval(lo, hi, 1)]), typ=Float, name=name)
        return f

    f = fn("f", 0, 8 * R)
    f.defn = fin(x)
    g = fn("g", 1, 4 * R - 1)
    g.defn = f(2 * x - 1) * f(2 * x + 1)
    h = fn("h", 1, 2 * R - 1)
    h.defn = g(2 * x - 1) * g(2 * x + 1)
    fup = fn("fup", 2, 2 * R - 4)
    fup.defn = h(x // 2) * h(x // 2 + 1)
    fout = fn("fout", 4, 2 * R - 4)
    fout.defn = fup(x // 2)
    return R, fin, (f, g, h, fup, fout)


def test_figure6_scales():
    """Scales must match the paper: f:1, g:2, h:4, fup:2, fout:1."""
    R, fin, (f, g, h, fup, fout) = figure6_chain()
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, [f, g, h, fup, fout], fout)
    assert transforms is not None
    assert transforms[fout].scales == (Fraction(1),)
    assert transforms[fup].scales == (Fraction(2),)
    assert transforms[h].scales == (Fraction(4),)
    assert transforms[g].scales == (Fraction(2),)
    assert transforms[f].scales == (Fraction(1),)


def test_figure6_scaled_schedules_match_paper():
    R, fin, stages = figure6_chain()
    f, g, h, fup, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    sched = transforms.scaled_schedule(h, level=2)
    assert sched.relation_str("h") == "h: (x) -> (2, 4*x)"
    sched = transforms.scaled_schedule(fup, level=3)
    assert sched.relation_str("fup") == "fup: (x) -> (3, 2*x)"


def test_conflicting_scales_rejected():
    """The paper's infeasible example: f(x) = g(x/2) + g(x/4)."""
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = g(x // 2) + g(x // 4)
    ir = PipelineIR(PipelineGraph([f]))
    assert compute_group_transforms(ir, [f, g], f) is None


def test_transposed_access_aligns_with_permutation():
    R = Parameter(Int, "R")
    x, y = Variable("x"), Variable("y")
    dom = [Interval(0, R, 1), Interval(0, R, 1)]
    g = Function(varDom=([x, y], dom), typ=Float, name="g")
    g.defn = x + y * 1.0
    f = Function(varDom=([x, y], dom), typ=Float, name="f")
    f.defn = g(y, x)
    ir = PipelineIR(PipelineGraph([f]))
    transforms = compute_group_transforms(ir, [f, g], f)
    assert transforms is not None
    assert transforms[g].dim_map == (1, 0)


def test_mixed_transpose_rejected():
    """The paper's infeasible example: f(x, y) = g(x, y) + g(y, x)."""
    R = Parameter(Int, "R")
    x, y = Variable("x"), Variable("y")
    dom = [Interval(0, R, 1), Interval(0, R, 1)]
    g = Function(varDom=([x, y], dom), typ=Float, name="g")
    g.defn = x + y * 1.0
    f = Function(varDom=([x, y], dom), typ=Float, name="f")
    f.defn = g(x, y) + g(y, x)
    ir = PipelineIR(PipelineGraph([f]))
    assert compute_group_transforms(ir, [f, g], f) is None


def test_reflection_rejected():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = g(10 - x)  # negative coefficient: a reflection
    ir = PipelineIR(PipelineGraph([f]))
    assert compute_group_transforms(ir, [f, g], f) is None


def test_parametric_offset_rejected():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = g(x + R)
    ir = PipelineIR(PipelineGraph([f]))
    assert compute_group_transforms(ir, [f, g], f) is None


def test_data_dependent_access_rejected():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    from repro.lang import Cast
    lut = Function(varDom=([x], [Interval(0, 255, 1)]), typ=Float, name="lut")
    lut.defn = x * 2.0
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = lut(Cast(Int, I(x)))
    ir = PipelineIR(PipelineGraph([f]))
    assert compute_group_transforms(ir, [f, lut], f) is None


def test_identity_group_of_one():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = x * 1.0
    ir = PipelineIR(PipelineGraph([f]))
    transforms = compute_group_transforms(ir, [f], f)
    assert transforms is not None
    assert transforms[f].scales == (Fraction(1),)
    assert transforms.ndim == 1


def test_root_must_be_in_group():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = x * 1.0
    g = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="g")
    g.defn = f(x)
    ir = PipelineIR(PipelineGraph([g]))
    with pytest.raises(ValueError):
        compute_group_transforms(ir, [f], g)
