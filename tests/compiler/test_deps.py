"""Dependence analysis tests (Section 3.1 vectors, scaled-space ranges)."""

from fractions import Fraction

import pytest

from repro.apps.harris import build_pipeline
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.deps import (
    DepRange, dependence_vectors, edge_dependences, group_dependences,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR

from tests.compiler.test_align_scale import figure6_chain


def test_dep_range_validation_and_hull():
    with pytest.raises(ValueError):
        DepRange(Fraction(1), Fraction(0))
    a = DepRange(Fraction(-1), Fraction(0))
    b = DepRange(Fraction(0), Fraction(2))
    assert a.hull(b) == DepRange(Fraction(-1), Fraction(2))


def test_harris_sxx_ixx_dependence_vectors():
    """The paper's example: Sxx at (x, y) consumes Ixx at the 9 box taps,
    giving spatial vectors over {-1, 0, 1}^2."""
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    by_name = {s.name: s for s in ir.stages}
    vectors = set(dependence_vectors(ir, by_name["Ixx"], by_name["Sxx"]))
    expected = {(Fraction(i), Fraction(j))
                for i in (-1, 0, 1) for j in (-1, 0, 1)}
    assert vectors == expected


def test_harris_pointwise_dependence_vectors():
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    by_name = {s.name: s for s in ir.stages}
    vectors = dependence_vectors(ir, by_name["Ix"], by_name["Ixx"])
    assert set(vectors) == {(Fraction(0), Fraction(0))}


def test_figure6_edge_ranges():
    R, fin, stages = figure6_chain()
    f, g, h, fup, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)

    # h(x) = g(2x-1) * g(2x+1): s_p = 2, taps -1 and +1 => [-2, 2]
    dep = edge_dependences(ir, transforms, g, h)
    assert dep.ranges[0] == DepRange(Fraction(-2), Fraction(2))

    # fout(x) = fup(x // 2): s_p = 2, floor slack => [0, 1]
    dep = edge_dependences(ir, transforms, fup, fout)
    assert dep.ranges[0] == DepRange(Fraction(0), Fraction(1))

    # fup(x) = h(x//2) * h(x//2+1): s_p = 4, m = 2.
    # tap x//2 has b=0: [0, 2]; tap x//2+1 folds to (x+2)//2, b=2:
    # [-4, -2].  Hull: [-4, 2].
    dep = edge_dependences(ir, transforms, h, fup)
    assert dep.ranges[0] == DepRange(Fraction(-4), Fraction(2))


def test_group_dependences_enumerates_edges():
    R, fin, stages = figure6_chain()
    fout = stages[-1]
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    deps = group_dependences(ir, transforms, stages)
    pairs = {(d.producer.name, d.consumer.name) for d in deps}
    assert pairs == {("f", "g"), ("g", "h"), ("h", "fup"), ("fup", "fout")}


def test_max_reach():
    R, fin, stages = figure6_chain()
    f, g, h, fup, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    dep = edge_dependences(ir, transforms, g, h)
    assert dep.max_reach == Fraction(2)


def test_dependence_vectors_reject_sampling():
    R, fin, stages = figure6_chain()
    f, g, h, fup, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    with pytest.raises(ValueError):
        dependence_vectors(ir, fup, fout)  # x // 2 is not a unit access
