"""Overlapped tiling tests: halos, slopes, tile regions (Sections 3.4, 3.6)."""

from fractions import Fraction

import pytest

from repro.apps import harris as harris_app
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.tiling import (
    compute_tile_regions, estimate_relative_overlap, group_halos,
    group_liveouts, naive_halos, stage_tile_region, tile_shape_slopes,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.inline import inline_pipeline
from repro.pipeline.ir import PipelineIR
from repro.poly.interval import IntInterval

from tests.compiler.test_align_scale import figure6_chain


def inlined_harris():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    est = {R: 256, C: 256}
    result = inline_pipeline(app.outputs, est)
    graph = PipelineGraph(result.outputs)
    ir = PipelineIR(graph)
    stages = graph.topological_order()
    root = result.outputs[0]
    transforms = compute_group_transforms(ir, stages, root)
    return app, est, ir, stages, root, transforms


def test_harris_halos_are_tight():
    """harris: 0, S-stages: 0 (point-wise consumer), Ix/Iy: +-2 taps
    (inlined products shift the box filter's accesses by up to 2)."""
    app, est, ir, stages, root, transforms = inlined_harris()
    halos = group_halos(ir, transforms, stages)
    by_name = {s.name: s for s in stages}
    assert halos[by_name["harris"]].widths() == (Fraction(0), Fraction(0))
    assert halos[by_name["Sxx"]].widths() == (Fraction(0), Fraction(0))
    # Sxx reads (inlined) Ixx at offsets -1..1, which reads Ix point-wise
    assert halos[by_name["Ix"]].widths() == (Fraction(2), Fraction(2))


def test_naive_halos_overapproximate():
    """The uniform-cone construction must never be tighter than the
    per-level construction (Figure 6's over-approximation)."""
    app, est, ir, stages, root, transforms = inlined_harris()
    tight = group_halos(ir, transforms, stages)
    naive = naive_halos(ir, transforms, stages)
    for stage in stages:
        for t, n in zip(tight[stage].widths(), naive[stage].widths()):
            assert n >= t
    # and strictly worse somewhere (Ix sits 2 levels below harris)
    by_name = {s.name: s for s in stages}
    assert (sum(naive[by_name["Ix"]].widths())
            > sum(tight[by_name["Ix"]].widths()))


def test_relative_overlap_scales_with_tile_size():
    app, est, ir, stages, root, transforms = inlined_harris()
    halos = group_halos(ir, transforms, stages)
    small = estimate_relative_overlap(halos, (8, 8))
    large = estimate_relative_overlap(halos, (64, 64))
    assert small == Fraction(2, 8)  # width 2 over tile 8
    assert large == Fraction(2, 64)
    assert small > large


def test_tile_shape_slopes_harris():
    app, est, ir, stages, root, transforms = inlined_harris()
    shapes = tile_shape_slopes(ir, transforms, stages)
    # Sxx <- Ix spans 2 levels with reach 2 => slope 1; harris <- Sxx is 0.
    assert shapes[0].left_slope == Fraction(1)
    assert shapes[0].right_slope == Fraction(1)
    assert shapes[0].height == 2
    assert shapes[0].overlap == Fraction(4)


def test_figure6_slopes_tighter_than_naive():
    R, fin, stages = figure6_chain()
    fout = stages[-1]
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    tight = group_halos(ir, transforms, stages)
    naive = naive_halos(ir, transforms, stages)
    total_tight = sum(sum(tight[s].widths()) for s in stages)
    total_naive = sum(sum(naive[s].widths()) for s in stages)
    assert total_naive > total_tight


def test_stage_tile_region_identity():
    app, est, ir, stages, root, transforms = inlined_harris()
    box = ir[root].domain.concretize(est)
    region = stage_tile_region(transforms[root], box,
                               (IntInterval(32, 63), IntInterval(0, 255)))
    assert region == (IntInterval(32, 63), IntInterval(0, 255))


def test_stage_tile_region_scaled():
    R, fin, stages = figure6_chain()
    f, g, h, fup, fout = stages
    ir = PipelineIR(PipelineGraph([fout]))
    transforms = compute_group_transforms(ir, stages, fout)
    box = ir[fup].domain.concretize({R: 64})
    # fup has scale 2: group coords [0, 63] own fup points [0, 31]
    region = stage_tile_region(transforms[fup], box, (IntInterval(0, 63),))
    assert region == (IntInterval(2, 31),)  # clamped to fup's domain lo=2


def test_tile_regions_cover_consumers():
    """For any tile, each producer's region must contain everything its
    in-group consumers read — the fundamental validity of overlapped tiles."""
    app, est, ir, stages, root, transforms = inlined_harris()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    liveouts = group_liveouts(ir, stages)
    tile = (IntInterval(32, 63), IntInterval(32, 63))
    regions = compute_tile_regions(ir, transforms, stages, liveouts, tile, est)
    by_name = {s.name: s for s in stages}
    harris_region = regions[by_name["harris"]]
    sxx_region = regions[by_name["Sxx"]]
    ix_region = regions[by_name["Ix"]]
    # harris reads Sxx point-wise
    for h, s in zip(harris_region, sxx_region):
        assert s.contains(h)
    # Sxx reads Ix at +-1 after inlining
    ix_domain = ir[by_name["Ix"]].domain.concretize(est)
    for s, i, d in zip(sxx_region, ix_region, ix_domain):
        needed = IntInterval(s.lo - 1, s.hi + 1).intersect(d)
        assert needed is not None and i.contains(needed)


def test_tile_regions_clamped_to_domains():
    app, est, ir, stages, root, transforms = inlined_harris()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    liveouts = group_liveouts(ir, stages)
    # A boundary tile extending past the domain
    tile = (IntInterval(-32, -1 + 32), IntInterval(-32, 31))
    regions = compute_tile_regions(ir, transforms, stages, liveouts, tile, est)
    for stage, region in regions.items():
        domain = ir[stage].domain.concretize(est)
        for r, d in zip(region, domain):
            assert d.contains(r)


def test_tile_regions_empty_tile():
    app, est, ir, stages, root, transforms = inlined_harris()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    liveouts = group_liveouts(ir, stages)
    tile = (IntInterval(1000, 1031), IntInterval(0, 31))
    regions = compute_tile_regions(ir, transforms, stages, liveouts, tile, est)
    assert regions == {}
