"""Tests for the tight-vs-naive overlap construction (Figure 6's claim)."""

import numpy as np
import pytest
from dataclasses import replace

from repro import CompileOptions, compile_pipeline
from repro.bench.figure6 import heterogeneous_group
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.tiling import group_halos, naive_halos
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


@pytest.fixture(scope="module")
def het():
    (R, C), Ih, stages = heterogeneous_group()
    ir = PipelineIR(PipelineGraph([stages[-1]]))
    transforms = compute_group_transforms(ir, stages, stages[-1])
    return (R, C), Ih, stages, ir, transforms


def test_naive_strictly_wider_below_the_wide_stencil(het):
    (R, C), Ih, stages, ir, transforms = het
    tight = group_halos(ir, transforms, stages)
    naive = naive_halos(ir, transforms, stages)
    bottom = stages[0]
    t = tight[bottom].widths()
    n = naive[bottom].widths()
    assert all(nv >= tv for nv, tv in zip(n, t))
    assert sum(n) > 2 * sum(t)  # badly over-approximated


def test_homogeneous_chain_naive_equals_tight():
    """When every level carries the same dependence the constructions
    coincide — the over-approximation is specific to heterogeneity."""
    (R, C), Ih, stages = heterogeneous_group(n_stages=5, wide_at=99)
    ir = PipelineIR(PipelineGraph([stages[-1]]))
    transforms = compute_group_transforms(ir, stages, stages[-1])
    tight = group_halos(ir, transforms, stages)
    naive = naive_halos(ir, transforms, stages)
    for s in stages:
        assert tight[s].widths() == naive[s].widths()


def test_both_constructions_execute_identically(het):
    """Naive halos waste work but must not change results."""
    (R, C), Ih, stages, ir, transforms = het
    values = {R: 96, C: 96}
    data = np.random.default_rng(1).random((176, 176), dtype=np.float32)
    outs = {}
    for label, tight_flag in (("tight", True), ("naive", False)):
        options = replace(CompileOptions.optimized((32, 32), 5.0),
                          tight_overlap=tight_flag, inline=False)
        compiled = compile_pipeline([stages[-1]], values, options)
        outs[label] = compiled(values, {Ih: data})[stages[-1].name]
    np.testing.assert_allclose(outs["tight"], outs["naive"], rtol=1e-6)
